//! Elastic batch-size deep dive: everything §3.3 says about growing a
//! job's batch, demonstrated on the library API —
//!
//! 1. throughput across (batch, GPU) configurations (why elasticity pays),
//! 2. the batch-limit policy state machine R_j over a job's lifetime,
//! 3. convergence under gradual vs abrupt scaling,
//! 4. the cost of each elastic re-configuration vs a checkpoint restart.
//!
//! ```text
//! cargo run --release --example elastic_batch_size
//! ```

use ones_repro::cluster::{AllReduceModel, ClusterSpec, Placement};
use ones_repro::dlperf::{ConvergenceModel, ConvergenceState, DatasetKind, ModelKind, PerfModel};
use ones_repro::ones::{BatchLimits, PolicyConfig, ScalingCostModel};
use ones_repro::workload::{JobId, JobSpec};

fn main() {
    let cluster = ClusterSpec::longhorn();
    let perf = PerfModel::new(cluster);
    let profile = ModelKind::ResNet50
        .profile()
        .for_dataset(DatasetKind::Cifar10);

    // 1. Configuration space: throughput of (B, c) combinations.
    println!("ResNet50/CIFAR10 throughput (samples/s) by (global batch, workers):");
    print!("{:>8}", "B \\ c");
    for c in [1u32, 2, 4, 8, 16] {
        print!(" {c:>9}");
    }
    println!();
    for b in [256u32, 512, 1024, 2048, 4096] {
        print!("{b:>8}");
        for c in [1u32, 2, 4, 8, 16] {
            let placement = Placement::contiguous(0, c);
            match PerfModel::split_batch(&profile, b, &placement) {
                Some(batches) => {
                    print!(" {:>9.0}", perf.throughput(&profile, &batches, &placement))
                }
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }

    // 2. The R_j state machine over a simulated lifetime.
    let spec = JobSpec {
        id: JobId(0),
        name: "ResNet50/CIFAR10-25k".into(),
        model: ModelKind::ResNet50,
        dataset: DatasetKind::Cifar10,
        dataset_size: 25_000,
        submit_batch: 256,
        max_safe_batch: 4096,
        requested_gpus: 2,
        arrival_secs: 0.0,
        kill_after_secs: None,
        convergence: ConvergenceModel {
            reference_batch: 256,
            noise_scale: 4096.0,
            ..ConvergenceModel::example()
        },
    };
    let mut limits = BatchLimits::new(PolicyConfig {
        sigma: 1.0 / 600.0,
        ..PolicyConfig::default()
    });
    limits.on_arrival(&spec);
    println!("\nBatch-limit policy over the job's life (sigma = 1/600):");
    println!("{:>6} {:>10} {:>8}", "epoch", "exec(s)", "R");
    let mut exec = 0.0;
    for epoch in 1..=14u32 {
        exec += 60.0;
        limits.on_epoch_end(spec.id, epoch, exec, 16_384, true);
        println!("{epoch:>6} {exec:>10.0} {:>8}", limits.get(spec.id));
    }
    limits.on_rejected(spec.id);
    println!(
        "   (rejected while waiting)     R -> {}",
        limits.get(spec.id)
    );

    // 3. Gradual vs abrupt convergence.
    let mut gradual = ConvergenceState::new(spec.convergence);
    let mut abrupt = ConvergenceState::new(spec.convergence);
    for _ in 0..30 {
        gradual.advance_epoch(256, true);
        abrupt.advance_epoch(256, true);
    }
    for b in [512u32, 1024, 2048, 4096] {
        gradual.on_batch_change(b);
    }
    let destroyed = abrupt.on_batch_change(4096);
    println!(
        "\nAfter 30 epochs at B=256, moving to B=4096:\n  gradual doubling: loss {:.3} (no progress lost)\n  abrupt jump:      loss {:.3} ({destroyed:.1} reference epochs destroyed)",
        gradual.loss(),
        abrupt.loss()
    );

    // 4. Re-configuration costs.
    let cost = ScalingCostModel::default();
    let allreduce = AllReduceModel::new(cluster);
    let p8 = Placement::contiguous(0, 8);
    println!(
        "\nRe-configuration cost for {} (8 workers):\n  elastic NCCL scaling: {:.2}s\n  checkpoint restart:   {:.1}s",
        profile.kind,
        cost.elastic_cost(&profile, &allreduce, &p8, true),
        cost.checkpoint_cost(&profile)
    );
}
