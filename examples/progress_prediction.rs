//! Online progress prediction (§3.2.1, Figure 6): train the Beta
//! predictor on completed jobs, then watch its prediction for a fresh job
//! sharpen as the job trains — mean completion fraction with a 90 %
//! credible band, like the paper's Figure 6.
//!
//! ```text
//! cargo run --release --example progress_prediction
//! ```

use ones_repro::dlperf::{ConvergenceModel, ConvergenceState, DatasetKind, ModelKind};
use ones_repro::predictor::{FeatureSnapshot, PredictorConfig, ProgressPredictor};
use ones_repro::schedcore::JobStatus;
use ones_repro::simcore::{DetRng, SimTime};
use ones_repro::workload::{JobId, JobSpec};

fn make_job(id: u64, dataset_size: u64, progress_scale: f64) -> JobStatus {
    let spec = JobSpec {
        id: JobId(id),
        name: format!("synthetic-{id}"),
        model: ModelKind::ResNet18,
        dataset: DatasetKind::Cifar10,
        dataset_size,
        submit_batch: 256,
        max_safe_batch: 4096,
        requested_gpus: 1,
        arrival_secs: 0.0,
        kill_after_secs: None,
        convergence: ConvergenceModel {
            reference_batch: 256,
            progress_scale,
            ..ConvergenceModel::example()
        },
    };
    JobStatus::submitted(spec, SimTime::ZERO)
}

/// Trains a job to convergence, streaming its epoch log.
fn run_to_completion(status: &mut JobStatus) -> (Vec<FeatureSnapshot>, u32) {
    let mut conv = ConvergenceState::new(status.spec.convergence);
    let mut log = Vec::new();
    while !conv.converged() {
        conv.advance_epoch(256, true);
        status.epochs_done = conv.epochs_done();
        status.samples_processed = f64::from(conv.epochs_done()) * status.spec.dataset_size as f64;
        status.current_loss = conv.loss();
        status.current_accuracy = conv.accuracy();
        log.push(FeatureSnapshot::capture(status));
    }
    (log, conv.epochs_done())
}

fn main() {
    let mut predictor = ProgressPredictor::new(PredictorConfig::default(), DetRng::seed(11));

    // Historical cluster activity: 15 completed jobs of varying speeds.
    for i in 0..15u64 {
        let mut job = make_job(i, 18_000 + i * 1500, 6.0 + (i % 5) as f64 * 1.5);
        let (log, total) = run_to_completion(&mut job);
        predictor.observe_completion(&log, total);
    }
    println!(
        "Predictor trained on {} completions ({} retained points, fitted: {}).",
        predictor.completions(),
        predictor.training_points(),
        predictor.is_fitted()
    );

    // A fresh job trains; query the prediction at each epoch.
    let mut job = make_job(100, 24_000, 8.0);
    let mut conv = ConvergenceState::new(job.spec.convergence);
    let mut rng = DetRng::seed(5);
    println!(
        "\n{:>6} {:>12} {:>12} {:>18} {:>12}",
        "epoch", "true frac", "pred mean", "90% interval", "pred epochs left"
    );
    while !conv.converged() {
        conv.advance_epoch(256, true);
        job.epochs_done = conv.epochs_done();
        job.samples_processed = f64::from(conv.epochs_done()) * job.spec.dataset_size as f64;
        job.current_loss = conv.loss();
        job.current_accuracy = conv.accuracy();
        if job.epochs_done.is_multiple_of(4) {
            let beta = predictor.predict(&job);
            let (lo, hi) = beta.credible_interval(0.90, 4000, &mut rng);
            println!(
                "{:>6} {:>12.3} {:>12.3} {:>11.3}–{:<6.3} {:>12.1}",
                job.epochs_done,
                conv.completion_fraction(),
                beta.mean(),
                lo,
                hi,
                predictor.predict_remaining_epochs(&job)
            );
        }
    }
    println!("\nJob converged after {} epochs.", conv.epochs_done());
}
