//! Scheduler shoot-out: the paper's §4.2 comparison in miniature — run the
//! same contended trace under ONES, DRL, Tiresias, Optimus, FIFO and the
//! SRTF oracle, and print average JCT / execution / queueing plus tail
//! statistics.
//!
//! ```text
//! cargo run --release --example scheduler_shootout [-- <num_jobs>]
//! ```

use ones_repro::simulator::{run_sweep, ExperimentConfig, SchedulerKind, TraceSource};
use ones_repro::stats::Summary;
use ones_repro::workload::TraceConfig;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let trace = TraceConfig {
        num_jobs: jobs,
        arrival_rate: 1.0 / 30.0,
        seed: 42,
        kill_fraction: 0.0,
    };
    let schedulers = [
        SchedulerKind::Ones,
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
        SchedulerKind::Fifo,
        SchedulerKind::Gandiva,
        SchedulerKind::Slaq,
        SchedulerKind::SrtfOracle,
    ];
    let configs: Vec<ExperimentConfig> = schedulers
        .iter()
        .map(|&scheduler| ExperimentConfig {
            gpus: 64,
            source: TraceSource::Table2(trace),
            scheduler,
            sched_seed: 1,
            drl_pretrain_episodes: 2,
        })
        .collect();

    println!(
        "Running {jobs} jobs on 64 GPUs under {} schedulers...",
        schedulers.len()
    );
    let results = run_sweep(&configs);

    println!(
        "\n{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scheduler", "avg JCT", "avg exec", "avg queue", "p90 JCT", "max JCT"
    );
    for r in &results {
        let s = Summary::of(&r.metrics.jct);
        println!(
            "{:<12} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            r.config.scheduler.name(),
            r.metrics.mean_jct(),
            r.metrics.mean_exec(),
            r.metrics.mean_queue(),
            s.p90,
            s.max
        );
    }

    let ones = results
        .iter()
        .find(|r| r.config.scheduler == SchedulerKind::Ones)
        .expect("swept");
    println!();
    for r in &results {
        if r.config.scheduler == SchedulerKind::Ones {
            continue;
        }
        println!(
            "ONES vs {:<12}: JCT {:>6.1}%, per-deployment overhead {:.2}s vs {:.2}s",
            r.config.scheduler.name(),
            100.0 * (ones.metrics.mean_jct() / r.metrics.mean_jct() - 1.0),
            ones.total_overhead / ones.deployments.max(1) as f64,
            r.total_overhead / r.deployments.max(1) as f64,
        );
    }
}
