//! Quickstart: schedule a small trace with ONES on a 16-GPU cluster and
//! print per-job outcomes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ones_repro::simcore::DetRng;
use ones_repro::simulator::{SchedulerKind, SimConfig, Simulation};
use ones_repro::workload::{Trace, TraceConfig};
use ones_repro::{cluster::ClusterSpec, dlperf::PerfModel};

fn main() {
    // 1. Describe the cluster: 4 Longhorn-like nodes × 4 V100s.
    let cluster = ClusterSpec::longhorn_subset(16);

    // 2. Generate a Table 2 workload trace: 10 jobs, one every ~20 s.
    let trace = Trace::generate(TraceConfig {
        num_jobs: 10,
        arrival_rate: 1.0 / 20.0,
        seed: 7,
        kill_fraction: 0.0,
    });
    println!("Trace:");
    for job in &trace.jobs {
        println!(
            "  {:>5.0}s  {:<24} B0={:<4} requested {} GPU(s)",
            job.arrival_secs, job.name, job.submit_batch, job.requested_gpus
        );
    }

    // 3. Build the ONES scheduler and run the simulation to completion.
    let scheduler = SchedulerKind::Ones.build(&cluster, &trace, &DetRng::seed(1));
    let sim = Simulation::new(
        PerfModel::new(cluster),
        &trace,
        scheduler,
        SimConfig::default(),
    );
    let result = sim.run();
    assert!(result.all_completed);

    // 4. Report.
    println!("\nResults (ONES, {} GPUs):", cluster.total_gpus());
    println!(
        "  {:<24} {:>8} {:>8} {:>8}",
        "job", "JCT(s)", "exec(s)", "queue(s)"
    );
    let horizon = ones_repro::simcore::SimTime::from_secs(result.makespan);
    let mut jcts = Vec::new();
    for job in result.jobs.values() {
        let jct = job.jct().expect("completed");
        jcts.push(jct);
        println!(
            "  {:<24} {:>8.1} {:>8.1} {:>8.1}",
            job.spec.name,
            jct,
            job.exec_time,
            job.queueing_time(horizon)
        );
    }
    println!(
        "\n  average JCT {:.1}s over {} jobs; {} schedule deployments, {:.0}s total scaling overhead",
        jcts.iter().sum::<f64>() / jcts.len() as f64,
        jcts.len(),
        result.deployments,
        result.total_overhead,
    );
}
