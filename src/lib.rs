//! # ones-repro — umbrella crate
//!
//! Re-exports every subsystem of the ONES reproduction under one roof so the
//! examples and integration tests can use a single dependency. See the
//! individual crates for the implementation:
//!
//! * [`simcore`] — discrete-event engine, deterministic RNG
//! * [`stats`] — distributions, regression, Wilcoxon tests
//! * [`cluster`] — GPU cluster topology and all-reduce cost model
//! * [`dlperf`] — DL job performance and convergence models
//! * [`workload`] — Table 2 trace generation
//! * [`schedcore`] — shared scheduler API
//! * [`predictor`] — online Beta-distribution progress predictor
//! * [`evo`] — the online evolutionary search
//! * [`ones`] — the ONES scheduler
//! * [`baselines`] — Tiresias, Optimus, DRL, FIFO, SRTF
//! * [`simulator`] — full cluster simulation runtime and experiment harness

pub use ones_baselines as baselines;
pub use ones_cluster as cluster;
pub use ones_dlperf as dlperf;
pub use ones_evo as evo;
pub use ones_predictor as predictor;
pub use ones_sched as ones;
pub use ones_schedcore as schedcore;
pub use ones_simcore as simcore;
pub use ones_simulator as simulator;
pub use ones_stats as stats;
pub use ones_workload as workload;
