//! # ones-predictor — online training-progress prediction (§3.2.1)
//!
//! ONES never tries to predict a job's absolute remaining workload.
//! Instead it models the *completion fraction* ρ ∈ (0, 1) of every job as a
//! Beta random variable (paper Eq 6):
//!
//! ```text
//! ρ ~ Be(α, β),   α = Y_processed / ‖D‖  (epochs processed)
//!                 β = max(A·x + b, 1)    (predicted epochs to process)
//! ```
//!
//! The linear model `A, b` over the feature vector
//! `x = {‖D‖, L_initial, Y_processed, r_L, A}` (footnote 1) is refit every
//! time a job completes, on a bounded training set uniformly subsampled
//! from the epoch logs of completed jobs — bounding both fit time and
//! overfitting, exactly as §3.2.1 prescribes. For a linear-Gaussian
//! observation model, the least-squares fit used here *is* the maximiser of
//! the log marginal likelihood in the mean parameters.
//!
//! From a predicted `Be(α, β)`, Eq 7 turns a sampled ρ into a remaining
//! workload `Y = Y_processed · (1/ρ − 1)`, which Algorithm 1 plugs into the
//! SRUF score (Eq 8). Both helpers live here so every consumer (the
//! evolutionary search, the benches, the tests) shares one implementation.

pub mod features;
pub mod progress;

pub use features::FeatureSnapshot;
pub use progress::{BetaModel, PredictorConfig, ProgressPredictor};

/// Remaining workload in samples from a sampled completion fraction
/// (paper Eq 7): `Y = Y_processed (1/ρ − 1)`.
///
/// # Panics
/// Panics if `rho` is outside (0, 1] or `processed` is negative.
#[must_use]
pub fn remaining_workload(processed: f64, rho: f64) -> f64 {
    assert!(processed >= 0.0, "negative processed sample count");
    assert!(
        rho > 0.0 && rho <= 1.0,
        "completion fraction out of (0,1]: {rho}"
    );
    processed * (1.0 / rho - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq7_basic_values() {
        // Half done: remaining equals processed.
        assert!((remaining_workload(1000.0, 0.5) - 1000.0).abs() < 1e-9);
        // Fully done: nothing remains.
        assert_eq!(remaining_workload(1000.0, 1.0), 0.0);
        // Barely started: a lot remains.
        assert!(remaining_workload(100.0, 0.01) > 9000.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn zero_rho_rejected() {
        let _ = remaining_workload(10.0, 0.0);
    }
}
