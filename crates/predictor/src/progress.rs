//! The online progress predictor.
//!
//! Maintains a bounded training set of `(features, remaining epochs)`
//! pairs harvested from completed jobs' epoch logs, refits the linear
//! β-model on every completion, and answers [`ProgressPredictor::predict`]
//! queries with a clamped `Be(α, β)` per paper Eq 6.

use crate::features::FeatureSnapshot;
use ones_schedcore::JobStatus;
use ones_simcore::DetRng;
use ones_stats::{Beta, GpRegressor, LinearRegression};
use ones_sync::LazyLock;
use serde::{Deserialize, Serialize};
use std::time::Instant;

// Observability handles (DESIGN.md §5): fit/predict latency histograms
// and dataset counters. Latencies never feed back into predictions.
static FIT_US: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("predictor.progress.fit_us"));
static PREDICT_US: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("predictor.progress.predict_us"));
static COMPLETIONS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("predictor.progress.completions"));
static TRAINING_POINTS: LazyLock<&'static ones_obs::Gauge> =
    LazyLock::new(|| ones_obs::gauge("predictor.progress.training_points"));

/// Which regression model predicts the epochs-to-process (the Beta's β).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BetaModel {
    /// Ridge-regularised linear least squares: microsecond refits, the
    /// default for the scheduler's hot loop.
    Linear,
    /// RBF-kernel Gaussian-process regression — the model the paper's
    /// footnote 1 names. O(n³) refits on the bounded training set.
    GaussianProcess,
}

/// Tunables of the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Which β regression model to fit.
    pub model: BetaModel,
    /// Maximum retained training points (the paper keeps "a limited size of
    /// training dataset ... uniformly sampled from training logs").
    pub capacity: usize,
    /// Snapshots kept per completed job (uniformly spaced over its epochs).
    pub samples_per_job: usize,
    /// Ridge regularisation for the β fit.
    pub ridge: f64,
    /// Epochs-to-process assumed for a job before any completions exist to
    /// fit a model (cold-start prior).
    pub prior_remaining_epochs: f64,
    /// Minimum training points before trusting the fitted model.
    pub min_fit_points: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            model: BetaModel::Linear,
            capacity: 512,
            samples_per_job: 16,
            ridge: 1e-3,
            prior_remaining_epochs: 30.0,
            min_fit_points: 24,
        }
    }
}

/// The fitted β model (see [`BetaModel`]).
#[derive(Debug, Clone)]
enum FittedModel {
    Linear(LinearRegression),
    GaussianProcess(GpRegressor),
}

impl FittedModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            FittedModel::Linear(m) => m.predict(x),
            FittedModel::GaussianProcess(m) => m.predict(x),
        }
    }
}

/// Online Beta-distribution progress predictor (see crate docs).
#[derive(Debug, Clone)]
pub struct ProgressPredictor {
    config: PredictorConfig,
    points: Vec<(FeatureSnapshot, f64)>,
    seen_points: usize,
    model: Option<FittedModel>,
    completions: usize,
    rng: DetRng,
}

impl ProgressPredictor {
    /// Creates a predictor with its own deterministic RNG stream.
    #[must_use]
    pub fn new(config: PredictorConfig, rng: DetRng) -> Self {
        ProgressPredictor {
            config,
            points: Vec::new(),
            seen_points: 0,
            model: None,
            completions: 0,
            rng,
        }
    }

    /// Number of completed jobs observed.
    #[must_use]
    pub fn completions(&self) -> usize {
        self.completions
    }

    /// Number of retained training points.
    #[must_use]
    pub fn training_points(&self) -> usize {
        self.points.len()
    }

    /// Whether predictions currently come from a fitted model (vs the
    /// cold-start prior).
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }

    /// Ingests the epoch log of a job that just completed and refits.
    ///
    /// `history` holds one snapshot per completed epoch, in epoch order;
    /// `total_epochs` is the number of wall epochs the job ran. The label
    /// of a snapshot at epoch `e` is `total_epochs − e` — the epochs the
    /// job still had to process at that point.
    pub fn observe_completion(&mut self, history: &[FeatureSnapshot], total_epochs: u32) {
        let _span = ones_obs::span!("predictor", "observe_completion")
            .with_arg("epochs", u64::from(total_epochs));
        self.completions += 1;
        COMPLETIONS.inc();
        if history.is_empty() {
            return;
        }
        // Uniformly spaced subsample of the job's log.
        let take = self.config.samples_per_job.min(history.len());
        for k in 0..take {
            let idx = k * history.len() / take;
            let snap = history[idx];
            let remaining = f64::from(total_epochs.saturating_sub(snap.epochs_done)).max(0.0);
            self.insert((snap, remaining));
        }
        self.refit();
    }

    /// Reservoir-style bounded insertion keeping a uniform sample of all
    /// points ever seen.
    fn insert(&mut self, point: (FeatureSnapshot, f64)) {
        self.seen_points += 1;
        if self.points.len() < self.config.capacity {
            self.points.push(point);
        } else {
            let j = self.rng.index(self.seen_points);
            if j < self.points.len() {
                self.points[j] = point;
            }
        }
    }

    fn refit(&mut self) {
        TRAINING_POINTS.set(self.points.len() as f64);
        if self.points.len() < self.config.min_fit_points {
            return;
        }
        let t_fit = Instant::now();
        let xs: Vec<Vec<f64>> = self.points.iter().map(|(f, _)| f.to_vec()).collect();
        let ys: Vec<f64> = self.points.iter().map(|(_, y)| *y).collect();
        let fitted = match self.config.model {
            BetaModel::Linear => {
                LinearRegression::fit(&xs, &ys, self.config.ridge).map(FittedModel::Linear)
            }
            BetaModel::GaussianProcess => {
                GpRegressor::fit(&xs, &ys).map(FittedModel::GaussianProcess)
            }
        };
        if let Some(model) = fitted {
            self.model = Some(model);
        }
        FIT_US.observe(t_fit.elapsed().as_nanos() as f64 / 1e3);
    }

    /// Predicted epochs still to process for a job (the β parameter before
    /// the ≥ 1 clamp).
    #[must_use]
    pub fn predict_remaining_epochs(&self, status: &JobStatus) -> f64 {
        let snap = FeatureSnapshot::capture(status);
        match &self.model {
            Some(m) => m.predict(&snap.to_vec()),
            None => {
                // Cold start: assume a fixed total requirement and subtract
                // what's already done.
                (self.config.prior_remaining_epochs - snap.processed_epochs).max(1.0)
            }
        }
    }

    /// The paper's Eq 6: `ρ ~ Be(max(α,1), max(β,1))` with
    /// `α = Y_processed/‖D‖` and β the model's remaining-epoch prediction.
    #[must_use]
    pub fn predict(&self, status: &JobStatus) -> Beta {
        let t_predict = Instant::now();
        let alpha = status.processed_epochs();
        let beta = self.predict_remaining_epochs(status);
        let result = Beta::new_clamped(alpha, beta);
        PREDICT_US.observe(t_predict.elapsed().as_nanos() as f64 / 1e3);
        result
    }
}

#[cfg(test)]
pub(super) mod tests {
    use super::*;
    use ones_dlperf::{ConvergenceModel, ConvergenceState, DatasetKind, ModelKind};
    use ones_simcore::SimTime;
    use ones_workload::{JobId, JobSpec};

    pub(super) fn make_status(id: u64, dataset_size: u64, progress_scale: f64) -> JobStatus {
        let conv = ConvergenceModel {
            reference_batch: 256,
            progress_scale,
            ..ConvergenceModel::example()
        };
        let spec = JobSpec {
            id: JobId(id),
            name: format!("j{id}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 1,
            arrival_secs: 0.0,
            kill_after_secs: None,
            convergence: conv,
        };
        JobStatus::submitted(spec, SimTime::ZERO)
    }

    /// Simulates a full training run of a synthetic job at its reference
    /// batch, returning the epoch log and total epochs.
    pub(super) fn run_job(status: &mut JobStatus) -> (Vec<FeatureSnapshot>, u32) {
        let mut conv = ConvergenceState::new(status.spec.convergence);
        let mut log = Vec::new();
        while !conv.converged() {
            conv.advance_epoch(256, true);
            status.epochs_done = conv.epochs_done();
            status.samples_processed =
                f64::from(conv.epochs_done()) * status.spec.dataset_size as f64;
            status.current_loss = conv.loss();
            status.current_accuracy = conv.accuracy();
            log.push(FeatureSnapshot::capture(status));
            assert!(conv.epochs_done() < 500, "runaway job");
        }
        (log, conv.epochs_done())
    }

    fn predictor() -> ProgressPredictor {
        ProgressPredictor::new(PredictorConfig::default(), DetRng::seed(9))
    }

    #[test]
    fn cold_start_uses_prior() {
        let p = predictor();
        let mut s = make_status(0, 20_000, 12.0);
        assert!(!p.is_fitted());
        let b = p.predict(&s);
        // Nothing processed: α clamps to 1, β = prior.
        assert_eq!(b.alpha(), 1.0);
        assert!((b.beta() - 30.0).abs() < 1e-9);
        // Partially processed jobs shift the prior.
        s.samples_processed = 10.0 * 20_000.0;
        let b2 = p.predict(&s);
        assert!((b2.alpha() - 10.0).abs() < 1e-9);
        assert!((b2.beta() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn learns_from_completions() {
        let mut p = predictor();
        // Train on a family of jobs with varying convergence speeds.
        for i in 0..12u32 {
            let scale = 6.0 + f64::from(i % 4) * 2.0;
            let mut s = make_status(u64::from(i), 20_000 + u64::from(i) * 1000, scale);
            let (log, total) = run_job(&mut s);
            p.observe_completion(&log, total);
        }
        assert!(p.is_fitted(), "predictor should have fitted after 12 jobs");
        assert_eq!(p.completions(), 12);

        // Query a fresh job of a seen speed class mid-training and check
        // the predicted remaining epochs is in the right ballpark.
        let mut s = make_status(99, 22_000, 8.0);
        let mut conv = ConvergenceState::new(s.spec.convergence);
        for _ in 0..10 {
            conv.advance_epoch(256, true);
        }
        s.epochs_done = 10;
        s.samples_processed = 10.0 * 22_000.0;
        s.current_loss = conv.loss();
        s.current_accuracy = conv.accuracy();
        let predicted = p.predict_remaining_epochs(&s);
        let truth = conv.remaining_epochs_at(256);
        assert!(
            (predicted - truth).abs() < 0.5 * truth + 5.0,
            "prediction {predicted} too far from truth {truth}"
        );
    }

    #[test]
    fn beta_mean_tracks_progress() {
        let mut p = predictor();
        for i in 0..12u32 {
            let mut s = make_status(u64::from(i), 20_000, 8.0);
            let (log, total) = run_job(&mut s);
            p.observe_completion(&log, total);
        }
        let mut s = make_status(50, 20_000, 8.0);
        let mut means = Vec::new();
        for epoch in [1u32, 10, 25] {
            s.epochs_done = epoch;
            s.samples_processed = f64::from(epoch) * 20_000.0;
            let mut conv = ConvergenceState::new(s.spec.convergence);
            for _ in 0..epoch {
                conv.advance_epoch(256, true);
            }
            s.current_loss = conv.loss();
            s.current_accuracy = conv.accuracy();
            means.push(p.predict(&s).mean());
        }
        assert!(
            means[0] < means[1] && means[1] < means[2],
            "predicted completion fraction should grow: {means:?}"
        );
    }

    #[test]
    fn capacity_is_bounded() {
        let mut p = ProgressPredictor::new(
            PredictorConfig {
                capacity: 40,
                samples_per_job: 16,
                ..PredictorConfig::default()
            },
            DetRng::seed(3),
        );
        for i in 0..20u32 {
            let mut s = make_status(u64::from(i), 20_000, 8.0);
            let (log, total) = run_job(&mut s);
            p.observe_completion(&log, total);
        }
        assert!(p.training_points() <= 40);
        assert_eq!(p.completions(), 20);
    }

    #[test]
    fn empty_history_is_harmless() {
        let mut p = predictor();
        p.observe_completion(&[], 10);
        assert_eq!(p.completions(), 1);
        assert_eq!(p.training_points(), 0);
    }

    #[test]
    fn beta_parameters_clamped_at_one() {
        let p = predictor();
        let s = make_status(0, 20_000, 8.0);
        let b = p.predict(&s);
        assert!(b.alpha() >= 1.0);
        assert!(b.beta() >= 1.0);
    }
}

#[cfg(test)]
mod gpr_tests {
    use super::tests::{make_status, run_job};
    use super::*;
    use ones_dlperf::ConvergenceState;

    fn gp_predictor() -> ProgressPredictor {
        ProgressPredictor::new(
            PredictorConfig {
                model: BetaModel::GaussianProcess,
                capacity: 160,
                ..PredictorConfig::default()
            },
            DetRng::seed(21),
        )
    }

    #[test]
    fn gpr_backend_learns_from_completions() {
        let mut p = gp_predictor();
        for i in 0..10u32 {
            let scale = 6.0 + f64::from(i % 4) * 2.0;
            let mut s = make_status(u64::from(i), 20_000 + u64::from(i) * 1000, scale);
            let (log, total) = run_job(&mut s);
            p.observe_completion(&log, total);
        }
        assert!(p.is_fitted(), "GPR backend should have fitted");

        let mut s = make_status(77, 22_000, 8.0);
        let mut conv = ConvergenceState::new(s.spec.convergence);
        for _ in 0..12 {
            conv.advance_epoch(256, true);
        }
        s.epochs_done = 12;
        s.samples_processed = 12.0 * 22_000.0;
        s.current_loss = conv.loss();
        s.current_accuracy = conv.accuracy();
        let predicted = p.predict_remaining_epochs(&s);
        let truth = conv.remaining_epochs_at(256);
        assert!(
            (predicted - truth).abs() < 0.6 * truth + 6.0,
            "GPR prediction {predicted} too far from truth {truth}"
        );
    }

    #[test]
    fn gpr_and_linear_agree_on_clean_data() {
        let mut lin = ProgressPredictor::new(PredictorConfig::default(), DetRng::seed(3));
        let mut gp = gp_predictor();
        for i in 0..10u32 {
            let mut s = make_status(u64::from(i), 20_000, 8.0);
            let (log, total) = run_job(&mut s);
            lin.observe_completion(&log, total);
            gp.observe_completion(&log, total);
        }
        let mut s = make_status(50, 20_000, 8.0);
        let mut conv = ConvergenceState::new(s.spec.convergence);
        for _ in 0..10 {
            conv.advance_epoch(256, true);
        }
        s.epochs_done = 10;
        s.samples_processed = 10.0 * 20_000.0;
        s.current_loss = conv.loss();
        s.current_accuracy = conv.accuracy();
        let a = lin.predict_remaining_epochs(&s);
        let b = gp.predict_remaining_epochs(&s);
        assert!(
            (a - b).abs() < 0.5 * a.max(b) + 3.0,
            "linear {a} vs GPR {b} diverge on clean in-distribution data"
        );
    }
}
