//! Predictor feature extraction.
//!
//! Footnote 1 of the paper defines the GPR predictor's input features as
//! `x = {‖D‖, L_initial, Y_processed, r_L, A}`: epoch size, initial loss,
//! processed samples, loss improvement ratio and validation accuracy. We
//! keep the same five features but condition them for a linear model:
//! `‖D‖` in kilo-samples and `Y_processed` as processed *epochs*
//! (`Y_processed/‖D‖` — the same information given that `‖D‖` is itself a
//! feature, but scale-stable across jobs whose sample counts differ by two
//! orders of magnitude).

use ones_schedcore::JobStatus;
use serde::{Deserialize, Serialize};

/// Number of predictor features.
pub const NUM_FEATURES: usize = 5;

/// A feature snapshot of one job at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureSnapshot {
    /// Epoch size ‖D‖ in kilo-samples.
    pub dataset_ksamples: f64,
    /// Loss before training started.
    pub initial_loss: f64,
    /// Epochs' worth of samples processed (Y_processed/‖D‖).
    pub processed_epochs: f64,
    /// Loss improvement ratio r_L = 1 − current/initial.
    pub loss_ratio: f64,
    /// Validation accuracy.
    pub accuracy: f64,
    /// Wall epochs completed when the snapshot was taken (bookkeeping for
    /// computing the remaining-epoch label once the job completes).
    pub epochs_done: u32,
}

impl FeatureSnapshot {
    /// Captures the current features of a job.
    #[must_use]
    pub fn capture(status: &JobStatus) -> Self {
        FeatureSnapshot {
            dataset_ksamples: status.spec.dataset_size as f64 / 1000.0,
            initial_loss: status.initial_loss,
            processed_epochs: status.processed_epochs(),
            loss_ratio: status.loss_improvement_ratio(),
            accuracy: status.current_accuracy,
            epochs_done: status.epochs_done,
        }
    }

    /// The regression input vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.dataset_ksamples,
            self.initial_loss,
            self.processed_epochs,
            self.loss_ratio,
            self.accuracy,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};
    use ones_simcore::SimTime;
    use ones_workload::{JobId, JobSpec};

    fn status() -> JobStatus {
        let spec = JobSpec {
            id: JobId(0),
            name: "t".into(),
            model: ModelKind::GoogleNet,
            dataset: DatasetKind::Cifar10,
            dataset_size: 25_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 1,
            arrival_secs: 0.0,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut s = JobStatus::submitted(spec, SimTime::ZERO);
        s.samples_processed = 75_000.0;
        s.current_loss = s.initial_loss * 0.4;
        s.current_accuracy = 0.7;
        s.epochs_done = 3;
        s
    }

    #[test]
    fn capture_matches_status() {
        let f = FeatureSnapshot::capture(&status());
        assert!((f.dataset_ksamples - 25.0).abs() < 1e-12);
        assert!((f.processed_epochs - 3.0).abs() < 1e-12);
        assert!((f.loss_ratio - 0.6).abs() < 1e-12);
        assert!((f.accuracy - 0.7).abs() < 1e-12);
        assert_eq!(f.epochs_done, 3);
    }

    #[test]
    fn vector_has_five_features() {
        let v = FeatureSnapshot::capture(&status()).to_vec();
        assert_eq!(v.len(), NUM_FEATURES);
    }
}
