//! A small local micro-benchmark harness.
//!
//! Replaces criterion (unavailable in this offline build — see
//! `shims/README.md`) for the `harness = false` benches under
//! `benches/`. The model is deliberately simple: a measurement runs the
//! closure in batches sized so one batch takes at least
//! [`BenchOpts::target_sample_nanos`], records per-iteration wall time
//! for [`BenchOpts::samples`] batches after warm-up, and reports
//! min/median/mean nanoseconds.

use std::time::Instant;

/// Batch sizing and sample-count knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Number of measured batches.
    pub samples: u32,
    /// Minimum wall time per batch; iterations per batch are calibrated
    /// so a batch does not finish faster than this.
    pub target_sample_nanos: u64,
    /// Warm-up batches discarded before measurement.
    pub warmup: u32,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            samples: 12,
            target_sample_nanos: 20_000_000,
            warmup: 2,
        }
    }
}

impl BenchOpts {
    /// A faster profile for expensive (multi-millisecond) operations.
    #[must_use]
    pub fn coarse() -> Self {
        BenchOpts {
            samples: 8,
            target_sample_nanos: 50_000_000,
            warmup: 1,
        }
    }
}

/// Result of one benchmark: per-iteration nanoseconds for every
/// measured batch.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label (printed and used as a JSON key).
    pub label: String,
    /// Per-iteration nanoseconds, one entry per measured batch.
    pub per_iter_nanos: Vec<f64>,
    /// Iterations per batch (after calibration).
    pub iters_per_sample: u64,
}

impl Measurement {
    /// Arithmetic mean of the per-batch per-iteration times.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        self.per_iter_nanos.iter().sum::<f64>() / self.per_iter_nanos.len() as f64
    }

    /// Fastest batch — the least-noise estimate of the true cost.
    #[must_use]
    pub fn min_ns(&self) -> f64 {
        self.per_iter_nanos
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Median batch.
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        let mut sorted = self.per_iter_nanos.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }

    /// Prints one aligned report row.
    pub fn print(&self) {
        println!(
            "  {:<44} {:>12} min {:>12} med {:>12} mean  ({} iters x {} samples)",
            self.label,
            fmt_ns(self.min_ns()),
            fmt_ns(self.median_ns()),
            fmt_ns(self.mean_ns()),
            self.iters_per_sample,
            self.per_iter_nanos.len(),
        );
    }
}

/// Formats nanoseconds with an adaptive unit.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Runs `f` under the default options.
pub fn bench<T>(label: &str, f: impl FnMut() -> T) -> Measurement {
    bench_with(BenchOpts::default(), label, f)
}

/// Runs `f` repeatedly and measures per-iteration wall time.
///
/// The closure's result is passed through [`std::hint::black_box`] so
/// the computation is not optimised away.
pub fn bench_with<T>(opts: BenchOpts, label: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Calibrate: grow the batch until it exceeds the target duration.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        if elapsed >= opts.target_sample_nanos || iters >= 1 << 30 {
            break;
        }
        // Aim straight for the target with 20% headroom.
        let scale = opts.target_sample_nanos as f64 / elapsed.max(1) as f64;
        iters = ((iters as f64 * scale * 1.2).ceil() as u64).max(iters + 1);
    }

    for _ in 0..opts.warmup {
        let _ = run_batch(&mut f, iters);
    }
    let per_iter_nanos = (0..opts.samples.max(1))
        .map(|_| run_batch(&mut f, iters))
        .collect();
    Measurement {
        label: label.to_string(),
        per_iter_nanos,
        iters_per_sample: iters,
    }
}

fn run_batch<T>(f: &mut impl FnMut() -> T, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let opts = BenchOpts {
            samples: 3,
            target_sample_nanos: 10_000,
            warmup: 0,
        };
        let m = bench_with(opts, "noop", || 1 + 1);
        assert_eq!(m.per_iter_nanos.len(), 3);
        assert!(m.iters_per_sample >= 1);
        assert!(m.min_ns() >= 0.0);
        assert!(m.min_ns() <= m.mean_ns() + 1e-9);
    }

    #[test]
    fn formats_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
