//! Seed-sensitivity study: re-runs the Figure 15 comparison across several
//! trace seeds and reports the mean ± sd of ONES's JCT reduction against
//! each baseline — backing EXPERIMENTS.md's claim that seeds move absolute
//! numbers but not orderings.
//!
//! ```text
//! cargo run --release -p ones-bench --bin seed_sweep \
//!     [--jobs 60] [--gpus 64] [--seeds 3]
//! ```

use ones_bench::{print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, SchedulerKind, TraceSource};
use ones_stats::desc;
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let jobs = args.get_usize("jobs", 60);
    let gpus = args.get_u32("gpus", 64);
    let n_seeds = args.get_u64("seeds", 3);

    let configs: Vec<ExperimentConfig> = (0..n_seeds)
        .flat_map(|s| {
            SchedulerKind::PAPER
                .iter()
                .map(move |&scheduler| ExperimentConfig {
                    gpus,
                    source: TraceSource::Table2(TraceConfig {
                        num_jobs: jobs,
                        arrival_rate: 1.0 / 30.0,
                        seed: 42 + s,
                        kill_fraction: 0.0,
                    }),
                    scheduler,
                    sched_seed: 1,
                    drl_pretrain_episodes: 2,
                })
        })
        .collect();
    let results = run_sweep(&configs);

    print_header("ONES JCT reduction vs baseline, across trace seeds");
    println!(
        "{:<12} {:>12} {:>10} {:>16}",
        "vs", "mean", "sd", "ONES always wins"
    );
    for base in [
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
    ] {
        let mut reductions = Vec::new();
        let mut always = true;
        for s in 0..n_seeds {
            let seed = 42 + s;
            let jct = |k: SchedulerKind| {
                results
                    .iter()
                    .find(|r| r.config.scheduler == k && r.config.source.seed() == Some(seed))
                    .expect("swept")
                    .metrics
                    .mean_jct()
            };
            let ones = jct(SchedulerKind::Ones);
            let b = jct(base);
            reductions.push(100.0 * (1.0 - ones / b));
            always &= ones < b;
        }
        println!(
            "{:<12} {:>11.1}% {:>9.1}% {:>16}",
            base.name(),
            desc::mean(&reductions),
            desc::std_dev(&reductions),
            if always { "yes" } else { "NO" }
        );
    }
}
