//! Figure 3: training accuracy over epochs with a **fixed local batch of
//! 256** on 1/2/4/8 GPUs — i.e. global batch 256·c — *without* learning-
//! rate re-scaling. More GPUs ⇒ bigger global batch ⇒ visibly slower
//! convergence, especially beyond 2 GPUs.
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig03_convergence [--epochs 60]
//! ```

use ones_bench::{print_header, Args};
use ones_dlperf::{ConvergenceModel, ConvergenceState};

fn main() {
    let args = Args::parse();
    let epochs = args.get_u32("epochs", 60);

    // ResNet50/CIFAR10-style job with reference batch 256.
    let model = ConvergenceModel {
        reference_batch: 256,
        noise_scale: 4096.0,
        ..ConvergenceModel::example()
    };

    let gpu_counts = [1u32, 2, 4, 8];
    let mut states: Vec<ConvergenceState> = gpu_counts
        .iter()
        .map(|_| ConvergenceState::new(model))
        .collect();

    print_header("Figure 3 — accuracy vs epochs, fixed local batch 256 (no LR scaling)");
    print!("{:>6}", "epoch");
    for c in gpu_counts {
        print!("  {:>7}", format!("{c}gpu"));
    }
    println!();
    for epoch in 1..=epochs {
        for (state, &c) in states.iter_mut().zip(&gpu_counts) {
            state.advance_epoch(256 * c, false);
        }
        if epoch % 5 == 0 || epoch == 1 {
            print!("{epoch:>6}");
            for state in &states {
                print!("  {:>7.3}", state.accuracy());
            }
            println!();
        }
    }
    println!(
        "\nPaper shape: convergence slows as the GPU count (hence global\n\
         batch) grows; the degradation is pronounced beyond 2 GPUs."
    );
}
