//! Predictor-accuracy study (beyond the paper's figures, validating
//! §3.2.1): mean absolute error of the remaining-epoch prediction as the
//! predictor accumulates completed jobs, for both β-model backends (the
//! fast linear default and the paper's named GPR).
//!
//! ```text
//! cargo run --release -p ones-bench --bin predictor_accuracy [--seed 42]
//! ```

use ones_bench::{print_header, Args};
use ones_dlperf::ConvergenceState;
use ones_predictor::{BetaModel, FeatureSnapshot, PredictorConfig, ProgressPredictor};
use ones_schedcore::JobStatus;
use ones_simcore::{DetRng, SimTime};
use ones_workload::{table2_catalog, JobId, JobSpec, WorkloadTemplate};

/// Builds a fresh job from a catalog template.
fn job_from(template: &WorkloadTemplate, id: u64) -> JobStatus {
    let spec = JobSpec {
        id: JobId(id),
        name: template.name(),
        model: template.model,
        dataset: template.dataset,
        dataset_size: template.dataset_size,
        submit_batch: template.default_batch,
        max_safe_batch: (template.convergence.noise_scale as u32).max(template.default_batch),
        requested_gpus: 1,
        arrival_secs: 0.0,
        kill_after_secs: None,
        convergence: template.convergence,
    };
    JobStatus::submitted(spec, SimTime::ZERO)
}

/// Trains the job at its reference batch, returning the epoch log.
fn run_job(status: &mut JobStatus) -> (Vec<FeatureSnapshot>, u32) {
    let mut conv = ConvergenceState::new(status.spec.convergence);
    let mut log = Vec::new();
    while !conv.converged() {
        conv.advance_epoch(status.spec.submit_batch, true);
        status.epochs_done = conv.epochs_done();
        status.samples_processed = f64::from(conv.epochs_done()) * status.spec.dataset_size as f64;
        status.current_loss = conv.loss();
        status.current_accuracy = conv.accuracy();
        log.push(FeatureSnapshot::capture(status));
    }
    (log, conv.epochs_done())
}

/// Mean absolute remaining-epoch error over probe jobs queried mid-run.
fn probe_error(predictor: &ProgressPredictor, catalog: &[WorkloadTemplate], seed: u64) -> f64 {
    let mut rng = DetRng::seed(seed).fork("probe");
    let mut total = 0.0;
    let mut count = 0;
    for k in 0..20u64 {
        let template = &catalog[rng.index(catalog.len())];
        let mut status = job_from(template, 10_000 + k);
        let mut conv = ConvergenceState::new(status.spec.convergence);
        let probe_epoch = 5 + rng.index(10) as u32;
        for _ in 0..probe_epoch {
            conv.advance_epoch(status.spec.submit_batch, true);
        }
        status.epochs_done = probe_epoch;
        status.samples_processed = f64::from(probe_epoch) * status.spec.dataset_size as f64;
        status.current_loss = conv.loss();
        status.current_accuracy = conv.accuracy();
        let predicted = predictor.predict_remaining_epochs(&status);
        let truth = conv.remaining_epochs_at(status.spec.submit_batch);
        total += (predicted - truth).abs();
        count += 1;
    }
    total / f64::from(count)
}

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let catalog = table2_catalog();
    let checkpoints = [0usize, 5, 10, 20, 40];

    print_header("Remaining-epoch prediction MAE vs completions observed");
    println!("{:<14} {:>12} {:>12}", "completions", "linear", "GPR");
    for &n in &checkpoints {
        let mut row = Vec::new();
        for model in [BetaModel::Linear, BetaModel::GaussianProcess] {
            let mut predictor = ProgressPredictor::new(
                PredictorConfig {
                    model,
                    capacity: 256,
                    ..PredictorConfig::default()
                },
                DetRng::seed(seed),
            );
            let mut pick = DetRng::seed(seed).fork("train");
            for i in 0..n {
                let template = &catalog[pick.index(catalog.len())];
                let mut status = job_from(template, i as u64);
                let (log, total) = run_job(&mut status);
                predictor.observe_completion(&log, total);
            }
            row.push(probe_error(&predictor, &catalog, seed));
        }
        println!("{n:<14} {:>12.2} {:>12.2}", row[0], row[1]);
    }
    println!(
        "\nReading: with no completions both backends fall back to the\n\
         cold-start prior; error drops steeply over the first handful of\n\
         completed jobs (the online-learning claim of §3.2.1)."
    );
}
