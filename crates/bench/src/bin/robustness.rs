//! Robustness study (beyond the paper's figures, motivated by §2.1): a
//! fraction of jobs end abnormally — killed by their owners or crashed —
//! instead of converging. ONES's predictor trains on whatever telemetry
//! such jobs produced; this sweep shows the scheduler's JCT advantage
//! survives increasingly dirty histories.
//!
//! ```text
//! cargo run --release -p ones-bench --bin robustness \
//!     [--jobs 60] [--gpus 64] [--seed 42]
//! ```

use ones_bench::{print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, SchedulerKind, TraceSource};
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let jobs = args.get_usize("jobs", 60);
    let rate = 1.0 / args.get_f64("rate-secs", 30.0);
    let seed = args.get_u64("seed", 42);
    let gpus = args.get_u32("gpus", 64);
    let fractions = [0.0, 0.1, 0.2, 0.3];
    let schedulers = [
        SchedulerKind::Ones,
        SchedulerKind::Tiresias,
        SchedulerKind::Drl,
    ];

    let configs: Vec<ExperimentConfig> = fractions
        .iter()
        .flat_map(|&kill_fraction| {
            let trace = TraceConfig {
                num_jobs: jobs,
                arrival_rate: rate,
                seed,
                kill_fraction,
            };
            schedulers.iter().map(move |&scheduler| ExperimentConfig {
                gpus,
                source: TraceSource::Table2(trace),
                scheduler,
                sched_seed: 1,
                drl_pretrain_episodes: 0,
            })
        })
        .collect();
    let results = run_sweep(&configs);

    print_header("Average JCT of normally-completed jobs vs abnormal-ending rate");
    print!("{:<10}", "scheduler");
    for f in fractions {
        print!(" {:>11}", format!("{:.0}% killed", 100.0 * f));
    }
    println!();
    for s in schedulers {
        print!("{:<10}", s.name());
        for f in fractions {
            let r = results
                .iter()
                .find(|r| {
                    r.config.scheduler == s
                        && r.config
                            .source
                            .kill_fraction()
                            .is_some_and(|kf| (kf - f).abs() < 1e-9)
                })
                .expect("swept");
            print!(" {:>11.1}", r.metrics.mean_jct());
        }
        println!();
    }
    println!(
        "\nReading: ONES keeps its lead as abnormal endings pollute the\n\
         predictor's training data — the Beta-regression predictor degrades\n\
         gracefully because its labels come from whatever epochs a job did\n\
         run, not from an assumption that jobs end normally (§2.1, §3.2.1)."
    );
}
