//! Figure 16: re-configuration overhead per model — ONES's elastic batch
//! size scaling (~1 s) versus checkpoint-based migration (tens of
//! seconds).
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig16_scaling_overhead
//! ```

use ones_bench::print_header;
use ones_cluster::{AllReduceModel, ClusterSpec, Placement};
use ones_dlperf::ModelKind;
use ones_sched::ScalingCostModel;

fn main() {
    let cost = ScalingCostModel::default();
    let allreduce = AllReduceModel::new(ClusterSpec::longhorn());
    let placement = Placement::contiguous(0, 4);

    print_header("Figure 16 — re-configuration overhead (seconds)");
    println!(
        "{:<12} {:>10} {:>12} {:>8}",
        "model", "elastic", "checkpoint", "ratio"
    );
    for kind in ModelKind::ALL {
        let profile = kind.profile();
        let elastic = cost.elastic_cost(&profile, &allreduce, &placement, true);
        let checkpoint = cost.checkpoint_cost(&profile);
        println!(
            "{:<12} {:>10.2} {:>12.1} {:>7.0}x",
            kind.to_string(),
            elastic,
            checkpoint,
            checkpoint / elastic
        );
    }
    println!(
        "\nPaper shape: elastic scaling stays around one second for every\n\
         model; checkpoint-based migration exceeds twenty seconds and grows\n\
         with model size (checkpoint write over 1 Gbps HDFS + restart +\n\
         input-pipeline rebuild + weight reload)."
    );
}
