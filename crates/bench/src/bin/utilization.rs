//! Cluster-saturation study (beyond the paper's figures, quantifying the
//! §2.2 claim "we can saturate the cluster to fully utilize the GPU
//! resources"): GPU-utilisation-over-time series and aggregates per
//! scheduler on the same contended trace.
//!
//! ```text
//! cargo run --release -p ones-bench --bin utilization \
//!     [--jobs 60] [--gpus 64] [--seed 42]
//! ```

use ones_bench::{print_header, Args};
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::DetRng;
use ones_simulator::{SchedulerKind, SimConfig, Simulation, Timeline};
use ones_workload::{Trace, TraceConfig};

fn main() {
    let args = Args::parse();
    let trace = Trace::generate(TraceConfig {
        num_jobs: args.get_usize("jobs", 60),
        arrival_rate: 1.0 / args.get_f64("rate-secs", 30.0),
        seed: args.get_u64("seed", 42),
        kill_fraction: 0.0,
    });
    let gpus = args.get_u32("gpus", 64);
    let spec = ClusterSpec::longhorn_subset(gpus);
    let schedulers = [
        SchedulerKind::Ones,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
        SchedulerKind::Gandiva,
        SchedulerKind::Fifo,
    ];

    let mut rows = Vec::new();
    for kind in schedulers {
        let scheduler = kind.build(&spec, &trace, &DetRng::seed(1));
        let result = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig {
                record_trace: true,
                ..SimConfig::default()
            },
        )
        .run();
        assert!(result.all_completed, "{} stalled", kind.name());
        let tl = Timeline::from_result(&result);
        rows.push((kind, result, tl));
    }

    print_header("GPU utilisation over normalised run time (busy fraction)");
    print!("{:<10}", "t/makespan");
    for frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
        print!(" {frac:>7.2}");
    }
    println!(" {:>8} {:>9} {:>9}", "mean", "makespan", "peak wait");
    for (kind, result, tl) in &rows {
        print!("{:<10}", kind.name());
        let end = result.makespan;
        for frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let u = tl
                .at(end * frac)
                .map_or(0.0, |p| f64::from(p.busy_gpus) / f64::from(tl.total_gpus));
            print!(" {u:>7.2}");
        }
        println!(
            " {:>7.1}% {:>9.0} {:>9}",
            100.0 * result.gpu_utilization(),
            result.makespan,
            tl.peak_waiting()
        );
    }
    println!(
        "\nReading: elastic admission lets ONES keep the cluster saturated\n\
         while the trace is backlogged and finish (smaller makespan) without\n\
         long waiting queues; gang-scheduled fixed sizes leave fragmentation\n\
         holes."
    );
}
