//! Figure 2: training speed of ResNet50 on CIFAR10 — elastic batch size
//! (scaled 256 → 2048 with the workers) versus fixed global batch 256,
//! for 1–8 workers.
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig02_throughput
//! ```

use ones_bench::print_header;
use ones_cluster::{ClusterSpec, Placement};
use ones_dlperf::{DatasetKind, ModelKind, PerfModel};

fn main() {
    let perf = PerfModel::new(ClusterSpec::longhorn());
    let profile = ModelKind::ResNet50
        .profile()
        .for_dataset(DatasetKind::Cifar10);

    print_header("Figure 2 — ResNet50/CIFAR10 throughput (samples/s)");
    println!(
        "{:>8} {:>16} {:>18}",
        "workers", "fixed B=256", "elastic B=256*c"
    );
    for c in [1u32, 2, 4, 8] {
        let placement = Placement::contiguous(0, c);
        let fixed = PerfModel::split_batch(&profile, 256, &placement)
            .map(|b| perf.throughput(&profile, &b, &placement))
            .unwrap_or(f64::NAN);
        let elastic_batch = 256 * c;
        let elastic = PerfModel::split_batch(&profile, elastic_batch, &placement)
            .map(|b| perf.throughput(&profile, &b, &placement))
            .unwrap_or(f64::NAN);
        println!("{c:>8} {fixed:>16.0} {elastic:>18.0}");
    }
    println!(
        "\nPaper shape: fixed-batch throughput saturates and drops past the\n\
         peak; elastic batch keeps scaling with the worker count."
    );
}
