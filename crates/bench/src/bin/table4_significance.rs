//! Table 4: Wilcoxon significance tests of ONES against each baseline on
//! per-job JCTs (two-sided equivalence test + one-sided "ONES is smaller"
//! test, reported with the paper's sign convention).
//!
//! ```text
//! cargo run --release -p ones-bench --bin table4_significance \
//!     [--jobs 120] [--gpus 64] [--seed 42]
//! ```

use ones_bench::{print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, SchedulerKind, TraceSource};
use ones_stats::{signed_rank_test, Alternative};
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let trace = TraceConfig {
        num_jobs: args.get_usize("jobs", 120),
        arrival_rate: 1.0 / args.get_f64("rate-secs", 30.0),
        seed: args.get_u64("seed", 42),
        kill_fraction: 0.0,
    };
    let gpus = args.get_u32("gpus", 64);
    let configs: Vec<ExperimentConfig> = SchedulerKind::PAPER
        .iter()
        .map(|&scheduler| ExperimentConfig {
            gpus,
            source: TraceSource::Table2(trace),
            scheduler,
            sched_seed: 1,
            drl_pretrain_episodes: 3,
        })
        .collect();
    let results = run_sweep(&configs);
    let ones = &results[0].metrics.jct;

    print_header("Table 4 — Wilcoxon tests on per-job JCT (ONES vs baseline)");
    println!(
        "{:<14} {:>22} {:>28}",
        "", "p (two-sided test)", "p (one-sided negative test)"
    );
    for r in &results[1..] {
        let base = &r.metrics.jct;
        let two = signed_rank_test(ones, base, Alternative::TwoSided);
        // The paper's "one-sided negative test" evaluates H: ONES < base
        // and *accepts* at p close to 1 under their convention — i.e. it
        // reports the Greater-tail p of (ONES − base), which approaches 1
        // exactly when ONES's JCTs are systematically smaller.
        let neg = signed_rank_test(ones, base, Alternative::Greater);
        println!(
            "vs. {:<10} {:>22} {:>28}",
            r.config.scheduler.name(),
            format_p(two.p_value),
            format_p(neg.p_value)
        );
    }
    println!(
        "\nPaper shape: two-sided p-values far below 0.05 (distributions\n\
         differ) and one-sided negative p-values near 1 (ONES's JCTs are\n\
         smaller)."
    );
}

fn format_p(p: f64) -> String {
    if p < 1e-3 {
        format!("{p:.2e}")
    } else {
        format!("{p:.5}")
    }
}
