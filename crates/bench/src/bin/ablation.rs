//! Ablation study (beyond the paper): which of ONES's ingredients buys
//! what? Runs the Table 2 trace under ONES and four crippled variants —
//! greedy single-candidate search, no progress predictor, no reorder
//! operation, checkpoint-restart execution — and prints the per-variant
//! cost of the missing piece.
//!
//! ```text
//! cargo run --release -p ones-bench --bin ablation \
//!     [--jobs 60] [--gpus 64] [--seed 42] [--rate-secs 30]
//! ```

use ones_bench::{print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, SchedulerKind, TraceSource};
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let trace = TraceConfig {
        num_jobs: args.get_usize("jobs", 60),
        arrival_rate: 1.0 / args.get_f64("rate-secs", 30.0),
        seed: args.get_u64("seed", 42),
        kill_fraction: 0.0,
    };
    let gpus = args.get_u32("gpus", 64);

    let configs: Vec<ExperimentConfig> = SchedulerKind::ABLATIONS
        .iter()
        .map(|&scheduler| ExperimentConfig {
            gpus,
            source: TraceSource::Table2(trace),
            scheduler,
            sched_seed: args.get_u64("sched-seed", 1),
            drl_pretrain_episodes: 0,
        })
        .collect();
    let results = run_sweep(&configs);
    let full = &results[0];

    print_header("ONES ablations — cost of removing each ingredient");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "variant", "avg JCT", "avg exec", "avg queue", "overhead", "vs ONES"
    );
    for r in &results {
        let delta = 100.0 * (r.metrics.mean_jct() / full.metrics.mean_jct() - 1.0);
        println!(
            "{:<16} {:>9.1} {:>9.1} {:>9.1} {:>10.0} {:>11.1}%",
            r.config.scheduler.name(),
            r.metrics.mean_jct(),
            r.metrics.mean_exec(),
            r.metrics.mean_queue(),
            r.total_overhead,
            delta
        );
    }
    println!(
        "\nReading: positive 'vs ONES' percentages are the JCT penalty paid\n\
         for removing that ingredient (population-based search, the online\n\
         predictor, the reorder operation, elastic NCCL scaling)."
    );
}
