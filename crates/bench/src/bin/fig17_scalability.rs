//! Figures 17 & 18: scheduling scalability — average JCT and queueing
//! time for every scheduler at 16/32/48/64 GPUs, plus ONES's relative
//! improvement over each baseline per cluster size (Figure 18).
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig17_scalability \
//!     [--jobs 120] [--seed 42] [--rate-secs 30]
//! ```

use ones_bench::{print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, ExperimentResult, SchedulerKind, TraceSource};
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let trace = TraceConfig {
        num_jobs: args.get_usize("jobs", 120),
        arrival_rate: 1.0 / args.get_f64("rate-secs", 30.0),
        seed: args.get_u64("seed", 42),
        kill_fraction: 0.0,
    };
    let sizes = [16u32, 32, 48, 64];

    let configs: Vec<ExperimentConfig> = sizes
        .iter()
        .flat_map(|&gpus| {
            SchedulerKind::PAPER
                .iter()
                .map(move |&scheduler| ExperimentConfig {
                    gpus,
                    source: TraceSource::Table2(trace),
                    scheduler,
                    sched_seed: 1,
                    drl_pretrain_episodes: 3,
                })
        })
        .collect();
    let results = run_sweep(&configs);
    let find = |gpus: u32, s: SchedulerKind| -> &ExperimentResult {
        results
            .iter()
            .find(|r| r.config.gpus == gpus && r.config.scheduler == s)
            .expect("swept")
    };

    print_header("Figure 17 — average JCT (s) vs cluster size");
    print!("{:<10}", "scheduler");
    for g in sizes {
        print!(" {:>9}", format!("{g} GPUs"));
    }
    println!();
    for s in SchedulerKind::PAPER {
        print!("{:<10}", s.name());
        for g in sizes {
            print!(" {:>9.1}", find(g, s).metrics.mean_jct());
        }
        println!();
    }

    print_header("Figure 17 — average queueing time (s) vs cluster size");
    for s in SchedulerKind::PAPER {
        print!("{:<10}", s.name());
        for g in sizes {
            print!(" {:>9.1}", find(g, s).metrics.mean_queue());
        }
        println!();
    }

    print_header("Figure 18 — ONES improvement in average JCT (%)");
    print!("{:<12}", "vs");
    for g in sizes {
        print!(" {:>9}", format!("{g} GPUs"));
    }
    println!();
    for s in [
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
    ] {
        print!("{:<12}", s.name());
        for g in sizes {
            let ones = find(g, SchedulerKind::Ones).metrics.mean_jct();
            let base = find(g, s).metrics.mean_jct();
            print!(" {:>8.1}%", 100.0 * (1.0 - ones / base));
        }
        println!();
    }
    println!(
        "\nPaper shape: average JCT falls roughly linearly with cluster\n\
         size for every scheduler, and ONES's improvement widens as more\n\
         GPUs give its elasticity more room."
    );
}
