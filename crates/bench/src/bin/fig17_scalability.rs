//! Figures 17 & 18: scheduling scalability — average JCT and queueing
//! time for every scheduler at 16/32/48/64 GPUs, plus ONES's relative
//! improvement over each baseline per cluster size (Figure 18).
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig17_scalability \
//!     [--jobs 120] [--seed 42] [--rate-secs 30] \
//!     [--sizes 16,32,48,64] [--schedulers ONES,DRL,Tiresias,Optimus]
//! ```
//!
//! Scale rows beyond the paper's figure are reachable with `--sizes` —
//! e.g. a 1k/10k-GPU check of the evolutionary search inside a full
//! simulation (restrict to ONES; the planning baselines dominate the
//! sweep wall time at these sizes):
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig17_scalability \
//!     --sizes 1024,10240 --schedulers ONES --jobs 240 --rate-secs 5
//! ```

use ones_bench::{print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, ExperimentResult, SchedulerKind, TraceSource};
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let trace = TraceConfig {
        num_jobs: args.get_usize("jobs", 120),
        arrival_rate: 1.0 / args.get_f64("rate-secs", 30.0),
        seed: args.get_u64("seed", 42),
        kill_fraction: 0.0,
    };
    let sizes = args.get_u32_list("sizes", &[16, 32, 48, 64]);
    let schedulers: Vec<SchedulerKind> = {
        let sel = args.get_str("schedulers", "");
        if sel.is_empty() {
            SchedulerKind::PAPER.to_vec()
        } else {
            sel.split(',')
                .map(|n| {
                    let n = n.trim();
                    SchedulerKind::PAPER
                        .iter()
                        .copied()
                        .find(|s| s.name().eq_ignore_ascii_case(n))
                        .unwrap_or_else(|| panic!("--schedulers: unknown scheduler {n}"))
                })
                .collect()
        }
    };

    let configs: Vec<ExperimentConfig> = sizes
        .iter()
        .flat_map(|&gpus| {
            schedulers.iter().map(move |&scheduler| ExperimentConfig {
                gpus,
                source: TraceSource::Table2(trace),
                scheduler,
                sched_seed: 1,
                drl_pretrain_episodes: 3,
            })
        })
        .collect();
    let results = run_sweep(&configs);
    let find = |gpus: u32, s: SchedulerKind| -> &ExperimentResult {
        results
            .iter()
            .find(|r| r.config.gpus == gpus && r.config.scheduler == s)
            .expect("swept")
    };

    print_header("Figure 17 — average JCT (s) vs cluster size");
    print!("{:<10}", "scheduler");
    for &g in &sizes {
        print!(" {:>9}", format!("{g} GPUs"));
    }
    println!();
    for &s in &schedulers {
        print!("{:<10}", s.name());
        for &g in &sizes {
            print!(" {:>9.1}", find(g, s).metrics.mean_jct());
        }
        println!();
    }

    print_header("Figure 17 — average queueing time (s) vs cluster size");
    for &s in &schedulers {
        print!("{:<10}", s.name());
        for &g in &sizes {
            print!(" {:>9.1}", find(g, s).metrics.mean_queue());
        }
        println!();
    }

    let baselines: Vec<SchedulerKind> = [
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
    ]
    .into_iter()
    .filter(|s| schedulers.contains(s))
    .collect();
    if schedulers.contains(&SchedulerKind::Ones) && !baselines.is_empty() {
        print_header("Figure 18 — ONES improvement in average JCT (%)");
        print!("{:<12}", "vs");
        for &g in &sizes {
            print!(" {:>9}", format!("{g} GPUs"));
        }
        println!();
        for &s in &baselines {
            print!("{:<12}", s.name());
            for &g in &sizes {
                let ones = find(g, SchedulerKind::Ones).metrics.mean_jct();
                let base = find(g, s).metrics.mean_jct();
                print!(" {:>8.1}%", 100.0 * (1.0 - ones / base));
            }
            println!();
        }
    }
    println!(
        "\nPaper shape: average JCT falls roughly linearly with cluster\n\
         size for every scheduler, and ONES's improvement widens as more\n\
         GPUs give its elasticity more room."
    );
}
