//! Figure 13: scaling the batch size abruptly from 256 to 4096 at epoch
//! 30 (ResNet50 on CIFAR10) produces a sudden spike in the training loss,
//! followed by a slow recovery. A control run that stays at 256 is printed
//! alongside.
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig13_abrupt_scaling [--epochs 90]
//! ```

use ones_bench::{print_header, Args};
use ones_dlperf::{ConvergenceModel, ConvergenceState};

fn main() {
    let args = Args::parse();
    let epochs = args.get_u32("epochs", 90);

    let model = ConvergenceModel {
        reference_batch: 256,
        noise_scale: 4096.0,
        ..ConvergenceModel::example()
    };
    let mut scaled = ConvergenceState::new(model);
    let mut control = ConvergenceState::new(model);

    print_header("Figure 13 — loss when scaling 256 -> 4096 at epoch 30");
    println!("{:>6} {:>12} {:>12}", "epoch", "scaled", "control");
    for epoch in 1..=epochs {
        if epoch == 30 {
            let destroyed = scaled.on_batch_change(4096);
            println!(
                "     -- abrupt jump: {destroyed:.2} reference epochs of progress destroyed --"
            );
        }
        let batch = if epoch >= 30 { 4096 } else { 256 };
        scaled.advance_epoch(batch, true);
        control.advance_epoch(256, true);
        if epoch % 3 == 0 || (29..=36).contains(&epoch) {
            println!(
                "{epoch:>6} {:>12.4} {:>12.4}",
                scaled.loss(),
                control.loss()
            );
        }
    }
    println!(
        "\nPaper shape: the scaled run's loss jumps at epoch 30 and needs\n\
         many epochs to return to the control trajectory."
    );
}
