//! Figure 14: scaling the batch size *gradually* — 256 for the first 30
//! epochs, 1024 for the next 30, 4096 for the last 30 — keeps the training
//! loss smooth (contrast with Figure 13's abrupt jump). Each stage
//! transition is itself applied as a sequence of doublings, which is
//! exactly how the ONES scale-up policy grows the limit.
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig14_gradual_scaling
//! ```

use ones_bench::print_header;
use ones_dlperf::{ConvergenceModel, ConvergenceState};

fn main() {
    let model = ConvergenceModel {
        reference_batch: 256,
        noise_scale: 4096.0,
        ..ConvergenceModel::example()
    };
    let mut gradual = ConvergenceState::new(model);
    let mut abrupt = ConvergenceState::new(model);

    print_header("Figure 14 — loss under gradual scaling 256 -> 1024 -> 4096");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "epoch", "batch", "gradual", "abrupt-ref"
    );
    let mut total_destroyed_gradual = 0.0;
    for epoch in 1..=90u32 {
        let stage_batch = match epoch {
            1..=30 => 256,
            31..=60 => 1024,
            _ => 4096,
        };
        // Gradual path: enter each stage through doublings (256->512->1024,
        // 1024->2048->4096), one per event — penalty-free by Figure 14.
        if epoch == 31 {
            total_destroyed_gradual += gradual.on_batch_change(512);
            total_destroyed_gradual += gradual.on_batch_change(1024);
        }
        if epoch == 61 {
            total_destroyed_gradual += gradual.on_batch_change(2048);
            total_destroyed_gradual += gradual.on_batch_change(4096);
        }
        // Abrupt reference: jump straight to the stage batch.
        if epoch == 31 || epoch == 61 {
            let _ = abrupt.on_batch_change(stage_batch);
        }
        gradual.advance_epoch(stage_batch, true);
        abrupt.advance_epoch(stage_batch, true);
        if epoch % 5 == 0 || epoch == 31 || epoch == 61 {
            println!(
                "{epoch:>6} {stage_batch:>8} {:>12.4} {:>12.4}",
                gradual.loss(),
                abrupt.loss()
            );
        }
    }
    println!(
        "\nGradual doublings destroyed {total_destroyed_gradual:.2} reference epochs of progress\n\
         (Figure 14: none); the abrupt reference spikes at each stage\n\
         boundary instead."
    );
}
