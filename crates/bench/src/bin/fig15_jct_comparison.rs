//! Figure 15 (a–i): scheduling performance of ONES vs DRL, Tiresias and
//! Optimus on the Table 2 trace at 64 GPUs — average / box-plot / CDF of
//! job completion time, execution time and queueing time.
//!
//! ```text
//! cargo run --release -p ones-bench --bin fig15_jct_comparison \
//!     [--jobs 120] [--gpus 64] [--seed 42] [--rate-secs 30]
//! ```

use ones_bench::{cdf_at_grid, print_header, Args};
use ones_simulator::{run_sweep, ExperimentConfig, SchedulerKind, TraceSource};
use ones_stats::BoxPlot;
use ones_workload::TraceConfig;

fn main() {
    let args = Args::parse();
    let trace = TraceConfig {
        num_jobs: args.get_usize("jobs", 120),
        arrival_rate: 1.0 / args.get_f64("rate-secs", 30.0),
        seed: args.get_u64("seed", 42),
        kill_fraction: 0.0,
    };
    let gpus = args.get_u32("gpus", 64);

    let configs: Vec<ExperimentConfig> = SchedulerKind::PAPER
        .iter()
        .map(|&scheduler| ExperimentConfig {
            gpus,
            source: TraceSource::Table2(trace),
            scheduler,
            sched_seed: args.get_u64("sched-seed", 1),
            drl_pretrain_episodes: 3,
        })
        .collect();
    let results = run_sweep(&configs);

    // (a–c) averages.
    print_header("Figure 15a–c — average times (seconds)");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "scheduler", "avg JCT", "avg exec", "avg queue"
    );
    for r in &results {
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12.1}",
            r.config.scheduler.name(),
            r.metrics.mean_jct(),
            r.metrics.mean_exec(),
            r.metrics.mean_queue()
        );
    }
    let ones = &results[0];
    for r in &results[1..] {
        let red = 100.0 * (1.0 - ones.metrics.mean_jct() / r.metrics.mean_jct());
        println!(
            "ONES reduces average JCT vs {} by {red:.1}%",
            r.config.scheduler.name()
        );
    }

    // (d–f) box plots.
    print_header("Figure 15d–f — box plots (q1 / median / q3 / whiskers)");
    for (metric, pick) in [("JCT", 0usize), ("execution", 1), ("queueing", 2)] {
        println!("-- {metric} --");
        for r in &results {
            let data = match pick {
                0 => &r.metrics.jct,
                1 => &r.metrics.exec,
                _ => &r.metrics.queue,
            };
            let b = BoxPlot::of(data);
            println!(
                "{:<10} lo={:>8.1} q1={:>8.1} med={:>8.1} q3={:>8.1} hi={:>8.1} outliers={}",
                r.config.scheduler.name(),
                b.whisker_lo,
                b.q1,
                b.median,
                b.q3,
                b.whisker_hi,
                b.outliers.len()
            );
        }
    }

    // (g–i) cumulative frequency curves on a shared grid.
    let grid = [
        50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0,
    ];
    print_header("Figure 15g–i — cumulative frequency at time thresholds (s)");
    for (metric, pick) in [("JCT", 0usize), ("execution", 1), ("queueing", 2)] {
        println!("-- {metric} --");
        print!("{:<10}", "threshold");
        for g in grid {
            print!(" {g:>7.0}");
        }
        println!();
        for r in &results {
            let (cj, ce, cq) = r.metrics.cdfs();
            let curve: Vec<(f64, f64)> = match pick {
                0 => cj,
                1 => ce,
                _ => cq,
            };
            print!("{:<10}", r.config.scheduler.name());
            for f in cdf_at_grid(&curve, &grid) {
                print!(" {f:>7.2}");
            }
            println!();
        }
    }

    print_header("§4.2 headline fractions");
    for r in &results {
        println!(
            "{:<10} fraction of jobs completed within 200 s: {:.0}%",
            r.config.scheduler.name(),
            100.0 * r.metrics.fraction_within(200.0)
        );
    }

    print_header("GPU utilisation (busy GPU-seconds / capacity)");
    for r in &results {
        println!(
            "{:<10} {:.1}%",
            r.config.scheduler.name(),
            100.0 * r.gpu_utilization
        );
    }
}
