//! # ones-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (§4):
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig02_throughput` | Figure 2 — elastic vs fixed batch throughput |
//! | `fig03_convergence` | Figure 3 — fixed local batch convergence |
//! | `fig13_abrupt_scaling` | Figure 13 — loss spike on abrupt scaling |
//! | `fig14_gradual_scaling` | Figure 14 — gradual scaling stays smooth |
//! | `fig15_jct_comparison` | Figure 15 a–i — JCT/exec/queue comparison |
//! | `fig16_scaling_overhead` | Figure 16 — elastic vs checkpoint overhead |
//! | `fig17_scalability` | Figures 17 & 18 — cluster-size sweep |
//! | `table4_significance` | Table 4 — Wilcoxon significance tests |
//!
//! Each binary accepts `--seed N`, `--jobs N` and (where applicable)
//! `--gpus N`, and prints the same rows/series the paper plots.
//! Micro-benches for the scheduler's hot paths live under `benches/`,
//! built on the local [`harness`] module (criterion is unavailable in
//! this offline build — see `shims/README.md`).

pub mod harness;

use std::collections::BTreeMap;

/// Minimal `--key value` argument parser shared by the bench binaries.
///
/// # Example
/// ```
/// let args = ones_bench::Args::parse_from(["--seed", "7", "--jobs", "50"]);
/// assert_eq!(args.get_u64("seed", 42), 7);
/// assert_eq!(args.get_usize("jobs", 120), 50);
/// assert_eq!(args.get_u64("gpus", 64), 64);
/// ```
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process's own arguments.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable form).
    ///
    /// # Panics
    /// Panics on a dangling `--key` without a value or a stray positional
    /// argument — bench invocations should fail loudly, not guess.
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = BTreeMap::new();
        let mut iter = args.into_iter().map(Into::into);
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                panic!("unexpected positional argument: {key}");
            };
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("--{name} requires a value"));
            values.insert(name.to_string(), value);
        }
        Args { values }
    }

    /// Integer argument with default.
    ///
    /// # Panics
    /// Panics when the value is present but unparsable.
    #[must_use]
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.values.get(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name}: bad value {v}"))
        })
    }

    /// `usize` argument with default.
    #[must_use]
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get_u64(name, default as u64) as usize
    }

    /// `u32` argument with default.
    #[must_use]
    pub fn get_u32(&self, name: &str, default: u32) -> u32 {
        u32::try_from(self.get_u64(name, u64::from(default))).expect("value out of u32 range")
    }

    /// Float argument with default.
    ///
    /// # Panics
    /// Panics when the value is present but unparsable.
    #[must_use]
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.values.get(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name}: bad value {v}"))
        })
    }

    /// String argument with default.
    #[must_use]
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Comma-separated `u32` list argument with default (e.g.
    /// `--sizes 16,32,1024`).
    ///
    /// # Panics
    /// Panics when any element is unparsable.
    #[must_use]
    pub fn get_u32_list(&self, name: &str, default: &[u32]) -> Vec<u32> {
        self.values.get(name).map_or_else(
            || default.to_vec(),
            |v| {
                v.split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{name}: bad value {v}"))
                    })
                    .collect()
            },
        )
    }
}

/// Prints a section header, for readable series output.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

/// Samples a step-function CDF at the given x-grid.
#[must_use]
pub fn cdf_at_grid(cdf: &[(f64, f64)], grid: &[f64]) -> Vec<f64> {
    grid.iter()
        .map(|&x| {
            cdf.iter()
                .take_while(|(v, _)| *v <= x)
                .last()
                .map_or(0.0, |(_, f)| *f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults_and_overrides() {
        let a = Args::parse_from(["--gpus", "32"]);
        assert_eq!(a.get_u32("gpus", 64), 32);
        assert_eq!(a.get_u64("seed", 42), 42);
        assert_eq!(a.get_f64("rate", 0.5), 0.5);
    }

    #[test]
    fn args_u32_list() {
        let a = Args::parse_from(["--sizes", "16, 32,1024"]);
        assert_eq!(a.get_u32_list("sizes", &[1]), vec![16, 32, 1024]);
        assert_eq!(a.get_u32_list("other", &[48, 64]), vec![48, 64]);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn dangling_flag_rejected() {
        let _ = Args::parse_from(["--seed"]);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_rejected() {
        let _ = Args::parse_from(["7"]);
    }

    #[test]
    fn cdf_grid_interpolates_stepwise() {
        let cdf = vec![(10.0, 0.25), (20.0, 0.75), (30.0, 1.0)];
        let at = cdf_at_grid(&cdf, &[5.0, 10.0, 25.0, 100.0]);
        assert_eq!(at, vec![0.0, 0.25, 0.75, 1.0]);
    }
}
