//! Criterion micro-bench: Algorithm 1 — drawing per-job completion
//! fractions from Beta distributions and scoring candidate schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ones_simcore::DetRng;
use ones_stats::Beta;

fn bench_beta_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("beta_sampling");
    for &(alpha, beta) in &[(1.0, 30.0), (5.0, 5.0), (40.0, 2.0)] {
        let dist = Beta::new(alpha, beta);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("a{alpha}_b{beta}")),
            &dist,
            |b, dist| {
                let mut rng = DetRng::seed(7);
                b.iter(|| std::hint::black_box(dist.sample(&mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_algorithm1_round(c: &mut Criterion) {
    // One Algorithm 1 round over J jobs: J Beta samples + J score terms.
    let mut group = c.benchmark_group("algorithm1_round");
    for jobs in [16usize, 64, 256] {
        let dists: Vec<Beta> = (0..jobs)
            .map(|i| Beta::new(1.0 + (i % 10) as f64, 5.0 + (i % 30) as f64))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &dists, |b, dists| {
            let mut rng = DetRng::seed(11);
            b.iter(|| {
                let score: f64 = dists
                    .iter()
                    .enumerate()
                    .map(|(i, d)| {
                        let rho = d.sample(&mut rng).max(0.005);
                        let y_processed = 1000.0 * (1.0 + i as f64);
                        ones_predictor::remaining_workload(y_processed, rho) / 3000.0
                    })
                    .sum();
                std::hint::black_box(score)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beta_sampling, bench_algorithm1_round);
criterion_main!(benches);
