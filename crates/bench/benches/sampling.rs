//! Micro-bench: Algorithm 1 — drawing per-job completion fractions from
//! Beta distributions and scoring candidate schedules.

use ones_bench::harness::bench;
use ones_simcore::DetRng;
use ones_stats::Beta;

fn main() {
    ones_bench::print_header("beta_sampling");
    for &(alpha, beta) in &[(1.0, 30.0), (5.0, 5.0), (40.0, 2.0)] {
        let dist = Beta::new(alpha, beta);
        let mut rng = DetRng::seed(7);
        bench(&format!("a{alpha}_b{beta}"), || dist.sample(&mut rng)).print();
    }

    // One Algorithm 1 round over J jobs: J Beta samples + J score terms.
    ones_bench::print_header("algorithm1_round");
    for jobs in [16usize, 64, 256] {
        let dists: Vec<Beta> = (0..jobs)
            .map(|i| Beta::new(1.0 + (i % 10) as f64, 5.0 + (i % 30) as f64))
            .collect();
        let mut rng = DetRng::seed(11);
        bench(&format!("jobs/{jobs}"), || {
            dists
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let rho = d.sample(&mut rng).max(0.005);
                    let y_processed = 1000.0 * (1.0 + i as f64);
                    ones_predictor::remaining_workload(y_processed, rho) / 3000.0
                })
                .sum::<f64>()
        })
        .print();
    }
}
