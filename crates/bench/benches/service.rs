//! Service macro-bench: hammer a live `ones-d` daemon over loopback HTTP
//! while its scheduler core replays the submitted jobs, and report
//! sustained request throughput and latency percentiles.
//!
//! Acceptance gate for the daemon PR: at least 5,000 combined
//! submit+query requests with zero dropped or errored requests, with
//! `GET /metrics` serving live `evo.search.*` / `simulator.*` series
//! mid-run. Results land in `BENCH_service.json` (path overridable via
//! the `BENCH_JSON` environment variable).

use ones_cluster::ClusterSpec;
use ones_d::{serve, Client, ServeOptions};
use ones_simcore::DetRng;
use ones_simulator::{SchedulerKind, SimBackend, SimConfig};
use ones_workload::{Trace, TraceConfig};
use std::time::{Duration, Instant};

const GPUS: u32 = 32;
const TOTAL_REQUESTS: usize = 6_000;
const SUBMIT_EVERY: usize = 50; // 120 submissions inside 6,000 requests
const REQUIRED_REQUESTS: usize = 5_000;

/// Minimal wire bodies cycled through for submissions; ids and arrival
/// times are assigned by the daemon.
const SUBMIT_BODIES: [&str; 4] = [
    r#"{"model": "ResNet18", "dataset": "CIFAR10", "dataset_size": 20000,
        "submit_batch": 256, "requested_gpus": 1}"#,
    r#"{"model": "ResNet50", "dataset": "ImageNet", "dataset_size": 12000,
        "submit_batch": 256, "requested_gpus": 2}"#,
    r#"{"model": "BERT", "dataset": "CoLA", "dataset_size": 8000,
        "submit_batch": 32, "requested_gpus": 1}"#,
    r#"{"model": "VGG16", "dataset": "CIFAR10", "dataset_size": 30000,
        "submit_batch": 256, "requested_gpus": 2}"#,
];

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * q).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1e3
}

fn stats(mut ns: Vec<u64>, elapsed: Duration) -> serde_json::Value {
    ns.sort_unstable();
    let count = ns.len();
    let qps = if elapsed.is_zero() {
        0.0
    } else {
        count as f64 / elapsed.as_secs_f64()
    };
    serde_json::json!({
        "count": count as u64,
        "qps": qps,
        "p50_us": percentile_us(&ns, 0.50),
        "p90_us": percentile_us(&ns, 0.90),
        "p99_us": percentile_us(&ns, 0.99),
        "max_us": percentile_us(&ns, 1.0),
    })
}

fn main() {
    ones_bench::print_header(&format!(
        "service_{GPUS}gpu_{TOTAL_REQUESTS}req (live ones-d over loopback HTTP)"
    ));
    ones_obs::set_level(ones_obs::ObsLevel::Counters);

    let spec = ClusterSpec::longhorn_subset(GPUS);
    let trace = Trace {
        config: TraceConfig {
            num_jobs: 0,
            arrival_rate: 1.0 / 10.0,
            seed: 1,
            kill_fraction: 0.0,
        },
        jobs: Vec::new(),
    };
    let scheduler = SchedulerKind::Ones.build(&spec, &trace, &DetRng::seed(1));
    let backend = SimBackend::new(spec, &trace, scheduler, SimConfig::default());
    let handle = serve(
        Box::new(backend),
        ServeOptions {
            events_per_batch: 16,
            ..ServeOptions::default()
        },
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).expect("resolve daemon address");

    let mut submit_ns: Vec<u64> = Vec::new();
    let mut query_ns: Vec<u64> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut since = 0u64;
    let mut submitted_ids: Vec<u64> = Vec::new();
    let mut metrics_live_mid_run = false;

    let started = Instant::now();
    for i in 0..TOTAL_REQUESTS {
        let t0 = Instant::now();
        if i % SUBMIT_EVERY == 0 {
            let body = SUBMIT_BODIES[(i / SUBMIT_EVERY) % SUBMIT_BODIES.len()];
            match client.post("/v1/jobs", body) {
                Ok((201, reply)) => {
                    submit_ns.push(t0.elapsed().as_nanos() as u64);
                    if let Ok(v) = serde_json::from_str::<serde_json::Value>(&reply) {
                        if let Some(id) = v.get("id").and_then(|x| x.as_u64()) {
                            submitted_ids.push(id);
                        }
                    }
                }
                Ok((status, reply)) => errors.push(format!("submit -> {status}: {reply}")),
                Err(e) => errors.push(format!("submit: {e}")),
            }
            continue;
        }
        // Query mix: cluster, event stream, job list, one job, metrics.
        let result = match i % 5 {
            0 => client.get("/v1/cluster"),
            1 => {
                let r = client.get(&format!("/v1/events?since={since}"));
                if let Ok((200, body)) = &r {
                    if let Ok(v) = serde_json::from_str::<serde_json::Value>(body) {
                        since = v.get("next_seq").and_then(|x| x.as_u64()).unwrap_or(since);
                    }
                }
                r
            }
            2 => client.get("/v1/jobs"),
            3 => match submitted_ids.first() {
                Some(id) => client.get(&format!("/v1/jobs/{id}")),
                None => client.get("/v1/cluster"),
            },
            _ => {
                let r = client.get("/metrics");
                if let Ok((200, text)) = &r {
                    if i > TOTAL_REQUESTS / 4
                        && text.contains("evo_search_generations")
                        && text.contains("simulator_engine_events")
                    {
                        metrics_live_mid_run = true;
                    }
                }
                r
            }
        };
        match result {
            Ok((200, _)) => query_ns.push(t0.elapsed().as_nanos() as u64),
            Ok((status, body)) => errors.push(format!("query {} -> {status}: {body}", i % 5)),
            Err(e) => errors.push(format!("query {}: {e}", i % 5)),
        }
    }
    let elapsed = started.elapsed();
    let cluster = client
        .get_json("/v1/cluster")
        .expect("final cluster snapshot");
    drop(handle.shutdown_and_wait());

    let requests = submit_ns.len() + query_ns.len();
    for e in errors.iter().take(5) {
        eprintln!("request error: {e}");
    }
    assert!(
        errors.is_empty(),
        "{} of {TOTAL_REQUESTS} requests failed",
        errors.len()
    );
    assert!(
        requests >= REQUIRED_REQUESTS,
        "only {requests} successful requests, need {REQUIRED_REQUESTS}"
    );
    assert!(
        metrics_live_mid_run,
        "/metrics never served live evo.search.*/simulator.* series mid-run"
    );

    let submit_stats = stats(submit_ns.clone(), elapsed);
    let query_stats = stats(query_ns.clone(), elapsed);
    let mut all_ns = submit_ns;
    all_ns.extend_from_slice(&query_ns);
    let overall = stats(all_ns, elapsed);

    println!(
        "  {} requests ({} submits, {} queries) in {:.2} s — {:.0} req/s sustained",
        requests,
        submit_stats.get("count").and_then(|v| v.as_u64()).unwrap(),
        query_stats.get("count").and_then(|v| v.as_u64()).unwrap(),
        elapsed.as_secs_f64(),
        requests as f64 / elapsed.as_secs_f64()
    );
    println!(
        "  latency p50 {:.0} µs, p90 {:.0} µs, p99 {:.0} µs",
        overall.get("p50_us").and_then(|v| v.as_f64()).unwrap(),
        overall.get("p90_us").and_then(|v| v.as_f64()).unwrap(),
        overall.get("p99_us").and_then(|v| v.as_f64()).unwrap(),
    );
    println!(
        "  virtual time reached {:.1} s, {} jobs submitted, 0 errors",
        cluster.get("now_secs").and_then(|v| v.as_f64()).unwrap(),
        cluster.get("submitted").and_then(|v| v.as_u64()).unwrap(),
    );

    let report = serde_json::json!({
        "bench": "service",
        "gpus": GPUS,
        "requests": requests as u64,
        "errors": 0u64,
        "elapsed_secs": elapsed.as_secs_f64(),
        "sustained_qps": requests as f64 / elapsed.as_secs_f64(),
        "submit": submit_stats,
        "query": query_stats,
        "overall": overall,
        "metrics_live_mid_run": metrics_live_mid_run,
        "final_vt_secs": cluster.get("now_secs").and_then(|v| v.as_f64()),
        "jobs_submitted": cluster.get("submitted").and_then(|v| v.as_u64()),
    });
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialisable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresults written to {path}");
}
