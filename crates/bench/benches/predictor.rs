//! Micro-bench: the online progress predictor — per-completion refit
//! (bounded least squares) and per-query Beta prediction.

use ones_bench::harness::bench;
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};
use ones_predictor::{FeatureSnapshot, PredictorConfig, ProgressPredictor};
use ones_schedcore::JobStatus;
use ones_simcore::{DetRng, SimTime};
use ones_workload::{JobId, JobSpec};

fn make_status(i: u64) -> JobStatus {
    let spec = JobSpec {
        id: JobId(i),
        name: format!("j{i}"),
        model: ModelKind::ResNet18,
        dataset: DatasetKind::Cifar10,
        dataset_size: 20_000 + i * 500,
        submit_batch: 256,
        max_safe_batch: 4096,
        requested_gpus: 1,
        arrival_secs: 0.0,
        kill_after_secs: None,
        convergence: ConvergenceModel {
            reference_batch: 256,
            progress_scale: 6.0 + (i % 5) as f64,
            ..ConvergenceModel::example()
        },
    };
    let mut s = JobStatus::submitted(spec, SimTime::ZERO);
    s.epochs_done = 10;
    s.samples_processed = 10.0 * s.spec.dataset_size as f64;
    s.current_loss = s.initial_loss * 0.4;
    s.current_accuracy = 0.7;
    s
}

fn history(i: u64) -> Vec<FeatureSnapshot> {
    let mut s = make_status(i);
    (1..=30u32)
        .map(|e| {
            s.epochs_done = e;
            s.samples_processed = f64::from(e) * s.spec.dataset_size as f64;
            s.current_loss = s.initial_loss * (-(f64::from(e)) / 10.0).exp();
            s.current_accuracy = 0.9 * (1.0 - (-(f64::from(e)) / 10.0).exp());
            FeatureSnapshot::capture(&s)
        })
        .collect()
}

fn main() {
    ones_bench::print_header("predictor");
    {
        let mut p = ProgressPredictor::new(PredictorConfig::default(), DetRng::seed(1));
        // Warm the training set so every iteration refits on a full table.
        for i in 0..40 {
            p.observe_completion(&history(i), 30);
        }
        let h = history(99);
        bench("observe_completion_refit", || {
            p.observe_completion(std::hint::black_box(&h), 30)
        })
        .print();
    }
    {
        let mut p = ProgressPredictor::new(PredictorConfig::default(), DetRng::seed(2));
        for i in 0..40 {
            p.observe_completion(&history(i), 30);
        }
        let status = make_status(7);
        bench("predict_beta", || p.predict(&status)).print();
    }
}
