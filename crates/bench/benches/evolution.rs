//! Micro-bench: one evolutionary generation — the ONES scheduler's hot
//! loop (§3.2 claims evolutionary search has "relatively fast iterative
//! speed"; this bench quantifies it).
//!
//! Sweeps cluster sizes 16/32/64 GPUs and all four combinations of the
//! two hot-loop accelerations (generation-scoped throughput cache,
//! parallel candidate derivation), reporting per-generation latency and
//! the scoring-phase share from the search's own perf counters. Results
//! are also written to `BENCH_evolution.json` (path overridable via the
//! `BENCH_JSON` environment variable).

use ones_bench::harness::{bench_with, fmt_ns, BenchOpts, Measurement};
use ones_cluster::ClusterSpec;
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
use ones_evo::{EvoConfig, EvoContext, EvolutionarySearch};
use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
use ones_simcore::{DetRng, SimTime};
use ones_stats::Beta;
use ones_workload::{JobId, JobSpec};
use serde_json::Value;
use std::collections::BTreeMap;

struct Fixture {
    spec: ClusterSpec,
    perf: PerfModel,
    jobs: BTreeMap<JobId, JobStatus>,
    deployed: Schedule,
    limits: BTreeMap<JobId, u32>,
    betas: BTreeMap<JobId, Beta>,
}

fn fixture(gpus: u32, n_jobs: u64) -> Fixture {
    let spec = ClusterSpec::longhorn_subset(gpus);
    let mut jobs = BTreeMap::new();
    let mut limits = BTreeMap::new();
    let mut betas = BTreeMap::new();
    for i in 0..n_jobs {
        let js = JobSpec {
            id: JobId(i),
            name: format!("j{i}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 2,
            arrival_secs: i as f64,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut status = JobStatus::submitted(js, SimTime::from_secs(i as f64));
        if i % 2 == 0 {
            status.phase = JobPhase::Running;
            status.first_start = Some(SimTime::from_secs(i as f64));
            status.epochs_done = (i % 20) as u32 + 1;
            status.samples_processed = f64::from(status.epochs_done) * 20_000.0;
            status.epochs_in_current_schedule = 1;
        }
        limits.insert(JobId(i), 512);
        betas.insert(JobId(i), Beta::new(1.0 + i as f64 % 9.0, 20.0));
        jobs.insert(JobId(i), status);
    }
    Fixture {
        spec,
        perf: PerfModel::new(spec),
        jobs,
        deployed: Schedule::empty(gpus),
        limits,
        betas,
    }
}

/// The four feature combinations under test, in report order.
const VARIANTS: [(&str, bool, bool); 4] = [
    ("baseline", false, false),
    ("cache", true, false),
    ("parallel", false, true),
    ("cache_parallel", true, true),
];

struct VariantResult {
    name: &'static str,
    measurement: Measurement,
    /// Scoring-phase wall time per generation (perf-counter delta).
    score_ns_per_gen: f64,
    cache_hit_rate: f64,
}

fn run_variant(
    gpus: u32,
    fx: &Fixture,
    name: &'static str,
    use_cache: bool,
    parallel_derive: bool,
) -> VariantResult {
    let view = ClusterView {
        now: SimTime::from_secs(1000.0),
        spec: &fx.spec,
        perf: &fx.perf,
        jobs: &fx.jobs,
        deployed: &fx.deployed,
    };
    let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
    let mut cfg = EvoConfig::for_cluster(gpus);
    cfg.use_cache = use_cache;
    cfg.parallel_derive = parallel_derive;
    let mut search = EvolutionarySearch::new(cfg, DetRng::seed(1));
    // Warm: populate G_0 and let the population settle before timing.
    for _ in 0..3 {
        let _ = search.generation(&ctx);
    }
    let before = search.perf_counters();
    let measurement = bench_with(BenchOpts::coarse(), &format!("{gpus}gpu/{name}"), || {
        search.generation(&ctx)
    });
    let after = search.perf_counters();
    let gens = (after.generations - before.generations).max(1) as f64;
    VariantResult {
        name,
        measurement,
        score_ns_per_gen: (after.score_nanos - before.score_nanos) as f64 / gens,
        cache_hit_rate: after.cache_hit_rate(),
    }
}

fn main() {
    let mut by_gpus: Vec<(String, Value)> = Vec::new();
    for gpus in [16u32, 32, 64] {
        ones_bench::print_header(&format!("evolution_generation_{gpus}gpu"));
        let fx = fixture(gpus, u64::from(gpus));
        let results: Vec<VariantResult> = VARIANTS
            .iter()
            .map(|&(name, cache, parallel)| run_variant(gpus, &fx, name, cache, parallel))
            .collect();

        let baseline = &results[0];
        let full = results
            .iter()
            .find(|r| r.name == "cache_parallel")
            .expect("variant present");
        let generation_speedup = baseline.measurement.median_ns() / full.measurement.median_ns();
        let scoring_speedup = baseline.score_ns_per_gen / full.score_ns_per_gen;

        let mut variants: Vec<(String, Value)> = Vec::new();
        for r in &results {
            r.measurement.print();
            println!(
                "    scoring phase {:>12} per generation, cache hit rate {:.1}%",
                fmt_ns(r.score_ns_per_gen),
                100.0 * r.cache_hit_rate
            );
            variants.push((
                r.name.to_string(),
                Value::Object(vec![
                    (
                        "median_ns".to_string(),
                        serde_json::to_value(&r.measurement.median_ns()),
                    ),
                    (
                        "mean_ns".to_string(),
                        serde_json::to_value(&r.measurement.mean_ns()),
                    ),
                    (
                        "min_ns".to_string(),
                        serde_json::to_value(&r.measurement.min_ns()),
                    ),
                    (
                        "score_ns_per_gen".to_string(),
                        serde_json::to_value(&r.score_ns_per_gen),
                    ),
                    (
                        "cache_hit_rate".to_string(),
                        serde_json::to_value(&r.cache_hit_rate),
                    ),
                ]),
            ));
        }
        println!(
            "  cache+parallel vs baseline: {generation_speedup:.2}x per generation, \
             {scoring_speedup:.2}x scoring phase"
        );
        by_gpus.push((
            gpus.to_string(),
            Value::Object(vec![
                ("jobs".to_string(), serde_json::to_value(&u64::from(gpus))),
                ("variants".to_string(), Value::Object(variants)),
                (
                    "generation_speedup".to_string(),
                    serde_json::to_value(&generation_speedup),
                ),
                (
                    "scoring_speedup".to_string(),
                    serde_json::to_value(&scoring_speedup),
                ),
            ]),
        ));
    }

    let report = Value::Object(vec![
        (
            "bench".to_string(),
            serde_json::to_value("evolution_generation"),
        ),
        ("gpus".to_string(), Value::Object(by_gpus)),
    ]);
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_evolution.json".to_string());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialisable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresults written to {path}");
}
