//! Micro-bench: one evolutionary generation — the ONES scheduler's hot
//! loop (§3.2 claims evolutionary search has "relatively fast iterative
//! speed"; this bench quantifies it).
//!
//! Sweeps cluster sizes 16/32/64 GPUs with all combinations of the three
//! hot-loop accelerations (search-scoped throughput cache, parallel
//! candidate derivation, delta scoring), then scale rows at 1 024 and
//! 10 240 GPUs comparing the cached full-rescore path ("cache" — the
//! pre-delta baseline) against delta scoring with and without parallel
//! derivation. Every acceleration is exact: before timing, each size
//! runs all of its variants lockstep from the same seed and asserts the
//! per-generation best schedules are bit-identical.
//!
//! Reported per variant: per-generation latency, the scoring-phase share
//! from the search's own perf counters, the lifetime cache hit rate and
//! the warm (last-generation) hit rate — the cross-generation reuse
//! signal. Results are also written to `BENCH_evolution.json` (path
//! overridable via the `BENCH_JSON` environment variable).
//!
//! Knobs:
//! * `BENCH_SIZES=16,1024` — override the swept cluster sizes.
//! * `BENCH_MIN_SCORING_SPEEDUP=5.0` — fail (non-zero exit) unless the
//!   1 024-GPU delta-vs-cache scoring-phase speedup meets the floor;
//!   `scripts/ci.sh` derives the floor from the committed baseline JSON.

use ones_bench::harness::{bench_with, fmt_ns, BenchOpts, Measurement};
use ones_cluster::ClusterSpec;
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
use ones_evo::{EvoConfig, EvoContext, EvolutionarySearch};
use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
use ones_simcore::{DetRng, SimTime};
use ones_stats::Beta;
use ones_workload::{JobId, JobSpec};
use serde_json::Value;
use std::collections::BTreeMap;

struct Fixture {
    spec: ClusterSpec,
    perf: PerfModel,
    jobs: BTreeMap<JobId, JobStatus>,
    deployed: Schedule,
    limits: BTreeMap<JobId, u32>,
    betas: BTreeMap<JobId, Beta>,
}

fn fixture(gpus: u32, n_jobs: u64) -> Fixture {
    let spec = ClusterSpec::longhorn_subset(gpus);
    let mut jobs = BTreeMap::new();
    let mut limits = BTreeMap::new();
    let mut betas = BTreeMap::new();
    for i in 0..n_jobs {
        let js = JobSpec {
            id: JobId(i),
            name: format!("j{i}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 2,
            arrival_secs: i as f64,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut status = JobStatus::submitted(js, SimTime::from_secs(i as f64));
        if i % 2 == 0 {
            status.phase = JobPhase::Running;
            status.first_start = Some(SimTime::from_secs(i as f64));
            status.epochs_done = (i % 20) as u32 + 1;
            status.samples_processed = f64::from(status.epochs_done) * 20_000.0;
            status.epochs_in_current_schedule = 1;
        }
        limits.insert(JobId(i), 512);
        betas.insert(JobId(i), Beta::new(1.0 + i as f64 % 9.0, 20.0));
        jobs.insert(JobId(i), status);
    }
    Fixture {
        spec,
        perf: PerfModel::new(spec),
        jobs,
        deployed: Schedule::empty(gpus),
        limits,
        betas,
    }
}

/// One feature combination under test: `(name, use_cache, parallel_derive,
/// delta_score)`.
type Variant = (&'static str, bool, bool, bool);

const ALL_VARIANTS: [Variant; 6] = [
    ("baseline", false, false, false),
    ("cache", true, false, false),
    ("parallel", false, true, false),
    ("cache_parallel", true, true, false),
    ("delta", true, false, true),
    ("delta_parallel", true, true, true),
];

/// The subset swept at the 1k/10k scale rows: cache on everywhere —
/// "cache" is the measured baseline (full rescore over a warm cache, the
/// hot loop as of the cache PR), "delta" isolates delta scoring,
/// "delta_parallel" adds parallel derivation.
const SCALE_VARIANTS: [Variant; 3] = [
    ("cache", true, false, false),
    ("delta", true, false, true),
    ("delta_parallel", true, true, true),
];

/// The cached-but-full-rescore variant: the reference the delta-scoring
/// speedup is measured against (the hot loop as of the cache PR).
const CACHED_BASELINE: &str = "cache";
/// All accelerations on.
const FULL: &str = "delta_parallel";

/// How one cluster size is swept.
struct Plan {
    /// Jobs in the fixture.
    jobs: u64,
    /// Population K and crossover pairs (capped below the paper's
    /// K = |C| at scale rows so a single bench run stays tractable; the
    /// cap is recorded in the JSON row as `population`).
    population: usize,
    variants: &'static [Variant],
    opts: BenchOpts,
    /// Settling generations before timing (also the lockstep
    /// bit-identical verification length).
    warm: u32,
}

fn plan_for(gpus: u32) -> Plan {
    if gpus <= 64 {
        Plan {
            jobs: u64::from(gpus),
            population: gpus as usize,
            variants: &ALL_VARIANTS,
            opts: BenchOpts::coarse(),
            warm: 3,
        }
    } else {
        Plan {
            jobs: u64::from(gpus / 8).min(1024),
            population: if gpus <= 2048 { 128 } else { 64 },
            variants: &SCALE_VARIANTS,
            opts: BenchOpts {
                samples: 3,
                target_sample_nanos: 1,
                warmup: 0,
            },
            warm: 2,
        }
    }
}

fn config(gpus: u32, plan: &Plan, v: &Variant) -> EvoConfig {
    let &(_, use_cache, parallel_derive, delta_score) = v;
    let mut cfg = EvoConfig::for_cluster(gpus);
    cfg.population = plan.population;
    cfg.crossover_pairs = plan.population;
    cfg.use_cache = use_cache;
    cfg.parallel_derive = parallel_derive;
    cfg.delta_score = delta_score;
    cfg
}

fn view_of(fx: &Fixture) -> ClusterView<'_> {
    ClusterView {
        now: SimTime::from_secs(1000.0),
        spec: &fx.spec,
        perf: &fx.perf,
        jobs: &fx.jobs,
        deployed: &fx.deployed,
    }
}

/// Runs every planned variant lockstep from the same seed and asserts the
/// per-generation best schedules are bit-identical — the accelerations
/// must be transparent before their speed is worth reporting.
fn verify_bit_identical(gpus: u32, fx: &Fixture, plan: &Plan) {
    let view = view_of(fx);
    let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
    let mut searches: Vec<(&str, EvolutionarySearch)> = plan
        .variants
        .iter()
        .map(|v| {
            (
                v.0,
                EvolutionarySearch::new(config(gpus, plan, v), DetRng::seed(1)),
            )
        })
        .collect();
    for gen in 0..plan.warm {
        let mut reference: Option<(&str, Schedule)> = None;
        for (name, search) in &mut searches {
            let best = search.generation(&ctx);
            match &reference {
                None => reference = Some((name, best)),
                Some((ref_name, ref_best)) => assert!(
                    best == *ref_best,
                    "{gpus} GPUs gen {gen}: variant {name} diverged from {ref_name}"
                ),
            }
        }
    }
    println!(
        "  bit-identical best schedules across {} variants for {} generations",
        searches.len(),
        plan.warm
    );
}

struct VariantResult {
    name: &'static str,
    measurement: Measurement,
    /// Scoring-phase wall time per generation (perf-counter delta).
    score_ns_per_gen: f64,
    cache_hit_rate: f64,
    /// Hit rate of the most recent generation alone — cross-generation
    /// (warm) cache reuse.
    warm_hit_rate: f64,
}

fn run_variant(gpus: u32, fx: &Fixture, plan: &Plan, v: &Variant) -> VariantResult {
    let view = view_of(fx);
    let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
    let mut search = EvolutionarySearch::new(config(gpus, plan, v), DetRng::seed(1));
    // Warm: populate G_0 and let the population settle before timing.
    for _ in 0..plan.warm {
        let _ = search.generation(&ctx);
    }
    let before = search.perf_counters();
    let measurement = bench_with(plan.opts, &format!("{gpus}gpu/{}", v.0), || {
        search.generation(&ctx)
    });
    let after = search.perf_counters();
    let gens = (after.generations - before.generations).max(1) as f64;
    VariantResult {
        name: v.0,
        measurement,
        score_ns_per_gen: (after.score_nanos - before.score_nanos) as f64 / gens,
        cache_hit_rate: after.cache_hit_rate(),
        warm_hit_rate: after.warm_hit_rate(),
    }
}

fn sizes_from_env() -> Vec<u32> {
    match std::env::var("BENCH_SIZES") {
        Ok(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("BENCH_SIZES: bad size {s}"))
            })
            .collect(),
        Err(_) => vec![16, 32, 64, 1024, 10_240],
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut by_gpus: Vec<(String, Value)> = Vec::new();
    let mut speedup_at_1024: Option<f64> = None;
    for gpus in sizes_from_env() {
        ones_bench::print_header(&format!("evolution_generation_{gpus}gpu"));
        let plan = plan_for(gpus);
        let fx = fixture(gpus, plan.jobs);
        verify_bit_identical(gpus, &fx, &plan);
        let results: Vec<VariantResult> = plan
            .variants
            .iter()
            .map(|v| run_variant(gpus, &fx, &plan, v))
            .collect();

        // Headline ratios: the plan's first variant (true baseline on
        // small rows, cache_parallel on scale rows) vs everything-on,
        // plus the delta-scoring speedup over the cached full rescore.
        let reference = &results[0];
        let full = results.iter().find(|r| r.name == FULL).expect("full");
        let cached = results
            .iter()
            .find(|r| r.name == CACHED_BASELINE)
            .expect("cached baseline");
        let generation_speedup = reference.measurement.median_ns() / full.measurement.median_ns();
        let scoring_speedup = reference.score_ns_per_gen / full.score_ns_per_gen;
        let delta_vs_cache = cached.score_ns_per_gen / full.score_ns_per_gen;
        if gpus == 1024 {
            speedup_at_1024 = Some(delta_vs_cache);
        }

        let mut variants: Vec<(String, Value)> = Vec::new();
        for r in &results {
            r.measurement.print();
            println!(
                "    scoring phase {:>12} per generation, cache hit rate {:.1}% \
                 (warm {:.1}%)",
                fmt_ns(r.score_ns_per_gen),
                100.0 * r.cache_hit_rate,
                100.0 * r.warm_hit_rate
            );
            variants.push((
                r.name.to_string(),
                Value::Object(vec![
                    (
                        "median_ns".to_string(),
                        serde_json::to_value(&r.measurement.median_ns()),
                    ),
                    (
                        "mean_ns".to_string(),
                        serde_json::to_value(&r.measurement.mean_ns()),
                    ),
                    (
                        "min_ns".to_string(),
                        serde_json::to_value(&r.measurement.min_ns()),
                    ),
                    (
                        "score_ns_per_gen".to_string(),
                        serde_json::to_value(&r.score_ns_per_gen),
                    ),
                    (
                        "cache_hit_rate".to_string(),
                        serde_json::to_value(&r.cache_hit_rate),
                    ),
                    (
                        "warm_hit_rate".to_string(),
                        serde_json::to_value(&r.warm_hit_rate),
                    ),
                ]),
            ));
        }
        println!(
            "  {} vs {}: {generation_speedup:.2}x per generation, \
             {scoring_speedup:.2}x scoring phase; delta vs cached rescore: \
             {delta_vs_cache:.2}x scoring phase",
            FULL, reference.name
        );
        by_gpus.push((
            gpus.to_string(),
            Value::Object(vec![
                ("jobs".to_string(), serde_json::to_value(&plan.jobs)),
                (
                    "population".to_string(),
                    serde_json::to_value(&(plan.population as u64)),
                ),
                ("variants".to_string(), Value::Object(variants)),
                (
                    "generation_speedup".to_string(),
                    serde_json::to_value(&generation_speedup),
                ),
                (
                    "scoring_speedup".to_string(),
                    serde_json::to_value(&scoring_speedup),
                ),
                (
                    "scoring_speedup_delta_vs_cache".to_string(),
                    serde_json::to_value(&delta_vs_cache),
                ),
            ]),
        ));
    }

    let mut report_fields = vec![
        (
            "bench".to_string(),
            serde_json::to_value("evolution_generation"),
        ),
        (
            "threads".to_string(),
            serde_json::to_value(&(threads as u64)),
        ),
        ("gpus".to_string(), Value::Object(by_gpus)),
    ];
    if let Some(speedup) = speedup_at_1024 {
        report_fields.push((
            "scoring_speedup_1024_delta_vs_cache".to_string(),
            serde_json::to_value(&speedup),
        ));
    }
    let report = Value::Object(report_fields);
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_evolution.json".to_string());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialisable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresults written to {path}");

    // Regression gate: scripts/ci.sh passes the floor derived from the
    // committed baseline JSON.
    if let Ok(floor) = std::env::var("BENCH_MIN_SCORING_SPEEDUP") {
        let floor: f64 = floor
            .parse()
            .unwrap_or_else(|_| panic!("BENCH_MIN_SCORING_SPEEDUP: bad value {floor}"));
        match speedup_at_1024 {
            Some(got) => {
                assert!(
                    got >= floor,
                    "scoring-phase speedup regression at 1024 GPUs: \
                     {got:.2}x < required {floor:.2}x"
                );
                println!("scoring-speedup gate OK: {got:.2}x >= {floor:.2}x at 1024 GPUs");
            }
            None => println!("scoring-speedup gate skipped: no 1024-GPU row in BENCH_SIZES"),
        }
    }
}
