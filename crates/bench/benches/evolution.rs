//! Criterion micro-bench: one evolutionary generation on a 64-GPU cluster
//! with varying live-job counts — the ONES scheduler's hot loop (§3.2
//! claims evolutionary search has "relatively fast iterative speed"; this
//! bench quantifies it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ones_cluster::ClusterSpec;
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
use ones_evo::{EvoConfig, EvoContext, EvolutionarySearch};
use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
use ones_simcore::{DetRng, SimTime};
use ones_stats::Beta;
use ones_workload::{JobId, JobSpec};
use std::collections::BTreeMap;

struct Fixture {
    spec: ClusterSpec,
    perf: PerfModel,
    jobs: BTreeMap<JobId, JobStatus>,
    deployed: Schedule,
    limits: BTreeMap<JobId, u32>,
    betas: BTreeMap<JobId, Beta>,
}

fn fixture(n_jobs: u64) -> Fixture {
    let spec = ClusterSpec::longhorn();
    let mut jobs = BTreeMap::new();
    let mut limits = BTreeMap::new();
    let mut betas = BTreeMap::new();
    for i in 0..n_jobs {
        let js = JobSpec {
            id: JobId(i),
            name: format!("j{i}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 2,
            arrival_secs: i as f64,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut status = JobStatus::submitted(js, SimTime::from_secs(i as f64));
        if i % 2 == 0 {
            status.phase = JobPhase::Running;
            status.first_start = Some(SimTime::from_secs(i as f64));
            status.epochs_done = (i % 20) as u32 + 1;
            status.samples_processed = f64::from(status.epochs_done) * 20_000.0;
            status.epochs_in_current_schedule = 1;
        }
        limits.insert(JobId(i), 512);
        betas.insert(JobId(i), Beta::new(1.0 + i as f64 % 9.0, 20.0));
        jobs.insert(JobId(i), status);
    }
    Fixture {
        spec,
        perf: PerfModel::new(spec),
        jobs,
        deployed: Schedule::empty(64),
        limits,
        betas,
    }
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolution_generation_64gpu");
    group.sample_size(20);
    for n_jobs in [8u64, 32, 64] {
        let fx = fixture(n_jobs);
        group.bench_with_input(BenchmarkId::from_parameter(n_jobs), &fx, |b, fx| {
            let view = ClusterView {
                now: SimTime::from_secs(1000.0),
                spec: &fx.spec,
                perf: &fx.perf,
                jobs: &fx.jobs,
                deployed: &fx.deployed,
            };
            let ctx = EvoContext {
                view: &view,
                limits: &fx.limits,
                betas: &fx.betas,
            };
            let mut search =
                EvolutionarySearch::new(EvoConfig::for_cluster(64), DetRng::seed(1));
            b.iter(|| std::hint::black_box(search.generation(&ctx)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
