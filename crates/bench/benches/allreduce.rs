//! Criterion micro-bench: the ring all-reduce cost model across worker
//! counts and placements (evaluated millions of times per simulation, once
//! per candidate-job scoring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ones_cluster::{allreduce_time, ClusterSpec, GpuId, Placement};

fn bench_allreduce(c: &mut Criterion) {
    let spec = ClusterSpec::longhorn();
    let bytes = 100.0e6;
    let mut group = c.benchmark_group("allreduce_time");
    for workers in [2u32, 8, 32, 64] {
        let packed = Placement::contiguous(0, workers);
        group.bench_with_input(
            BenchmarkId::new("packed", workers),
            &packed,
            |b, placement| {
                b.iter(|| std::hint::black_box(allreduce_time(&spec, placement, bytes)));
            },
        );
        let scattered: Placement = (0..workers).map(|i| GpuId(i * 64 / workers)).collect();
        group.bench_with_input(
            BenchmarkId::new("scattered", workers),
            &scattered,
            |b, placement| {
                b.iter(|| std::hint::black_box(allreduce_time(&spec, placement, bytes)));
            },
        );
    }
    group.finish();
}

fn bench_placement_metrics(c: &mut Criterion) {
    let spec = ClusterSpec::longhorn();
    let scattered: Placement = (0..32u32).map(|i| GpuId(i * 2)).collect();
    c.bench_function("placement_locality_metrics", |b| {
        b.iter(|| {
            std::hint::black_box((
                scattered.nodes_spanned(&spec),
                scattered.max_runs_per_node(&spec),
            ))
        });
    });
}

criterion_group!(benches, bench_allreduce, bench_placement_metrics);
criterion_main!(benches);
