//! Micro-bench: the ring all-reduce cost model across worker counts and
//! placements (evaluated millions of times per simulation, once per
//! candidate-job scoring).

use ones_bench::harness::bench;
use ones_cluster::{allreduce_time, ClusterSpec, GpuId, Placement};

fn main() {
    let spec = ClusterSpec::longhorn();
    let bytes = 100.0e6;
    ones_bench::print_header("allreduce_time");
    for workers in [2u32, 8, 32, 64] {
        let packed = Placement::contiguous(0, workers);
        bench(&format!("packed/{workers}"), || {
            allreduce_time(&spec, &packed, bytes)
        })
        .print();
        let scattered: Placement = (0..workers).map(|i| GpuId(i * 64 / workers)).collect();
        bench(&format!("scattered/{workers}"), || {
            allreduce_time(&spec, &scattered, bytes)
        })
        .print();
    }

    ones_bench::print_header("placement_locality_metrics");
    let scattered: Placement = (0..32u32).map(|i| GpuId(i * 2)).collect();
    bench("locality_metrics", || {
        (
            scattered.nodes_spanned(&spec),
            scattered.max_runs_per_node(&spec),
        )
    })
    .print();
}
