//! Trace-replay macro-bench: the §4.1 scheduler set on a Philly-style
//! replayed cluster mixture instead of the paper's synthetic Table 2
//! trace — heavy-tailed log-normal durations, bursty diurnal arrivals and
//! ~30 % abnormal terminations (see `EXPERIMENTS.md` §"Trace replay").
//!
//! Reports end-to-end wall time per scheduler plus the quality statistics
//! the paper's figures use (JCT / makespan / queueing), aggregated over
//! normally-completed jobs only; killed and unfinished jobs are counted
//! separately so goodput stays visible. Results are written to
//! `BENCH_trace_replay.json` (path overridable via the `BENCH_JSON`
//! environment variable).

use ones_bench::harness::{bench_with, BenchOpts};
use ones_simulator::{run_experiment, ExperimentConfig, SchedulerKind, TraceSource};
use ones_workload::ReplayConfig;

const GPUS: u32 = 32;
const JOBS: usize = 24;
const SEED: u64 = 11;

fn replay() -> ReplayConfig {
    ReplayConfig {
        num_jobs: JOBS,
        base_rate: 1.0 / 15.0,
        seed: SEED,
        ..ReplayConfig::default()
    }
}

fn config(scheduler: SchedulerKind) -> ExperimentConfig {
    ExperimentConfig {
        gpus: GPUS,
        source: TraceSource::Replay(replay()),
        scheduler,
        sched_seed: 1,
        drl_pretrain_episodes: 1,
    }
}

fn main() {
    ones_bench::print_header(&format!("trace_replay_{GPUS}gpu_{JOBS}jobs"));
    let schedulers = [
        SchedulerKind::Ones,
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
        SchedulerKind::Fifo,
    ];

    let mut entries: Vec<(String, serde_json::Value)> = Vec::new();
    for kind in schedulers {
        let m = bench_with(BenchOpts::coarse(), kind.name(), || {
            run_experiment(config(kind)).makespan
        });
        m.print();

        let r = run_experiment(config(kind));
        let s = r.metrics.jct_summary();
        println!(
            "    {} completed / {} killed / {} unfinished (goodput {:.0}%)",
            r.completed_jobs,
            r.killed_jobs,
            r.incomplete_jobs,
            100.0 * r.goodput
        );
        println!(
            "    mean JCT {:.1} s (p90 {:.1}), mean queue {:.1} s, makespan {:.1} s",
            r.metrics.mean_jct(),
            s.p90,
            r.metrics.mean_queue(),
            r.makespan
        );
        entries.push((
            kind.name().to_string(),
            serde_json::json!({
                "median_wall_ns": m.median_ns(),
                "mean_wall_ns": m.mean_ns(),
                "mean_jct_secs": r.metrics.mean_jct(),
                "p90_jct_secs": s.p90,
                "max_jct_secs": s.max,
                "mean_exec_secs": r.metrics.mean_exec(),
                "mean_queue_secs": r.metrics.mean_queue(),
                "makespan_secs": r.makespan,
                "gpu_utilization": r.gpu_utilization,
                "completed_jobs": r.completed_jobs,
                "killed_jobs": r.killed_jobs,
                "incomplete_jobs": r.incomplete_jobs,
                "goodput": r.goodput,
            }),
        ));
    }

    let rc = replay();
    let trace_info = serde_json::json!({
        "source": "philly",
        "seed": rc.seed,
        "base_rate_per_sec": rc.base_rate,
        "kill_fraction": rc.kill_fraction,
        "burst_factor": rc.burst_factor,
        "diurnal_amplitude": rc.diurnal_amplitude,
        "diurnal_period_secs": rc.diurnal_period_secs,
        "duration_log_sigma": rc.duration_log_sigma,
    });
    let report = serde_json::json!({
        "bench": "trace_replay",
        "gpus": GPUS,
        "jobs": JOBS,
        "trace": trace_info,
        "schedulers": serde_json::Value::Object(entries),
    });
    let path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_trace_replay.json".to_string());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialisable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresults written to {path}");
}
