//! Overhead bench: the `ones-obs` recorder must be close to free.
//!
//! Runs the end-to-end 64-GPU ONES simulation under each observability
//! level (`off`, `counters`, `full`) and compares wall time. The budget
//! the repo commits to is **< 5 % overhead at `full`** (spans + metrics
//! recorded, trace exportable) relative to `off`; `counters` — the
//! default level — should be indistinguishable from `off`. Results are
//! written to `BENCH_observability.json` (path overridable via the
//! `BENCH_JSON` environment variable).

use ones_bench::harness::{bench_with, BenchOpts, Measurement};
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::DetRng;
use ones_simulator::{SchedulerKind, SimConfig, Simulation};
use ones_workload::{Trace, TraceConfig};
use serde_json::Value;

const GPUS: u32 = 64;
const JOBS: usize = 24;
const BUDGET_PCT: f64 = 5.0;

fn run_once(trace: &Trace, spec: ClusterSpec) -> f64 {
    let scheduler = SchedulerKind::Ones.build(&spec, trace, &DetRng::seed(3));
    let sim = Simulation::new(PerfModel::new(spec), trace, scheduler, SimConfig::default());
    let makespan = sim.run().makespan;
    // Keep memory bounded across iterations; at `full` this discard is
    // part of the cost a real caller pays between runs.
    ones_obs::clear_spans();
    makespan
}

fn measure(level: ones_obs::ObsLevel, trace: &Trace, spec: ClusterSpec) -> Measurement {
    ones_obs::set_level(level);
    ones_obs::reset();
    // One full simulation per iteration: target 1 ns so calibration
    // settles on a single iteration per sample.
    let opts = BenchOpts {
        samples: 5,
        target_sample_nanos: 1,
        warmup: 1,
    };
    bench_with(
        opts,
        &format!("{GPUS}gpu_{JOBS}jobs/{}", level.name()),
        || run_once(trace, spec),
    )
}

fn main() {
    let trace = Trace::generate(TraceConfig {
        num_jobs: JOBS,
        arrival_rate: 1.0 / 10.0,
        seed: 7,
        kill_fraction: 0.0,
    });
    let spec = ClusterSpec::longhorn_subset(GPUS);

    ones_bench::print_header("observability_overhead_64gpu");
    let levels = [
        ones_obs::ObsLevel::Off,
        ones_obs::ObsLevel::Counters,
        ones_obs::ObsLevel::Full,
    ];
    let results: Vec<(ones_obs::ObsLevel, Measurement)> = levels
        .iter()
        .map(|&level| (level, measure(level, &trace, spec)))
        .collect();
    ones_obs::set_level(ones_obs::ObsLevel::Counters);

    let off_ns = results[0].1.median_ns();
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut full_overhead_pct = 0.0;
    for (level, m) in &results {
        m.print();
        let overhead_pct = 100.0 * (m.median_ns() - off_ns) / off_ns;
        if *level == ones_obs::ObsLevel::Full {
            full_overhead_pct = overhead_pct;
        }
        println!("    overhead vs off: {overhead_pct:+.2}%");
        entries.push((
            level.name().to_string(),
            Value::Object(vec![
                (
                    "median_ns".to_string(),
                    serde_json::to_value(&m.median_ns()),
                ),
                ("mean_ns".to_string(), serde_json::to_value(&m.mean_ns())),
                ("min_ns".to_string(), serde_json::to_value(&m.min_ns())),
                (
                    "overhead_vs_off_pct".to_string(),
                    serde_json::to_value(&overhead_pct),
                ),
            ]),
        ));
    }
    let within_budget = full_overhead_pct < BUDGET_PCT;
    println!(
        "  full-level overhead {full_overhead_pct:+.2}% vs budget {BUDGET_PCT:.0}%: {}",
        if within_budget { "PASS" } else { "FAIL" }
    );

    // Streaming row: a million spans through a chunked sink must drain to
    // disk with zero drops and an in-memory high-water mark bounded by the
    // chunk size — far below the old 4M in-memory cap.
    const STREAM_EVENTS: usize = 1_000_000;
    const STREAM_CHUNK: usize = 65_536;
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    let dir = std::env::temp_dir().join(format!("ones-bench-streaming-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir bench temp dir");
    let trace_path = dir.join("trace.json");
    ones_obs::attach_trace_sink(&trace_path, STREAM_CHUNK).expect("attach sink");
    let start = std::time::Instant::now();
    for i in 0..STREAM_EVENTS {
        let t = i as f64;
        ones_obs::virtual_span(
            "epoch",
            "simulator",
            (i % 7) as u64,
            t,
            t + 0.5,
            vec![("batch", (64 + i as u64).into())],
        );
    }
    ones_obs::finalize_trace_sink().expect("finalize sink");
    let elapsed = start.elapsed();
    let streamed_bytes = std::fs::metadata(&trace_path).map(|m| m.len()).unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    ones_obs::set_level(ones_obs::ObsLevel::Counters);

    let dropped = ones_obs::counter("obs.recorder.dropped_spans").value();
    let flushes = ones_obs::counter("obs.sink.flushes").value();
    let high_water = ones_obs::recorder_status().high_water;
    let events_per_sec = STREAM_EVENTS as f64 / elapsed.as_secs_f64();
    let zero_drops = dropped == 0;
    // One chunk is the bound — four orders of magnitude under the old
    // 4M-span in-memory cap.
    let bounded = high_water <= STREAM_CHUNK;
    println!(
        "  streaming {STREAM_EVENTS} events: {events_per_sec:.0} ev/s, \
         {streamed_bytes} bytes in {flushes} flushes, high-water {high_water} \
         (chunk {STREAM_CHUNK}), dropped {dropped}: {}",
        if zero_drops && bounded {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(zero_drops, "streaming sink dropped {dropped} spans");
    assert!(
        bounded,
        "recorder high-water {high_water} exceeds the chunk bound {STREAM_CHUNK}"
    );
    let streaming_row = Value::Object(vec![
        (
            "events".to_string(),
            serde_json::to_value(&(STREAM_EVENTS as u64)),
        ),
        (
            "chunk_events".to_string(),
            serde_json::to_value(&(STREAM_CHUNK as u64)),
        ),
        (
            "elapsed_ns".to_string(),
            serde_json::to_value(&(elapsed.as_nanos() as u64)),
        ),
        (
            "events_per_sec".to_string(),
            serde_json::to_value(&events_per_sec),
        ),
        (
            "bytes_written".to_string(),
            serde_json::to_value(&streamed_bytes),
        ),
        ("flushes".to_string(), serde_json::to_value(&flushes)),
        (
            "buffer_high_water".to_string(),
            serde_json::to_value(&(high_water as u64)),
        ),
        ("dropped".to_string(), serde_json::to_value(&dropped)),
        ("zero_drops".to_string(), serde_json::to_value(&zero_drops)),
        (
            "high_water_bounded".to_string(),
            serde_json::to_value(&bounded),
        ),
    ]);

    let report = Value::Object(vec![
        (
            "bench".to_string(),
            serde_json::to_value("observability_overhead"),
        ),
        ("gpus".to_string(), serde_json::to_value(&u64::from(GPUS))),
        ("jobs".to_string(), serde_json::to_value(&(JOBS as u64))),
        ("levels".to_string(), Value::Object(entries)),
        (
            "full_overhead_pct".to_string(),
            serde_json::to_value(&full_overhead_pct),
        ),
        ("budget_pct".to_string(), serde_json::to_value(&BUDGET_PCT)),
        (
            "within_budget".to_string(),
            serde_json::to_value(&within_budget),
        ),
        ("streaming".to_string(), streaming_row),
    ]);
    let path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_observability.json".to_string());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialisable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresults written to {path}");
}
