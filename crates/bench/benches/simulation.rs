//! Macro-bench: end-to-end simulation of a small trace under each
//! scheduler — measures the whole reproduction pipeline (workload
//! generation, event loop, scheduling, convergence model).

use ones_bench::harness::{bench_with, BenchOpts};
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::DetRng;
use ones_simulator::{SchedulerKind, SimConfig, Simulation};
use ones_workload::{Trace, TraceConfig};

fn main() {
    let trace = Trace::generate(TraceConfig {
        num_jobs: 10,
        arrival_rate: 1.0 / 20.0,
        seed: 5,
        kill_fraction: 0.0,
    });
    let spec = ClusterSpec::longhorn_subset(16);
    ones_bench::print_header("simulate_10_jobs_16gpu");
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
        SchedulerKind::Drl,
        SchedulerKind::Ones,
    ] {
        bench_with(BenchOpts::coarse(), kind.name(), || {
            let scheduler = kind.build(&spec, &trace, &DetRng::seed(3));
            let sim = Simulation::new(
                PerfModel::new(spec),
                &trace,
                scheduler,
                SimConfig::default(),
            );
            sim.run().makespan
        })
        .print();
    }
}
