//! Criterion macro-bench: end-to-end simulation of a small trace under
//! each scheduler — measures the whole reproduction pipeline (workload
//! generation, event loop, scheduling, convergence model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::DetRng;
use ones_simulator::{SchedulerKind, SimConfig, Simulation};
use ones_workload::{Trace, TraceConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let trace = Trace::generate(TraceConfig {
        num_jobs: 10,
        arrival_rate: 1.0 / 20.0,
        seed: 5,
        kill_fraction: 0.0,
    });
    let spec = ClusterSpec::longhorn_subset(16);
    let mut group = c.benchmark_group("simulate_10_jobs_16gpu");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
        SchedulerKind::Drl,
        SchedulerKind::Ones,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let scheduler = kind.build(&spec, &trace, &DetRng::seed(3));
                    let sim = Simulation::new(
                        PerfModel::new(spec),
                        &trace,
                        scheduler,
                        SimConfig::default(),
                    );
                    std::hint::black_box(sim.run().makespan)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
