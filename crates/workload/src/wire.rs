//! The JSON wire format for live job submission (`ones-d POST /v1/jobs`).
//!
//! A [`WireJobSpec`] carries only the *submitted* fields a real user could
//! supply — the same nine columns as the scrubbed-CSV schema
//! ([`crate::trace::CSV_HEADER`]) — never the hidden ground-truth
//! convergence model, which is rebuilt from the per-family Table 2
//! parameters on ingestion exactly like CSV replay. Most fields are
//! optional on the wire so `curl` submissions stay short: the daemon
//! assigns ids, derives names, defaults the arrival time to "now", and
//! picks the paper-style safe-batch ceiling when none is given.
//!
//! Deserialisation is hand-written (the serde shim's derive requires every
//! key to be present); absent and `null` optional keys both read as
//! `None`.

use crate::spec::{JobId, JobSpec};
use crate::table2::{convergence_for, default_classes};
use ones_dlperf::{DatasetKind, ModelKind};
use serde::{DeError, Deserialize, Serialize, Value};

/// A job submission as it travels over HTTP.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJobSpec {
    /// Job id; `None` lets the daemon assign the next free one.
    pub id: Option<u64>,
    /// Display name; `None` derives `"<model>/<dataset>-<size>k"`.
    pub name: Option<String>,
    /// Model family, by its display name (e.g. `"ResNet50"`).
    pub model: String,
    /// Dataset family, by its display name (e.g. `"ImageNet"`).
    pub dataset: String,
    /// Number of training samples.
    pub dataset_size: u64,
    /// User-submitted (reference) global batch size.
    pub submit_batch: u32,
    /// Largest validated global batch; `None` uses the family's
    /// noise-scale ceiling (the trace generator's default).
    pub max_safe_batch: Option<u32>,
    /// Requested GPU count.
    pub requested_gpus: u32,
    /// Arrival time in virtual seconds; `None` (or a time already in the
    /// past) means "now" — the daemon clamps it forward.
    pub arrival_secs: Option<f64>,
    /// Kill the job this many seconds after arrival (trace replay of
    /// abnormal endings).
    pub kill_after_secs: Option<f64>,
}

impl WireJobSpec {
    /// Re-projects a full [`JobSpec`] onto the wire (daemon responses,
    /// tests). The hidden convergence model is dropped.
    #[must_use]
    pub fn from_spec(spec: &JobSpec) -> Self {
        WireJobSpec {
            id: Some(spec.id.0),
            name: Some(spec.name.clone()),
            model: spec.model.to_string(),
            dataset: spec.dataset.to_string(),
            dataset_size: spec.dataset_size,
            submit_batch: spec.submit_batch,
            max_safe_batch: Some(spec.max_safe_batch),
            requested_gpus: spec.requested_gpus,
            arrival_secs: Some(spec.arrival_secs),
            kill_after_secs: spec.kill_after_secs,
        }
    }

    /// Materialises the submission into a validated [`JobSpec`],
    /// rebuilding the convergence model from the Table 2 family
    /// parameters with the reference batch pinned to the submitted batch
    /// (the CSV-ingestion contract). `assign_id` is used when the wire
    /// spec carries no id; a missing arrival time becomes `default_arrival`.
    ///
    /// # Errors
    /// Returns a description of the first problem: unknown model/dataset
    /// or any [`JobSpec::try_validate`] failure.
    pub fn into_spec(self, assign_id: u64, default_arrival: f64) -> Result<JobSpec, String> {
        let model: ModelKind = self
            .model
            .parse()
            .map_err(|e| format!("bad model {:?}: {e}", self.model))?;
        let dataset: DatasetKind = self
            .dataset
            .parse()
            .map_err(|e| format!("bad dataset {:?}: {e}", self.dataset))?;
        let convergence =
            convergence_for(model, dataset, default_classes(dataset), self.submit_batch);
        let max_safe_batch = self
            .max_safe_batch
            .unwrap_or_else(|| (convergence.noise_scale as u32).max(self.submit_batch));
        let name = self.name.unwrap_or_else(|| {
            let size_k = if self.dataset_size.is_multiple_of(1000) {
                format!("{}k", self.dataset_size / 1000)
            } else {
                format!("{:.1}k", self.dataset_size as f64 / 1000.0)
            };
            format!("{model}/{dataset}-{size_k}")
        });
        let spec = JobSpec {
            id: JobId(self.id.unwrap_or(assign_id)),
            name,
            model,
            dataset,
            dataset_size: self.dataset_size,
            submit_batch: self.submit_batch,
            max_safe_batch,
            requested_gpus: self.requested_gpus,
            arrival_secs: self.arrival_secs.unwrap_or(default_arrival),
            kill_after_secs: self.kill_after_secs,
            convergence,
        };
        spec.try_validate()?;
        Ok(spec)
    }

    /// Serialises to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("wire spec is serialisable")
    }

    /// Parses a wire spec from JSON text.
    ///
    /// # Errors
    /// Fails on malformed JSON, a non-object body, wrong field types, or a
    /// missing required field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl Serialize for WireJobSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".into(), self.id.to_value()),
            ("name".into(), self.name.to_value()),
            ("model".into(), self.model.to_value()),
            ("dataset".into(), self.dataset.to_value()),
            ("dataset_size".into(), self.dataset_size.to_value()),
            ("submit_batch".into(), self.submit_batch.to_value()),
            ("max_safe_batch".into(), self.max_safe_batch.to_value()),
            ("requested_gpus".into(), self.requested_gpus.to_value()),
            ("arrival_secs".into(), self.arrival_secs.to_value()),
            ("kill_after_secs".into(), self.kill_after_secs.to_value()),
        ])
    }
}

/// Reads an optional field: absent and `null` both mean `None`.
fn opt_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<Option<T>, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        None => Ok(None),
        Some((_, Value::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(T::from_value(v)?)),
    }
}

fn req_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    T::from_value(serde::field(obj, name)?)
}

impl Deserialize for WireJobSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(obj) = value else {
            return Err(DeError::custom(format!(
                "expected job object, got {}",
                value.kind()
            )));
        };
        Ok(WireJobSpec {
            id: opt_field(obj, "id")?,
            name: opt_field(obj, "name")?,
            model: req_field(obj, "model")?,
            dataset: req_field(obj, "dataset")?,
            dataset_size: req_field(obj, "dataset_size")?,
            submit_batch: req_field(obj, "submit_batch")?,
            max_safe_batch: opt_field(obj, "max_safe_batch")?,
            requested_gpus: req_field(obj, "requested_gpus")?,
            arrival_secs: opt_field(obj, "arrival_secs")?,
            kill_after_secs: opt_field(obj, "kill_after_secs")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Trace, TraceConfig};

    #[test]
    fn full_json_round_trip_is_lossless() {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 6,
            arrival_rate: 0.05,
            seed: 13,
            kill_fraction: 0.3,
        });
        for job in &trace.jobs {
            let wire = WireJobSpec::from_spec(job);
            let parsed = WireJobSpec::from_json(&wire.to_json()).expect("round trip");
            assert_eq!(parsed, wire);
            let spec = parsed.into_spec(999, 0.0).expect("valid spec");
            assert_eq!(spec.id, job.id);
            assert_eq!(spec.name, job.name);
            assert_eq!(spec.model, job.model);
            assert_eq!(spec.dataset, job.dataset);
            assert_eq!(spec.dataset_size, job.dataset_size);
            assert_eq!(spec.submit_batch, job.submit_batch);
            assert_eq!(spec.max_safe_batch, job.max_safe_batch);
            assert_eq!(spec.requested_gpus, job.requested_gpus);
            assert_eq!(spec.arrival_secs, job.arrival_secs);
            assert_eq!(spec.kill_after_secs, job.kill_after_secs);
            // Convergence rebuilds deterministically from family params.
            assert_eq!(spec.convergence.reference_batch, job.submit_batch);
        }
    }

    #[test]
    fn minimal_submission_fills_defaults() {
        let json = r#"{"model": "ResNet50", "dataset": "ImageNet",
                       "dataset_size": 12000, "submit_batch": 256,
                       "requested_gpus": 2}"#;
        let wire = WireJobSpec::from_json(json).expect("minimal body parses");
        assert_eq!(wire.id, None);
        assert_eq!(wire.arrival_secs, None);
        let spec = wire.into_spec(7, 42.5).expect("valid spec");
        assert_eq!(spec.id, JobId(7));
        assert_eq!(spec.name, "ResNet50/ImageNet-12k");
        assert_eq!(spec.arrival_secs, 42.5);
        assert!(spec.max_safe_batch >= spec.submit_batch);
        assert_eq!(spec.kill_after_secs, None);
        spec.validate();
    }

    #[test]
    fn explicit_nulls_read_as_none() {
        let json = r#"{"id": null, "name": null, "model": "BERT",
                       "dataset": "CoLA", "dataset_size": 8000,
                       "submit_batch": 32, "max_safe_batch": null,
                       "requested_gpus": 1, "arrival_secs": null,
                       "kill_after_secs": null}"#;
        let wire = WireJobSpec::from_json(json).expect("nulls parse");
        assert_eq!(wire.id, None);
        assert_eq!(wire.name, None);
        assert_eq!(wire.max_safe_batch, None);
        let spec = wire.into_spec(0, 0.0).expect("valid spec");
        assert_eq!(spec.name, "BERT/CoLA-8k");
    }

    #[test]
    fn bad_submissions_error_instead_of_panicking() {
        // Missing required field.
        let err = WireJobSpec::from_json(r#"{"model": "BERT"}"#).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
        // Unknown model family.
        let json = r#"{"model": "GPT5", "dataset": "CoLA", "dataset_size": 8000,
                       "submit_batch": 32, "requested_gpus": 1}"#;
        let err = WireJobSpec::from_json(json)
            .unwrap()
            .into_spec(0, 0.0)
            .unwrap_err();
        assert!(err.contains("bad model"), "{err}");
        // Semantically invalid spec (batch cannot fit).
        let json = r#"{"model": "ResNet50", "dataset": "ImageNet",
                       "dataset_size": 12000, "submit_batch": 4096,
                       "max_safe_batch": 4096, "requested_gpus": 1}"#;
        let err = WireJobSpec::from_json(json)
            .unwrap()
            .into_spec(0, 0.0)
            .unwrap_err();
        assert!(err.contains("cannot fit"), "{err}");
        // Not an object at all.
        assert!(WireJobSpec::from_json("[1, 2]").is_err());
    }
}
