//! # ones-workload — trace-driven workload generation (Table 2)
//!
//! Reproduces the paper's custom trace (§4.1): 50 distinct workloads drawn
//! from CV models (AlexNet / ResNet50 / VGG16 / InceptionV3 on ImageNet
//! subsets of 10k–20k images; ResNet18 / VGG16 / GoogleNet on CIFAR10
//! subsets of 20k–40k) and NLP fine-tuning (pre-trained BERT on CoLA, MRPC
//! and SST-2). Jobs arrive by a Poisson process; each job carries the
//! user-submitted configuration (reference batch size, requested GPU count)
//! that fixed-size schedulers like Tiresias must respect, plus the hidden
//! ground-truth convergence model that only the simulator may consult.

pub mod replay;
pub mod spec;
pub mod table2;
pub mod trace;
pub mod wire;

pub use replay::ReplayConfig;
pub use spec::{JobId, JobSpec};
pub use table2::{table2_catalog, WorkloadTemplate};
pub use trace::{Trace, TraceConfig, CSV_HEADER};
pub use wire::WireJobSpec;
