//! Job identity and submitted configuration.

use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, ModelProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cluster-unique job identifier, assigned in arrival order by the trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Everything known about a job at submission time, plus the hidden
/// ground-truth convergence model.
///
/// Schedulers may read the *submitted* fields (model family, dataset size,
/// reference batch, requested GPUs) and the *observed* runtime telemetry the
/// simulator reports each epoch. The `convergence` field is simulator-only
/// ground truth; honest schedulers never inspect it (the ONES predictor
/// estimates progress from telemetry instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Arrival-ordered id.
    pub id: JobId,
    /// Human-readable name, e.g. `"ResNet50/ImageNet-12k"`.
    pub name: String,
    /// Model family.
    pub model: ModelKind,
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Number of training samples ‖D‖.
    pub dataset_size: u64,
    /// User-submitted (reference) global batch size B₀.
    pub submit_batch: u32,
    /// Largest global batch the owner has validated linear LR scaling for
    /// (Goyal et al. train ImageNet at 8192; §3.3.2 relies on this
    /// "equivalent accuracy after the same number of epochs" regime).
    /// ONES never grows a job's limit beyond it.
    pub max_safe_batch: u32,
    /// User-requested GPU count (what a fixed-size scheduler allocates).
    pub requested_gpus: u32,
    /// Arrival time in seconds since trace start.
    pub arrival_secs: f64,
    /// External termination: if set, the job is killed this many seconds
    /// after arrival unless it converged first (§2.1: "not all DL jobs can
    /// end normally, as some jobs are manually killed, some ... crashed").
    pub kill_after_secs: Option<f64>,
    /// Ground-truth convergence behaviour (simulator-only).
    pub convergence: ConvergenceModel,
}

impl JobSpec {
    /// The performance profile of this job's model on its dataset.
    #[must_use]
    pub fn profile(&self) -> ModelProfile {
        self.model.profile().for_dataset(self.dataset)
    }

    /// Ground-truth total work in samples: reference epochs × dataset size.
    /// Used only for oracle baselines and test assertions.
    #[must_use]
    pub fn total_reference_samples(&self) -> f64 {
        self.convergence.total_reference_epochs() * self.dataset_size as f64
    }

    /// Fallible consistency check for jobs from *external* sources
    /// (deserialised JSON, replayed CSV rows, hand-edited traces), where a
    /// bad job must surface as an error instead of aborting the process.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.dataset_size == 0 {
            return Err(format!("{}: empty dataset", self.name));
        }
        if self.submit_batch == 0 {
            return Err(format!("{}: zero batch", self.name));
        }
        if self.requested_gpus == 0 {
            return Err(format!("{}: zero GPUs", self.name));
        }
        let prof = self.profile();
        if self.submit_batch > prof.max_local_batch * self.requested_gpus {
            return Err(format!(
                "{}: submitted batch {} cannot fit on {} GPUs (max {}/GPU)",
                self.name, self.submit_batch, self.requested_gpus, prof.max_local_batch
            ));
        }
        if self.convergence.target_accuracy >= self.convergence.max_accuracy {
            return Err(format!("{}: unreachable target accuracy", self.name));
        }
        if self.max_safe_batch < self.submit_batch {
            return Err(format!(
                "{}: safe batch range below the submitted batch",
                self.name
            ));
        }
        if self.convergence.reference_batch != self.submit_batch {
            return Err(format!(
                "{}: convergence reference batch {} != submitted batch {}",
                self.name, self.convergence.reference_batch, self.submit_batch
            ));
        }
        if !self.arrival_secs.is_finite() || self.arrival_secs < 0.0 {
            return Err(format!(
                "{}: non-finite or negative arrival time {}",
                self.name, self.arrival_secs
            ));
        }
        if let Some(k) = self.kill_after_secs {
            if !k.is_finite() || k <= 0.0 {
                return Err(format!("{}: degenerate kill time {k}", self.name));
            }
        }
        Ok(())
    }

    /// Sanity-checks internal consistency (used by proptest harnesses and
    /// the trace generators, whose output is an internal invariant).
    ///
    /// # Panics
    /// Panics if the submitted batch exceeds a single GPU's memory limit
    /// times the requested GPU count, or any parameter is degenerate. Use
    /// [`JobSpec::try_validate`] for externally supplied jobs.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: JobId(1),
            name: "ResNet50/ImageNet-10k".into(),
            model: ModelKind::ResNet50,
            dataset: DatasetKind::ImageNet,
            dataset_size: 10_000,
            submit_batch: 256,
            max_safe_batch: 2048,
            requested_gpus: 2,
            arrival_secs: 0.0,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        }
    }

    #[test]
    fn valid_spec_passes_validation() {
        spec().validate();
    }

    #[test]
    fn profile_combines_model_and_dataset() {
        let s = spec();
        let p = s.profile();
        assert_eq!(p.kind, ModelKind::ResNet50);
        assert_eq!(p.max_local_batch, 256); // ImageNet scale = 1
    }

    #[test]
    fn total_reference_samples_positive() {
        assert!(spec().total_reference_samples() > 10_000.0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_batch_rejected() {
        let mut s = spec();
        s.submit_batch = 4096;
        s.convergence.reference_batch = 4096;
        s.requested_gpus = 1;
        s.validate();
    }

    #[test]
    fn job_id_display() {
        assert_eq!(JobId(7).to_string(), "job7");
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        let mut s = spec();
        assert!(s.try_validate().is_ok());
        s.submit_batch = 4096;
        s.convergence.reference_batch = 4096;
        s.requested_gpus = 1;
        let err = s.try_validate().unwrap_err();
        assert!(err.contains("cannot fit"), "{err}");

        let mut s = spec();
        s.dataset_size = 0;
        assert!(s.try_validate().unwrap_err().contains("empty dataset"));

        let mut s = spec();
        s.convergence.reference_batch = 128;
        assert!(s.try_validate().unwrap_err().contains("reference batch"));

        let mut s = spec();
        s.arrival_secs = f64::NAN;
        assert!(s.try_validate().is_err());

        let mut s = spec();
        s.kill_after_secs = Some(-1.0);
        assert!(s.try_validate().unwrap_err().contains("kill time"));
    }
}
