//! Poisson-arrival trace generation.
//!
//! A [`Trace`] is a list of [`JobSpec`]s in arrival order. Workloads are
//! drawn uniformly from the Table 2 catalog; inter-arrival times are
//! exponential with the configured mean rate λ (the same λ that the ONES
//! *scale-down* policy uses as its convoy-effect factor σ, §3.3.2);
//! user-requested GPU counts follow the skew reported for production
//! clusters (most jobs small, a few 8-GPU requests). Everything derives
//! deterministically from a single seed.

use crate::spec::{JobId, JobSpec};
use crate::table2::{table2_catalog, WorkloadTemplate};
use ones_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// Configuration of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Mean arrival rate λ, jobs per second.
    pub arrival_rate: f64,
    /// Root seed; all randomness in the trace derives from it.
    pub seed: u64,
    /// Fraction of jobs that end abnormally (killed by their owner or
    /// crashed) at a random time instead of converging.
    pub kill_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // ~120 jobs arriving one per 30 s on average: enough pressure to
        // queue a 64-GPU cluster, matching the paper's contention regime.
        TraceConfig {
            num_jobs: 120,
            arrival_rate: 1.0 / 30.0,
            seed: 42,
            kill_fraction: 0.0,
        }
    }
}

/// A fully materialised workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The generating configuration.
    pub config: TraceConfig,
    /// Jobs in arrival order (ids are dense from 0).
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Generates a trace from its configuration.
    ///
    /// # Panics
    /// Panics if `num_jobs` is zero or the arrival rate is non-positive.
    #[must_use]
    pub fn generate(config: TraceConfig) -> Self {
        assert!(config.num_jobs > 0, "empty trace");
        assert!(config.arrival_rate > 0.0, "non-positive arrival rate");
        assert!(
            (0.0..=1.0).contains(&config.kill_fraction),
            "kill fraction out of range"
        );
        let catalog = table2_catalog();
        let root = DetRng::seed(config.seed);
        let mut arrivals = root.fork("arrivals");
        let mut picks = root.fork("templates");
        let mut gpus = root.fork("requested-gpus");
        let mut kills = root.fork("kills");

        let mut t = 0.0;
        let jobs = (0..config.num_jobs)
            .map(|i| {
                t += arrivals.exponential(config.arrival_rate);
                let template = picks
                    .choose(&catalog)
                    .expect("catalog is non-empty")
                    .clone();
                let mut job = make_job(JobId(i as u64), &template, t, &mut gpus);
                if kills.chance(config.kill_fraction) {
                    // Killed somewhere in its first ~20 minutes: early
                    // enough that many abnormal endings are partial runs.
                    job.kill_after_secs = Some(kills.uniform_range(60.0, 1200.0));
                }
                job
            })
            .collect();
        Trace { config, jobs }
    }

    /// Average arrival rate λ estimated from the trace itself (used by the
    /// ONES scale-down policy, which sets σ = λ).
    ///
    /// Unbiased for a Poisson process: `n` arrivals span `n − 1`
    /// inter-arrival gaps, so the estimate is `(n − 1) / (last − first)`.
    /// Total by construction — traces with fewer than two jobs (or a
    /// degenerate span, e.g. all arrivals at t = 0 in a hand-edited file)
    /// fall back to the configured rate, never panicking on
    /// attacker-controlled deserialised input.
    #[must_use]
    pub fn observed_arrival_rate(&self) -> f64 {
        let (Some(first), Some(last)) = (self.jobs.first(), self.jobs.last()) else {
            return self.config.arrival_rate;
        };
        let span = last.arrival_secs - first.arrival_secs;
        if self.jobs.len() < 2 || span <= 0.0 || !span.is_finite() {
            self.config.arrival_rate
        } else {
            (self.jobs.len() - 1) as f64 / span
        }
    }

    /// Total number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty (never true for a generated trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// User-requested GPU counts: 1/2/4/8 with probabilities .20/.30/.30/.20.
/// Mixed small and multi-node requests create the gang-scheduling
/// fragmentation (§2.1) that fixed-size schedulers suffer from.
fn sample_requested_gpus(rng: &mut DetRng) -> u32 {
    let u = rng.uniform();
    if u < 0.20 {
        1
    } else if u < 0.50 {
        2
    } else if u < 0.80 {
        4
    } else {
        8
    }
}

fn make_job(id: JobId, template: &WorkloadTemplate, arrival: f64, gpus: &mut DetRng) -> JobSpec {
    let requested = sample_requested_gpus(gpus);
    let job = JobSpec {
        id,
        name: template.name(),
        model: template.model,
        dataset: template.dataset,
        dataset_size: template.dataset_size,
        submit_batch: template.default_batch,
        max_safe_batch: (template.convergence.noise_scale as u32).max(template.default_batch),
        requested_gpus: requested,
        arrival_secs: arrival,
        kill_after_secs: None,
        convergence: template.convergence,
    };
    job.validate();
    job
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::default();
        let a = Trace::generate(cfg);
        let b = Trace::generate(cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::generate(TraceConfig {
            seed: 1,
            ..TraceConfig::default()
        });
        let b = Trace::generate(TraceConfig {
            seed: 2,
            ..TraceConfig::default()
        });
        assert_ne!(a.jobs, b.jobs);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_dense() {
        let t = Trace::generate(TraceConfig::default());
        assert_eq!(t.len(), 120);
        for (i, w) in t.jobs.windows(2).enumerate() {
            assert!(w[0].arrival_secs <= w[1].arrival_secs, "at {i}");
        }
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn mean_interarrival_tracks_rate() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 4000,
            arrival_rate: 0.1,
            seed: 7,
            kill_fraction: 0.0,
        });
        let rate = t.observed_arrival_rate();
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn all_jobs_valid_and_diverse() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 500,
            ..TraceConfig::default()
        });
        for j in &t.jobs {
            j.validate();
        }
        // With 500 draws over 50 templates, expect wide coverage.
        let distinct: std::collections::HashSet<&str> =
            t.jobs.iter().map(|j| j.name.as_str()).collect();
        assert!(
            distinct.len() > 40,
            "only {} distinct workloads",
            distinct.len()
        );
    }

    #[test]
    fn requested_gpu_distribution_matches_weights() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 2000,
            ..TraceConfig::default()
        });
        let count = |c: u32| t.jobs.iter().filter(|j| j.requested_gpus == c).count();
        // Mid-size requests dominate (.30 each vs .20 for the extremes).
        assert!(count(2) + count(4) > count(1) + count(8));
        for c in [1, 2, 4, 8] {
            let frac = count(c) as f64 / 2000.0;
            assert!(frac > 0.1 && frac < 0.4, "{c}-GPU fraction {frac}");
        }
        assert_eq!(count(1) + count(2) + count(4) + count(8), 2000);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_jobs_rejected() {
        let _ = Trace::generate(TraceConfig {
            num_jobs: 0,
            ..TraceConfig::default()
        });
    }
}

impl Trace {
    /// Serialises the trace to pretty JSON (for archiving an experiment's
    /// exact workload or editing it by hand).
    ///
    /// # Panics
    /// Never panics in practice: every field is JSON-serialisable.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace is serialisable")
    }

    /// Parses a trace from JSON, re-validating every job.
    ///
    /// # Errors
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let trace: Trace = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if trace.jobs.is_empty() {
            return Err("trace holds no jobs".into());
        }
        for w in trace.jobs.windows(2) {
            if w[0].arrival_secs > w[1].arrival_secs {
                return Err(format!(
                    "jobs out of arrival order at {} -> {}",
                    w[0].id, w[1].id
                ));
            }
        }
        for job in &trace.jobs {
            job.try_validate()
                .map_err(|e| format!("invalid job {}: {e}", job.id))?;
        }
        Ok(trace)
    }

    /// Writes the trace to a file: `.csv` paths get the scrubbed-CSV
    /// schema ([`Trace::to_csv`]), everything else JSON.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
        {
            std::fs::write(path, self.to_csv())
        } else {
            std::fs::write(path, self.to_json())
        }
    }

    /// Loads a trace from a file: `.csv` files go through the scrubbed-CSV
    /// schema ([`Trace::from_csv`]), everything else through JSON.
    ///
    /// # Errors
    /// Propagates I/O errors and validation failures.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
        {
            Self::from_csv(&text)
        } else {
            Self::from_json(&text)
        }
    }
}

/// Column order of the scrubbed-trace CSV schema (see EXPERIMENTS.md
/// "Trace replay"): one job per row, `kill_after_secs` empty for jobs that
/// ran to convergence.
pub const CSV_HEADER: &str = "id,model,dataset,dataset_size,submit_batch,\
                              max_safe_batch,requested_gpus,arrival_secs,kill_after_secs";

impl Trace {
    /// Serialises the trace to the scrubbed CSV schema. The hidden
    /// convergence model is *not* exported (it is simulator-only ground
    /// truth); re-ingesting rebuilds it from the per-family catalog
    /// parameters, so a CSV round trip preserves every submitted field but
    /// not bespoke convergence curves.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&CSV_HEADER.split_whitespace().collect::<String>());
        out.push('\n');
        for j in &self.jobs {
            let kill = j
                .kill_after_secs
                .map_or_else(String::new, |k| format!("{k}"));
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                j.id.0,
                j.model,
                j.dataset,
                j.dataset_size,
                j.submit_batch,
                j.max_safe_batch,
                j.requested_gpus,
                j.arrival_secs,
                kill
            ));
        }
        out
    }

    /// Parses a trace from CSV text: a header line (exactly the schema
    /// columns) followed by one job per row. Blank lines and `#` comments
    /// are skipped. Rows may arrive unsorted — real scrubbed traces often
    /// are — and are re-sorted by arrival time.
    ///
    /// # Errors
    /// Returns a description of the first syntactic or semantic problem;
    /// never panics on malformed input.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = loop {
            match lines.next() {
                Some(l) if l.trim().is_empty() || l.trim_start().starts_with('#') => {}
                Some(l) => break l,
                None => return Err("empty CSV: missing header".into()),
            }
        };
        let canonical: String = CSV_HEADER.split_whitespace().collect();
        let seen: String = header.split_whitespace().collect();
        if seen != canonical {
            return Err(format!(
                "unexpected CSV header {header:?} (expected {canonical:?})"
            ));
        }
        Self::from_csv_rows(lines)
    }

    /// Parses a trace from pre-split CSV data rows (no header). Each row
    /// follows [`CSV_HEADER`]; the hidden convergence model is rebuilt from
    /// the per-family Table 2 parameters with the reference batch pinned to
    /// the row's submitted batch.
    ///
    /// # Errors
    /// Returns a description of the first bad row; never panics.
    pub fn from_csv_rows<'a, I>(rows: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut jobs: Vec<JobSpec> = Vec::new();
        for (lineno, row) in rows.into_iter().enumerate() {
            let row = row.trim();
            if row.is_empty() || row.starts_with('#') {
                continue;
            }
            let job = parse_csv_row(row).map_err(|e| format!("row {}: {e}", lineno + 1))?;
            jobs.push(job);
        }
        if jobs.is_empty() {
            return Err("trace holds no jobs".into());
        }
        let mut ids = std::collections::BTreeSet::new();
        for j in &jobs {
            if !ids.insert(j.id) {
                return Err(format!("duplicate job id {}", j.id));
            }
        }
        jobs.sort_by(|a, b| {
            a.arrival_secs
                .partial_cmp(&b.arrival_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        for job in &jobs {
            job.try_validate()
                .map_err(|e| format!("invalid job {}: {e}", job.id))?;
        }
        let killed = jobs.iter().filter(|j| j.kill_after_secs.is_some()).count();
        let mut trace = Trace {
            config: TraceConfig {
                num_jobs: jobs.len(),
                arrival_rate: TraceConfig::default().arrival_rate,
                seed: 0,
                kill_fraction: killed as f64 / jobs.len() as f64,
            },
            jobs,
        };
        trace.config.arrival_rate = trace.observed_arrival_rate();
        Ok(trace)
    }
}

/// Parses one CSV data row into a [`JobSpec`].
fn parse_csv_row(row: &str) -> Result<JobSpec, String> {
    use crate::table2::{convergence_for, default_classes};
    let fields: Vec<&str> = row.split(',').map(str::trim).collect();
    if fields.len() != 9 {
        return Err(format!("expected 9 fields, found {}", fields.len()));
    }
    fn num<T: std::str::FromStr>(field: &str, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        field
            .parse::<T>()
            .map_err(|e| format!("bad {name} {field:?}: {e}"))
    }
    let id = JobId(num::<u64>(fields[0], "id")?);
    let model: ones_dlperf::ModelKind = num(fields[1], "model")?;
    let dataset: ones_dlperf::DatasetKind = num(fields[2], "dataset")?;
    let dataset_size: u64 = num(fields[3], "dataset_size")?;
    let submit_batch: u32 = num(fields[4], "submit_batch")?;
    let max_safe_batch: u32 = num(fields[5], "max_safe_batch")?;
    let requested_gpus: u32 = num(fields[6], "requested_gpus")?;
    let arrival_secs: f64 = num(fields[7], "arrival_secs")?;
    let kill_after_secs = match fields[8] {
        "" | "-" => None,
        k => Some(num::<f64>(k, "kill_after_secs")?),
    };
    let size_k = if dataset_size.is_multiple_of(1000) {
        format!("{}k", dataset_size / 1000)
    } else {
        format!("{:.1}k", dataset_size as f64 / 1000.0)
    };
    Ok(JobSpec {
        id,
        name: format!("{model}/{dataset}-{size_k}"),
        model,
        dataset,
        dataset_size,
        submit_batch,
        max_safe_batch,
        requested_gpus,
        arrival_secs,
        kill_after_secs,
        convergence: convergence_for(model, dataset, default_classes(dataset), submit_batch),
    })
}

#[cfg(test)]
mod io_tests {
    use super::*;

    #[test]
    fn json_round_trip_is_lossless() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 15,
            arrival_rate: 1.0 / 25.0,
            seed: 9,
            kill_fraction: 0.2,
        });
        let parsed = Trace::from_json(&t.to_json()).expect("round trip");
        assert_eq!(parsed, t);
    }

    #[test]
    fn file_round_trip() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 5,
            arrival_rate: 0.1,
            seed: 3,
            kill_fraction: 0.0,
        });
        let dir = std::env::temp_dir().join("ones-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_and_empty_traces() {
        assert!(Trace::from_json("not json").is_err());
        let mut t = Trace::generate(TraceConfig {
            num_jobs: 2,
            arrival_rate: 0.1,
            seed: 1,
            kill_fraction: 0.0,
        });
        t.jobs.clear();
        assert!(Trace::from_json(&t.to_json()).is_err());
    }

    #[test]
    fn rejects_out_of_order_arrivals() {
        let mut t = Trace::generate(TraceConfig {
            num_jobs: 3,
            arrival_rate: 0.1,
            seed: 1,
            kill_fraction: 0.0,
        });
        t.jobs[0].arrival_secs = 1e9;
        assert!(Trace::from_json(&t.to_json()).is_err());
    }

    fn small() -> Trace {
        Trace::generate(TraceConfig {
            num_jobs: 4,
            arrival_rate: 0.1,
            seed: 11,
            kill_fraction: 0.25,
        })
    }

    #[test]
    fn json_rejects_semantically_invalid_jobs_without_panicking() {
        // Hand-edited traces are exactly the ones with bad jobs; every one
        // of these must come back as Err, not abort the process.
        let mut t = small();
        t.jobs[1].submit_batch = 0;
        t.jobs[1].convergence.reference_batch = 0;
        let err = Trace::from_json(&t.to_json()).unwrap_err();
        assert!(err.contains("zero batch"), "{err}");

        let mut t = small();
        t.jobs[2].submit_batch = 1 << 20; // cannot fit on any GPU count here
        t.jobs[2].convergence.reference_batch = 1 << 20;
        t.jobs[2].max_safe_batch = 1 << 20;
        assert!(Trace::from_json(&t.to_json()).is_err());

        let mut t = small();
        t.jobs[0].requested_gpus = 0;
        assert!(Trace::from_json(&t.to_json()).is_err());

        let mut t = small();
        t.jobs[0].kill_after_secs = Some(-1.0);
        assert!(Trace::from_json(&t.to_json()).is_err());
    }

    #[test]
    fn csv_round_trip_preserves_submitted_fields() {
        let t = small();
        let parsed = Trace::from_csv(&t.to_csv()).expect("round trip");
        assert_eq!(parsed.len(), t.len());
        for (a, b) in parsed.jobs.iter().zip(&t.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.model, b.model);
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(a.dataset_size, b.dataset_size);
            assert_eq!(a.submit_batch, b.submit_batch);
            assert_eq!(a.max_safe_batch, b.max_safe_batch);
            assert_eq!(a.requested_gpus, b.requested_gpus);
            assert_eq!(a.arrival_secs, b.arrival_secs);
            assert_eq!(a.kill_after_secs, b.kill_after_secs);
        }
        // Observed kill fraction and arrival rate flow into the config.
        let killed = t
            .jobs
            .iter()
            .filter(|j| j.kill_after_secs.is_some())
            .count();
        assert!((parsed.config.kill_fraction - killed as f64 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn csv_sorts_unsorted_rows_and_keeps_comments_out() {
        let csv = "# scrubbed cluster trace\n\
                   id,model,dataset,dataset_size,submit_batch,max_safe_batch,requested_gpus,arrival_secs,kill_after_secs\n\
                   1,BERT,CoLA,8000,32,256,1,120.5,\n\
                   \n\
                   0,ResNet50,ImageNet,12000,256,2048,2,30.0,600.0\n";
        let t = Trace::from_csv(csv).expect("valid csv");
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs[0].id, JobId(0));
        assert_eq!(t.jobs[0].kill_after_secs, Some(600.0));
        assert_eq!(t.jobs[1].name, "BERT/CoLA-8k");
        assert_eq!(t.jobs[1].kill_after_secs, None);
        for j in &t.jobs {
            j.validate(); // ingested convergence models are consistent
        }
    }

    #[test]
    fn csv_rejects_bad_rows_with_errors_not_panics() {
        let header = "id,model,dataset,dataset_size,submit_batch,max_safe_batch,requested_gpus,arrival_secs,kill_after_secs";
        let cases = [
            ("not,a,row", "expected 9 fields"),
            (
                "0,ResNet152,ImageNet,12000,256,2048,2,30.0,",
                "unknown model",
            ),
            ("0,ResNet50,MNIST,12000,256,2048,2,30.0,", "unknown dataset"),
            (
                "0,ResNet50,ImageNet,12000,zero,2048,2,30.0,",
                "bad submit_batch",
            ),
            ("0,ResNet50,ImageNet,12000,0,2048,2,30.0,", "zero batch"),
            ("0,ResNet50,ImageNet,12000,4096,4096,1,30.0,", "cannot fit"),
            ("0,ResNet50,ImageNet,12000,256,2048,2,-5.0,", "arrival"),
            (
                "0,ResNet50,ImageNet,12000,256,2048,2,30.0,-1.0",
                "kill time",
            ),
        ];
        for (row, needle) in cases {
            let text = format!("{header}\n{row}\n");
            let err = Trace::from_csv(&text).unwrap_err();
            assert!(err.contains(needle), "{row}: {err}");
        }
        assert!(Trace::from_csv("").unwrap_err().contains("missing header"));
        assert!(Trace::from_csv("a,b,c\n").unwrap_err().contains("header"));
        assert!(Trace::from_csv(&format!("{header}\n"))
            .unwrap_err()
            .contains("no jobs"));
        let dup = format!(
            "{header}\n0,ResNet50,ImageNet,12000,256,2048,2,30.0,\n0,ResNet50,ImageNet,12000,256,2048,2,40.0,\n"
        );
        assert!(Trace::from_csv(&dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn observed_rate_is_total_and_unbiased() {
        // Empty and single-job traces fall back to the configured rate.
        let mut t = small();
        t.jobs.truncate(1);
        assert_eq!(t.observed_arrival_rate(), t.config.arrival_rate);
        t.jobs.clear();
        assert_eq!(t.observed_arrival_rate(), t.config.arrival_rate);

        // Two arrivals one second apart => exactly 1 job/s over the span.
        let mut t = small();
        t.jobs.truncate(2);
        t.jobs[0].arrival_secs = 10.0;
        t.jobs[1].arrival_secs = 11.0;
        assert!((t.observed_arrival_rate() - 1.0).abs() < 1e-12);

        // Degenerate span (all arrivals equal) also falls back.
        t.jobs[1].arrival_secs = 10.0;
        assert_eq!(t.observed_arrival_rate(), t.config.arrival_rate);
    }
}
