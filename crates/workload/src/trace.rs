//! Poisson-arrival trace generation.
//!
//! A [`Trace`] is a list of [`JobSpec`]s in arrival order. Workloads are
//! drawn uniformly from the Table 2 catalog; inter-arrival times are
//! exponential with the configured mean rate λ (the same λ that the ONES
//! *scale-down* policy uses as its convoy-effect factor σ, §3.3.2);
//! user-requested GPU counts follow the skew reported for production
//! clusters (most jobs small, a few 8-GPU requests). Everything derives
//! deterministically from a single seed.

use crate::spec::{JobId, JobSpec};
use crate::table2::{table2_catalog, WorkloadTemplate};
use ones_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// Configuration of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Mean arrival rate λ, jobs per second.
    pub arrival_rate: f64,
    /// Root seed; all randomness in the trace derives from it.
    pub seed: u64,
    /// Fraction of jobs that end abnormally (killed by their owner or
    /// crashed) at a random time instead of converging.
    pub kill_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // ~120 jobs arriving one per 30 s on average: enough pressure to
        // queue a 64-GPU cluster, matching the paper's contention regime.
        TraceConfig {
            num_jobs: 120,
            arrival_rate: 1.0 / 30.0,
            seed: 42,
            kill_fraction: 0.0,
        }
    }
}

/// A fully materialised workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The generating configuration.
    pub config: TraceConfig,
    /// Jobs in arrival order (ids are dense from 0).
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Generates a trace from its configuration.
    ///
    /// # Panics
    /// Panics if `num_jobs` is zero or the arrival rate is non-positive.
    #[must_use]
    pub fn generate(config: TraceConfig) -> Self {
        assert!(config.num_jobs > 0, "empty trace");
        assert!(config.arrival_rate > 0.0, "non-positive arrival rate");
        assert!(
            (0.0..=1.0).contains(&config.kill_fraction),
            "kill fraction out of range"
        );
        let catalog = table2_catalog();
        let root = DetRng::seed(config.seed);
        let mut arrivals = root.fork("arrivals");
        let mut picks = root.fork("templates");
        let mut gpus = root.fork("requested-gpus");
        let mut kills = root.fork("kills");

        let mut t = 0.0;
        let jobs = (0..config.num_jobs)
            .map(|i| {
                t += arrivals.exponential(config.arrival_rate);
                let template = picks
                    .choose(&catalog)
                    .expect("catalog is non-empty")
                    .clone();
                let mut job = make_job(JobId(i as u64), &template, t, &mut gpus);
                if kills.chance(config.kill_fraction) {
                    // Killed somewhere in its first ~20 minutes: early
                    // enough that many abnormal endings are partial runs.
                    job.kill_after_secs = Some(kills.uniform_range(60.0, 1200.0));
                }
                job
            })
            .collect();
        Trace { config, jobs }
    }

    /// Average arrival rate λ estimated from the trace itself (used by the
    /// ONES scale-down policy, which sets σ = λ).
    #[must_use]
    pub fn observed_arrival_rate(&self) -> f64 {
        let last = self.jobs.last().expect("trace is never empty").arrival_secs;
        if last <= 0.0 {
            self.config.arrival_rate
        } else {
            self.jobs.len() as f64 / last
        }
    }

    /// Total number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty (never true for a generated trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// User-requested GPU counts: 1/2/4/8 with probabilities .20/.30/.30/.20.
/// Mixed small and multi-node requests create the gang-scheduling
/// fragmentation (§2.1) that fixed-size schedulers suffer from.
fn sample_requested_gpus(rng: &mut DetRng) -> u32 {
    let u = rng.uniform();
    if u < 0.20 {
        1
    } else if u < 0.50 {
        2
    } else if u < 0.80 {
        4
    } else {
        8
    }
}

fn make_job(id: JobId, template: &WorkloadTemplate, arrival: f64, gpus: &mut DetRng) -> JobSpec {
    let requested = sample_requested_gpus(gpus);
    let job = JobSpec {
        id,
        name: template.name(),
        model: template.model,
        dataset: template.dataset,
        dataset_size: template.dataset_size,
        submit_batch: template.default_batch,
        max_safe_batch: (template.convergence.noise_scale as u32).max(template.default_batch),
        requested_gpus: requested,
        arrival_secs: arrival,
        kill_after_secs: None,
        convergence: template.convergence,
    };
    job.validate();
    job
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::default();
        let a = Trace::generate(cfg);
        let b = Trace::generate(cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::generate(TraceConfig {
            seed: 1,
            ..TraceConfig::default()
        });
        let b = Trace::generate(TraceConfig {
            seed: 2,
            ..TraceConfig::default()
        });
        assert_ne!(a.jobs, b.jobs);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_dense() {
        let t = Trace::generate(TraceConfig::default());
        assert_eq!(t.len(), 120);
        for (i, w) in t.jobs.windows(2).enumerate() {
            assert!(w[0].arrival_secs <= w[1].arrival_secs, "at {i}");
        }
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn mean_interarrival_tracks_rate() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 4000,
            arrival_rate: 0.1,
            seed: 7,
            kill_fraction: 0.0,
        });
        let rate = t.observed_arrival_rate();
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn all_jobs_valid_and_diverse() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 500,
            ..TraceConfig::default()
        });
        for j in &t.jobs {
            j.validate();
        }
        // With 500 draws over 50 templates, expect wide coverage.
        let distinct: std::collections::HashSet<&str> =
            t.jobs.iter().map(|j| j.name.as_str()).collect();
        assert!(
            distinct.len() > 40,
            "only {} distinct workloads",
            distinct.len()
        );
    }

    #[test]
    fn requested_gpu_distribution_matches_weights() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 2000,
            ..TraceConfig::default()
        });
        let count = |c: u32| t.jobs.iter().filter(|j| j.requested_gpus == c).count();
        // Mid-size requests dominate (.30 each vs .20 for the extremes).
        assert!(count(2) + count(4) > count(1) + count(8));
        for c in [1, 2, 4, 8] {
            let frac = count(c) as f64 / 2000.0;
            assert!(frac > 0.1 && frac < 0.4, "{c}-GPU fraction {frac}");
        }
        assert_eq!(count(1) + count(2) + count(4) + count(8), 2000);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_jobs_rejected() {
        let _ = Trace::generate(TraceConfig {
            num_jobs: 0,
            ..TraceConfig::default()
        });
    }
}

impl Trace {
    /// Serialises the trace to pretty JSON (for archiving an experiment's
    /// exact workload or editing it by hand).
    ///
    /// # Panics
    /// Never panics in practice: every field is JSON-serialisable.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace is serialisable")
    }

    /// Parses a trace from JSON, re-validating every job.
    ///
    /// # Errors
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let trace: Trace = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if trace.jobs.is_empty() {
            return Err("trace holds no jobs".into());
        }
        for w in trace.jobs.windows(2) {
            if w[0].arrival_secs > w[1].arrival_secs {
                return Err(format!(
                    "jobs out of arrival order at {} -> {}",
                    w[0].id, w[1].id
                ));
            }
        }
        for job in &trace.jobs {
            job.validate();
        }
        Ok(trace)
    }

    /// Writes the trace to a JSON file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a trace from a JSON file.
    ///
    /// # Errors
    /// Propagates I/O errors and validation failures.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;

    #[test]
    fn json_round_trip_is_lossless() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 15,
            arrival_rate: 1.0 / 25.0,
            seed: 9,
            kill_fraction: 0.2,
        });
        let parsed = Trace::from_json(&t.to_json()).expect("round trip");
        assert_eq!(parsed, t);
    }

    #[test]
    fn file_round_trip() {
        let t = Trace::generate(TraceConfig {
            num_jobs: 5,
            arrival_rate: 0.1,
            seed: 3,
            kill_fraction: 0.0,
        });
        let dir = std::env::temp_dir().join("ones-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_and_empty_traces() {
        assert!(Trace::from_json("not json").is_err());
        let mut t = Trace::generate(TraceConfig {
            num_jobs: 2,
            arrival_rate: 0.1,
            seed: 1,
            kill_fraction: 0.0,
        });
        t.jobs.clear();
        assert!(Trace::from_json(&t.to_json()).is_err());
    }

    #[test]
    fn rejects_out_of_order_arrivals() {
        let mut t = Trace::generate(TraceConfig {
            num_jobs: 3,
            arrival_rate: 0.1,
            seed: 1,
            kill_fraction: 0.0,
        });
        t.jobs[0].arrival_secs = 1e9;
        assert!(Trace::from_json(&t.to_json()).is_err());
    }
}
