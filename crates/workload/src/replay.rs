//! Philly/Helios-style cluster-trace replay synthesis.
//!
//! The Table 2 generator ([`crate::trace`]) draws arrivals from a
//! *homogeneous* Poisson process — fine for reproducing the paper's §4
//! setup, but production GPU clusters look different in three ways that
//! matter to a scheduler:
//!
//! 1. **Arrivals are diurnal and bursty.** Submission rates swing with the
//!    working day and spike when users sweep hyper-parameters. We model
//!    this as a Markov-modulated Poisson process (a two-state burst/calm
//!    chain multiplying the rate) on top of a sinusoidal diurnal envelope,
//!    sampled exactly by Lewis–Shedler thinning.
//! 2. **Durations are heavy-tailed.** Philly-style traces show
//!    log-normal-ish job durations spanning orders of magnitude. Each job's
//!    total work is the Table 2 template's dataset scaled by a log-normal
//!    multiplier, so short fine-tuning jobs coexist with week-long
//!    stragglers.
//! 3. **Many jobs never finish.** Roughly 30 % of production jobs end
//!    abnormally (killed by their owner, crashed, pre-empted for quota).
//!    The default `kill_fraction` reflects that, with log-normal
//!    kill times so most abnormal endings are partial runs.
//!
//! GPU requests follow the power-of-two skew with a long single-GPU tail
//! reported for production clusters (most jobs are 1-GPU experiments),
//! unlike the Table 2 generator's mid-size-heavy mix. Everything derives
//! deterministically from a single seed, like every other trace source.

use crate::spec::{JobId, JobSpec};
use crate::table2::table2_catalog;
use crate::trace::{Trace, TraceConfig};
use ones_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthesised replay trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Number of jobs to synthesise.
    pub num_jobs: usize,
    /// Long-run mean arrival rate λ̄ in the calm state, jobs per second.
    pub base_rate: f64,
    /// Root seed; all randomness in the trace derives from it.
    pub seed: u64,
    /// Diurnal swing in `[0, 1]`: the instantaneous rate oscillates between
    /// `base_rate · (1 − a)` and `base_rate · (1 + a)` over one period.
    pub diurnal_amplitude: f64,
    /// Length of the diurnal cycle, seconds. The default is a compressed
    /// 6 h "day" so the cycle is visible inside typical simulated spans
    /// (Table 2 jobs finish within two hours, so whole traces span hours,
    /// not days).
    pub diurnal_period_secs: f64,
    /// Rate multiplier while the burst state is active (≥ 1).
    pub burst_factor: f64,
    /// Mean sojourn time in the burst state, seconds.
    pub mean_burst_secs: f64,
    /// Mean sojourn time in the calm state, seconds.
    pub mean_calm_secs: f64,
    /// σ of the log-normal work multiplier applied to each job's dataset
    /// (0 reproduces the template sizes exactly; ~0.8 gives the
    /// heavy-tailed duration mix of production traces).
    pub duration_log_sigma: f64,
    /// Fraction of jobs that end abnormally instead of converging
    /// (production traces report ~30 %).
    pub kill_fraction: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            num_jobs: 120,
            base_rate: 1.0 / 30.0,
            seed: 42,
            diurnal_amplitude: 0.5,
            diurnal_period_secs: 21_600.0,
            burst_factor: 4.0,
            mean_burst_secs: 300.0,
            mean_calm_secs: 1_800.0,
            duration_log_sigma: 0.8,
            kill_fraction: 0.30,
        }
    }
}

impl ReplayConfig {
    /// Synthesises the replay trace.
    ///
    /// The embedded [`TraceConfig`] carries the *observed* mean arrival
    /// rate (what the ONES scale-down policy reads as σ = λ) and the
    /// configured kill fraction, so downstream consumers see an honest
    /// summary of the mixture.
    ///
    /// # Panics
    /// Panics if any knob is out of range (`num_jobs` zero, non-positive
    /// rates/periods, amplitude or kill fraction outside `[0, 1]`,
    /// `burst_factor` below 1).
    #[must_use]
    pub fn generate(self) -> Trace {
        assert!(self.num_jobs > 0, "empty trace");
        assert!(self.base_rate > 0.0, "non-positive arrival rate");
        assert!(
            (0.0..=1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude out of range"
        );
        assert!(
            self.diurnal_period_secs > 0.0,
            "non-positive diurnal period"
        );
        assert!(self.burst_factor >= 1.0, "burst factor below 1");
        assert!(
            self.mean_burst_secs > 0.0 && self.mean_calm_secs > 0.0,
            "non-positive burst/calm sojourn"
        );
        assert!(self.duration_log_sigma >= 0.0, "negative duration sigma");
        assert!(
            (0.0..=1.0).contains(&self.kill_fraction),
            "kill fraction out of range"
        );

        let catalog = table2_catalog();
        let root = DetRng::seed(self.seed);
        let mut arrivals = root.fork("replay-arrivals");
        let mut bursts = root.fork("replay-bursts");
        let mut picks = root.fork("replay-templates");
        let mut gpus = root.fork("replay-gpus");
        let mut durations = root.fork("replay-durations");
        let mut kills = root.fork("replay-kills");

        // Two-state burst chain, evolved in continuous time alongside the
        // thinned arrival stream.
        let mut bursty = false;
        let mut state_until = bursts.exponential(1.0 / self.mean_calm_secs);
        // Thinning envelope: the largest instantaneous rate ever reachable.
        let rate_max = self.base_rate * (1.0 + self.diurnal_amplitude) * self.burst_factor;

        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(self.num_jobs);
        while jobs.len() < self.num_jobs {
            t += arrivals.exponential(rate_max);
            while t > state_until {
                bursty = !bursty;
                let mean = if bursty {
                    self.mean_burst_secs
                } else {
                    self.mean_calm_secs
                };
                state_until += bursts.exponential(1.0 / mean);
            }
            let diurnal = 1.0
                + self.diurnal_amplitude
                    * (std::f64::consts::TAU * t / self.diurnal_period_secs).sin();
            let burst = if bursty { self.burst_factor } else { 1.0 };
            let rate = self.base_rate * diurnal * burst;
            if !arrivals.chance(rate / rate_max) {
                continue; // thinned: outside the current intensity
            }

            let id = JobId(jobs.len() as u64);
            let template = picks.choose(&catalog).expect("catalog is non-empty");
            // Heavy-tailed total work: log-normal multiplier on the
            // template's dataset (epoch time and epochs-to-converge both
            // scale with it).
            let mult = (self.duration_log_sigma * durations.standard_normal())
                .exp()
                .clamp(0.25, 32.0);
            let dataset_size = ((template.dataset_size as f64 * mult).round() as u64).max(1_000);
            let kill_after_secs = if kills.chance(self.kill_fraction) {
                // Log-normal kill time (median 10 min): most abnormal
                // endings are partial runs, a few die after hours.
                Some(
                    (600.0_f64.ln() + kills.standard_normal())
                        .exp()
                        .clamp(30.0, 14_400.0),
                )
            } else {
                None
            };
            let job = JobSpec {
                id,
                name: sized_name(template.model, template.dataset, dataset_size),
                model: template.model,
                dataset: template.dataset,
                dataset_size,
                submit_batch: template.default_batch,
                max_safe_batch: (template.convergence.noise_scale as u32)
                    .max(template.default_batch),
                requested_gpus: sample_replay_gpus(&mut gpus),
                arrival_secs: t,
                kill_after_secs,
                convergence: template.convergence,
            };
            debug_assert!(job.try_validate().is_ok(), "{:?}", job.try_validate());
            job.validate();
            jobs.push(job);
        }

        let mut trace = Trace {
            config: TraceConfig {
                num_jobs: self.num_jobs,
                arrival_rate: self.base_rate,
                seed: self.seed,
                kill_fraction: self.kill_fraction,
            },
            jobs,
        };
        trace.config.arrival_rate = trace.observed_arrival_rate();
        trace
    }
}

/// GPU-request skew of production clusters: a long single-GPU tail with
/// power-of-two multi-GPU requests — 1/2/4/8 with probabilities
/// .70/.12/.10/.08 (contrast the Table 2 generator's mid-size-heavy mix).
fn sample_replay_gpus(rng: &mut DetRng) -> u32 {
    let u = rng.uniform();
    if u < 0.70 {
        1
    } else if u < 0.82 {
        2
    } else if u < 0.92 {
        4
    } else {
        8
    }
}

/// `"ResNet50/ImageNet-17k"`-style name reflecting the *scaled* dataset.
fn sized_name(
    model: ones_dlperf::ModelKind,
    dataset: ones_dlperf::DatasetKind,
    dataset_size: u64,
) -> String {
    let size = if dataset_size.is_multiple_of(1000) {
        format!("{}k", dataset_size / 1000)
    } else {
        format!("{:.1}k", dataset_size as f64 / 1000.0)
    };
    format!("{model}/{dataset}-{size}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> Trace {
        ReplayConfig {
            num_jobs: 3_000,
            ..ReplayConfig::default()
        }
        .generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ReplayConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ReplayConfig {
            seed: 1,
            ..ReplayConfig::default()
        };
        let b = ReplayConfig {
            seed: 2,
            ..ReplayConfig::default()
        };
        assert_ne!(a.generate().jobs, b.generate().jobs);
    }

    #[test]
    fn arrivals_sorted_ids_dense_jobs_valid() {
        let t = ReplayConfig {
            num_jobs: 400,
            ..ReplayConfig::default()
        }
        .generate();
        assert_eq!(t.len(), 400);
        for w in t.jobs.windows(2) {
            assert!(w[0].arrival_secs <= w[1].arrival_secs);
        }
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
            j.try_validate().expect("replay job is valid");
        }
    }

    #[test]
    fn kill_fraction_is_realised() {
        let t = big();
        let killed = t
            .jobs
            .iter()
            .filter(|j| j.kill_after_secs.is_some())
            .count();
        let frac = killed as f64 / t.len() as f64;
        assert!((frac - 0.30).abs() < 0.03, "killed fraction {frac}");
        for j in t.jobs.iter().filter_map(|j| j.kill_after_secs) {
            assert!((30.0..=14_400.0).contains(&j));
        }
    }

    #[test]
    fn gpu_requests_have_a_single_gpu_tail() {
        let t = big();
        let count = |c: u32| t.jobs.iter().filter(|j| j.requested_gpus == c).count();
        let n = t.len() as f64;
        assert!(count(1) as f64 / n > 0.6, "single-GPU share too small");
        assert!(count(8) as f64 / n > 0.04, "8-GPU share vanished");
        assert_eq!(count(1) + count(2) + count(4) + count(8), t.len());
    }

    #[test]
    fn durations_are_heavy_tailed() {
        let t = big();
        let mut sizes: Vec<f64> = t.jobs.iter().map(|j| j.dataset_size as f64).collect();
        sizes.sort_by(f64::total_cmp);
        let median = sizes[sizes.len() / 2];
        let p99 = sizes[sizes.len() * 99 / 100];
        // Log-normal σ=0.8 over the catalog: the 99th percentile of work is
        // several× the median (a pure catalog draw caps out near 40k/15k).
        assert!(p99 / median > 4.0, "p99/median {}", p99 / median);
    }

    #[test]
    fn arrivals_are_overdispersed_vs_poisson() {
        let t = big();
        // Index of dispersion of counts in fixed windows: 1 for a Poisson
        // process, > 1 for the diurnal + burst-modulated mixture.
        let window = 10.0 / t.config.arrival_rate.max(1e-9);
        let last = t.jobs.last().unwrap().arrival_secs;
        let n_windows = (last / window).ceil() as usize;
        let mut counts = vec![0.0_f64; n_windows.max(1)];
        for j in &t.jobs {
            let w = ((j.arrival_secs / window) as usize).min(counts.len() - 1);
            counts[w] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
            / (counts.len() - 1).max(1) as f64;
        assert!(var / mean > 1.3, "index of dispersion {}", var / mean);
    }

    #[test]
    fn zero_modulation_reduces_to_plain_poisson_rate() {
        let t = ReplayConfig {
            num_jobs: 4_000,
            diurnal_amplitude: 0.0,
            burst_factor: 1.0,
            duration_log_sigma: 0.0,
            kill_fraction: 0.0,
            ..ReplayConfig::default()
        }
        .generate();
        let rate = t.observed_arrival_rate();
        assert!((rate - 1.0 / 30.0).abs() < 0.004, "rate {rate}");
        assert!(t.jobs.iter().all(|j| j.kill_after_secs.is_none()));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_jobs_rejected() {
        let _ = ReplayConfig {
            num_jobs: 0,
            ..ReplayConfig::default()
        }
        .generate();
    }

    #[test]
    fn json_round_trip_via_trace_io() {
        let t = ReplayConfig {
            num_jobs: 20,
            ..ReplayConfig::default()
        }
        .generate();
        let parsed = Trace::from_json(&t.to_json()).expect("replay traces re-ingest");
        assert_eq!(parsed, t);
    }
}
