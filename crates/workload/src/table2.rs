//! The Table 2 workload catalog.
//!
//! The paper's trace mixes 50 distinct workloads:
//!
//! | Task | Dataset  | Models                                  | Sizes            |
//! |------|----------|-----------------------------------------|------------------|
//! | CV   | ImageNet | AlexNet, ResNet50, VGG16, InceptionV3   | 10k, 12k, …, 20k |
//! | CV   | CIFAR10  | ResNet18, VGG16, GoogleNet              | 20k, 25k, …, 40k |
//! | NLP  | CoLA     | BERT (pre-trained)                      | 5k, 6k, 7k, 8k   |
//! | NLP  | MRPC     | BERT (pre-trained)                      | 3.6k             |
//! | NLP  | SST-2    | BERT (pre-trained)                      | 10k, 12k, …, 20k |
//!
//! 4×6 + 3×5 + 4 + 1 + 6 = 50 templates. Each template also carries the
//! ground-truth convergence parameters the simulator uses in place of real
//! training: per-family gradient noise scales, achievable accuracies and
//! convergence speeds chosen so jobs finish "within 2 hours" on a single
//! GPU (§4.1) with a realistic mix of short and long jobs.

use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};
use serde::{Deserialize, Serialize};

/// One of the 50 distinct (model, dataset, size) workloads of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTemplate {
    /// Model family.
    pub model: ModelKind,
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Training-set size in samples.
    pub dataset_size: u64,
    /// Number of classes (cosmetic: fixes the initial loss ln(classes)).
    pub classes: u32,
    /// Default user-submitted batch size for this workload.
    pub default_batch: u32,
    /// Ground-truth convergence parameters.
    pub convergence: ConvergenceModel,
}

impl WorkloadTemplate {
    /// Short display name, e.g. `"VGG16/CIFAR10-25k"`.
    #[must_use]
    pub fn name(&self) -> String {
        let size = if self.dataset_size.is_multiple_of(1000) {
            format!("{}k", self.dataset_size / 1000)
        } else {
            format!("{:.1}k", self.dataset_size as f64 / 1000.0)
        };
        format!("{}/{}-{}", self.model, self.dataset, size)
    }
}

/// Gradient noise scale per (model, dataset): the batch size where sample
/// efficiency halves. CNNs on tiny CIFAR images tolerate large batches;
/// BERT fine-tuning does not.
fn noise_scale(model: ModelKind, dataset: DatasetKind) -> f64 {
    match (model, dataset) {
        (ModelKind::BertBase, _) => 256.0,
        (_, DatasetKind::Cifar10) => 4096.0,
        _ => 2048.0,
    }
}

/// Convergence-speed scale: reference epochs for accuracy to reach ~63 % of
/// its maximum. Larger/older architectures converge slower; fine-tuning a
/// pre-trained BERT is fast.
fn progress_scale(model: ModelKind) -> f64 {
    match model {
        ModelKind::AlexNet => 9.0,
        ModelKind::ResNet18 => 7.0,
        ModelKind::ResNet50 => 10.0,
        ModelKind::Vgg16 => 12.0,
        ModelKind::GoogleNet => 8.0,
        ModelKind::InceptionV3 => 11.0,
        ModelKind::BertBase => 3.0,
    }
}

/// Default submitted batch size per (model, dataset).
fn default_batch(model: ModelKind, dataset: DatasetKind) -> u32 {
    match (model, dataset) {
        (ModelKind::BertBase, _) => 32,
        (_, DatasetKind::Cifar10) => 256,
        (ModelKind::Vgg16, _) => 128,
        _ => 256,
    }
}

/// Typical class count per dataset, used when an ingested trace row does
/// not say (only the initial loss ln(classes) depends on it).
#[must_use]
pub fn default_classes(dataset: DatasetKind) -> u32 {
    match dataset {
        DatasetKind::ImageNet => 12,
        DatasetKind::Cifar10 => 10,
        DatasetKind::Cola | DatasetKind::Mrpc | DatasetKind::Sst2 => 2,
    }
}

/// Ground-truth convergence parameters for a `(model, dataset)` pair with
/// the reference batch pinned to `submit_batch` — the catalog's per-family
/// noise/progress scales applied to a job that is *not* one of the 50
/// Table 2 templates (a replayed CSV row, say). The trace generators call
/// this through [`template`]; ingestion paths call it directly.
#[must_use]
pub fn convergence_for(
    model: ModelKind,
    dataset: DatasetKind,
    classes: u32,
    submit_batch: u32,
) -> ConvergenceModel {
    let (max_accuracy, target_ratio) = match dataset {
        // Subset training tops out lower than full-dataset SOTA; targets
        // sit close enough below the max that the patience window matters.
        DatasetKind::ImageNet => (0.88, 0.94),
        DatasetKind::Cifar10 => (0.93, 0.95),
        DatasetKind::Cola => (0.83, 0.95),
        DatasetKind::Mrpc => (0.86, 0.95),
        DatasetKind::Sst2 => (0.92, 0.95),
    };
    let initial_loss = match dataset {
        DatasetKind::ImageNet | DatasetKind::Cifar10 => f64::from(classes.max(2)).ln(),
        _ => std::f64::consts::LN_2, // binary GLUE tasks
    };
    ConvergenceModel {
        reference_batch: submit_batch,
        noise_scale: noise_scale(model, dataset),
        initial_loss,
        final_loss: 0.02 * initial_loss,
        max_accuracy,
        target_accuracy: max_accuracy * target_ratio,
        progress_scale: progress_scale(model),
        spike_penalty_per_octave: 2.0,
        patience: 10,
        unscaled_lr_penalty: 0.75,
    }
}

fn template(
    model: ModelKind,
    dataset: DatasetKind,
    dataset_size: u64,
    classes: u32,
) -> WorkloadTemplate {
    let batch = default_batch(model, dataset);
    WorkloadTemplate {
        model,
        dataset,
        dataset_size,
        classes,
        default_batch: batch,
        convergence: convergence_for(model, dataset, classes, batch),
    }
}

/// The full Table 2 catalog: exactly 50 distinct workloads.
#[must_use]
pub fn table2_catalog() -> Vec<WorkloadTemplate> {
    let mut out = Vec::with_capacity(50);

    // CV on ImageNet subsets: 4 models × 6 sizes (10k..20k step 2k).
    // The paper pairs size 10k with 10 classes, 12k with 12, etc.
    for model in [
        ModelKind::AlexNet,
        ModelKind::ResNet50,
        ModelKind::Vgg16,
        ModelKind::InceptionV3,
    ] {
        for k in (10..=20u64).step_by(2) {
            out.push(template(model, DatasetKind::ImageNet, k * 1000, k as u32));
        }
    }

    // CV on CIFAR10 subsets: 3 models × 5 sizes (20k..40k step 5k).
    for model in [ModelKind::ResNet18, ModelKind::Vgg16, ModelKind::GoogleNet] {
        for k in (20..=40u64).step_by(5) {
            out.push(template(model, DatasetKind::Cifar10, k * 1000, 10));
        }
    }

    // NLP: BERT on CoLA (5k..8k), MRPC (3.6k), SST-2 (10k..20k step 2k).
    for k in 5..=8u64 {
        out.push(template(
            ModelKind::BertBase,
            DatasetKind::Cola,
            k * 1000,
            2,
        ));
    }
    out.push(template(ModelKind::BertBase, DatasetKind::Mrpc, 3600, 2));
    for k in (10..=20u64).step_by(2) {
        out.push(template(
            ModelKind::BertBase,
            DatasetKind::Sst2,
            k * 1000,
            2,
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_exactly_fifty_workloads() {
        assert_eq!(table2_catalog().len(), 50);
    }

    #[test]
    fn catalog_entries_are_distinct() {
        let names: HashSet<String> = table2_catalog()
            .iter()
            .map(WorkloadTemplate::name)
            .collect();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn catalog_composition_matches_table2() {
        let cat = table2_catalog();
        let count = |m: ModelKind, d: DatasetKind| {
            cat.iter()
                .filter(|t| t.model == m && t.dataset == d)
                .count()
        };
        assert_eq!(count(ModelKind::AlexNet, DatasetKind::ImageNet), 6);
        assert_eq!(count(ModelKind::ResNet50, DatasetKind::ImageNet), 6);
        assert_eq!(count(ModelKind::Vgg16, DatasetKind::ImageNet), 6);
        assert_eq!(count(ModelKind::InceptionV3, DatasetKind::ImageNet), 6);
        assert_eq!(count(ModelKind::ResNet18, DatasetKind::Cifar10), 5);
        assert_eq!(count(ModelKind::Vgg16, DatasetKind::Cifar10), 5);
        assert_eq!(count(ModelKind::GoogleNet, DatasetKind::Cifar10), 5);
        assert_eq!(count(ModelKind::BertBase, DatasetKind::Cola), 4);
        assert_eq!(count(ModelKind::BertBase, DatasetKind::Mrpc), 1);
        assert_eq!(count(ModelKind::BertBase, DatasetKind::Sst2), 6);
    }

    #[test]
    fn all_templates_have_sane_convergence() {
        for t in table2_catalog() {
            let c = &t.convergence;
            assert!(c.target_accuracy < c.max_accuracy, "{}", t.name());
            assert!(c.initial_loss > c.final_loss, "{}", t.name());
            assert_eq!(c.reference_batch, t.default_batch, "{}", t.name());
            let total = c.total_reference_epochs();
            assert!(
                total > 10.0 && total < 120.0,
                "{}: implausible epoch requirement {total}",
                t.name()
            );
        }
    }

    #[test]
    fn batches_fit_on_a_single_gpu() {
        // The *start* scaling policy squeezes every new job onto one GPU;
        // the default batch must make that possible.
        for t in table2_catalog() {
            let prof = t.model.profile().for_dataset(t.dataset);
            assert!(
                t.default_batch <= prof.max_local_batch,
                "{}: default batch {} over single-GPU limit {}",
                t.name(),
                t.default_batch,
                prof.max_local_batch
            );
        }
    }

    #[test]
    fn bert_has_small_noise_scale() {
        for t in table2_catalog() {
            if t.model == ModelKind::BertBase {
                assert!(t.convergence.noise_scale <= 256.0);
            } else {
                assert!(t.convergence.noise_scale >= 2048.0);
            }
        }
    }

    #[test]
    fn mrpc_name_formats_fractional_k() {
        let cat = table2_catalog();
        let mrpc = cat.iter().find(|t| t.dataset == DatasetKind::Mrpc).unwrap();
        assert_eq!(mrpc.name(), "BERT/MRPC-3.6k");
    }
}
