//! # ones-evo — the online evolutionary search (§3.2)
//!
//! The heart of ONES: a population of candidate schedules (genomes, one
//! `(job, local batch)` slot per GPU — Figure 1) evolved continuously
//! against live cluster state.
//!
//! * [`context`] — [`context::EvoContext`]: everything a generation needs
//!   (job telemetry, batch-size limits `R_j`, Beta progress predictions,
//!   the throughput model) plus shared helpers for batch assignment and
//!   SRUF utilisation estimates.
//! * [`scoring`] — Eq 8 candidate scores and Algorithm 1 probability
//!   sampling: one ρ-sample per job per iteration, shared by every
//!   candidate, smallest score wins.
//! * [`ops`] — the four evolution operations of §3.2.2: *refresh*
//!   (reconcile with live state, free finished GPUs, scale down
//!   over-limit jobs, place new arrivals, fill idle GPUs), *uniform
//!   crossover* (Figure 8), *uniform mutation* (Figure 9) and *reorder*
//!   (Figure 10).
//! * [`search`] — the generation loop of Figure 5: derive `G'_i` from
//!   `G_i`, select the top-K into `G_{i+1}`, surface the best candidate
//!   `S_*`.
//!
//! Candidate scoring inside a generation is embarrassingly parallel and
//! uses rayon when the population is large.
//!
//! Two transparent accelerations ride along (see [`cache`] and the
//! determinism notes in [`search`]): a per-generation [`ThroughputCache`]
//! memoising the pure `(job, placement, batches) → X_j` evaluations, and
//! parallel candidate derivation on per-child forked RNG streams. Both
//! are exact — `S_*` selection is bit-identical with them on or off —
//! and both are observable through [`EvoPerfCounters`].

pub mod cache;
pub mod context;
pub mod ops;
pub mod perfcounters;
pub mod scoring;
pub mod search;

pub use cache::ThroughputCache;
pub use context::EvoContext;
pub use perfcounters::EvoPerfCounters;
pub use scoring::{sample_rhos, score_schedule};
pub use search::{EvoConfig, EvolutionarySearch};
