//! # ones-evo — the online evolutionary search (§3.2)
//!
//! The heart of ONES: a population of candidate schedules (genomes, one
//! `(job, local batch)` slot per GPU — Figure 1) evolved continuously
//! against live cluster state.
//!
//! * [`context`] — [`context::EvoContext`]: everything a generation needs
//!   (job telemetry, batch-size limits `R_j`, Beta progress predictions,
//!   the throughput model) plus shared helpers for batch assignment and
//!   SRUF utilisation estimates.
//! * [`scoring`] — Eq 8 candidate scores and Algorithm 1 probability
//!   sampling: one ρ-sample per job per iteration, shared by every
//!   candidate, smallest score wins.
//! * [`ops`] — the four evolution operations of §3.2.2: *refresh*
//!   (reconcile with live state, free finished GPUs, scale down
//!   over-limit jobs, place new arrivals, fill idle GPUs), *uniform
//!   crossover* (Figure 8), *uniform mutation* (Figure 9) and *reorder*
//!   (Figure 10).
//! * [`search`] — the generation loop of Figure 5: derive `G'_i` from
//!   `G_i`, select the top-K into `G_{i+1}`, surface the best candidate
//!   `S_*`.
//!
//! Candidate scoring inside a generation is embarrassingly parallel and
//! uses rayon when the population is large.
//!
//! Three transparent accelerations ride along (see [`cache`] and the
//! determinism notes in [`search`]): a search-scoped [`ThroughputCache`]
//! memoising the pure `(job, placement shape, batches) → X_j` evaluations
//! across generations (with per-job invalidation on job events), parallel
//! candidate derivation on per-child forked RNG streams, and delta
//! scoring — every op reports the jobs it touched, and each candidate's
//! [`scoring::ScoreCard`] is derived from its parent's by re-resolving
//! only those. All are exact — `S_*` selection is bit-identical with them
//! on or off — and all are observable through [`EvoPerfCounters`].

pub mod cache;
pub mod context;
pub mod ops;
pub mod perfcounters;
pub mod scoring;
pub mod search;

pub use cache::ThroughputCache;
pub use context::EvoContext;
pub use perfcounters::EvoPerfCounters;
pub use scoring::{
    remaining_workloads, sample_rhos, score_schedule, RemainingWorkloads, ScoreCard,
};
pub use search::{EvoConfig, EvolutionarySearch};
