//! SRUF scoring (Eq 8) and Algorithm 1 probability sampling.
//!
//! The paper's objective is *smallest remaining utilisation first*: pick
//! the schedule minimising `Σ_j T_j(B_j) · c_j` (Eq 3) with
//! `T_j = Y_j / X_j` (Eq 5) and `Y_j = Y_processed (1/ρ_j − 1)` (Eq 7).
//! Algorithm 1 draws one ρ_j per job from its Beta prediction, scores every
//! candidate with that shared sample, and selects the smallest score.

//! ## Delta-scoring
//!
//! A child produced by one evolution operation differs from its parent
//! in only a few jobs, and Eq 8 is a per-job sum — so each candidate
//! carries a [`ScoreCard`]: its jobs' ρ-independent utilisation factors
//! `u_j = c_j / X_j` keyed by configuration signature. Deriving a child's
//! card copies the parent's entries for untouched jobs and recomputes
//! only the dirty set, and scoring a generation multiplies the cards by
//! one shared per-job remaining-workload table. Both paths sum terms in
//! ascending job order with identical arithmetic, so delta-scored totals
//! are bit-identical to a full rescore (guarded by proptests).

use crate::context::EvoContext;
use ones_schedcore::{DirtySet, JobRun, JobSignature, Schedule};
use ones_simcore::DetRng;
use ones_workload::JobId;
use std::collections::BTreeMap;

/// Lower clamp on sampled completion fractions: `1/ρ` has a divergent mean
/// when α clamps to 1, and a single astronomically small ρ would otherwise
/// dominate every score in the generation.
pub const MIN_RHO: f64 = 0.005;

/// Utilisation multiplier charged to a placed job whose modelled
/// throughput is zero (e.g. a degenerate placement the perf model cannot
/// serve). Such a job would never finish, so its candidate must lose to
/// any candidate that makes progress — but the penalty stays finite so
/// scores remain totally ordered and comparable.
pub const ZERO_THROUGHPUT_PENALTY: f64 = 1.0e9;

/// Draws one completion-fraction sample per job (Algorithm 1 lines 1–3).
#[must_use]
pub fn sample_rhos(ctx: &EvoContext<'_>, rng: &mut DetRng) -> BTreeMap<JobId, f64> {
    ctx.schedulable()
        .iter()
        .map(|j| {
            let rho = ctx.beta(j.id()).sample(rng).max(MIN_RHO);
            (j.id(), rho)
        })
        .collect()
}

/// Scores one candidate (Eq 8, lower is better):
/// `Σ_{j ∈ running(S)} (Y_processed_j · c_j / X_j) (1/ρ_j − 1)`.
///
/// Jobs absent from `rhos` (e.g. completed between sampling and scoring)
/// contribute nothing.
#[must_use]
pub fn score_schedule(
    ctx: &EvoContext<'_>,
    schedule: &Schedule,
    rhos: &BTreeMap<JobId, f64>,
) -> f64 {
    match ctx.cache {
        Some(cache) => {
            // Cached path: gather every job's configuration signature in
            // ONE pass over the slots, then resolve throughputs by hash
            // lookup. Without the single-pass gather each lookup would
            // recompute an O(gpus) signature and the cache could never
            // beat the model evaluation it replaces.
            let mut total = 0.0;
            for (job, sig) in schedule.job_signatures(ctx.gpus_per_node()) {
                let Some(&rho) = rhos.get(&job) else {
                    continue;
                };
                let x = cache.get_or_insert_with((job, sig.placement, sig.batches), || {
                    let profile = ctx.profile(job);
                    let batches = schedule.local_batches(job);
                    let placement = schedule.placement(job);
                    ctx.view.perf.throughput(&profile, &batches, &placement)
                });
                total += ctx.remaining_workload(job, rho) * utilisation_factor(sig.gpus, x);
            }
            total
        }
        None => {
            let mut total = 0.0;
            for (job, (_batch, gpus)) in schedule.running_jobs() {
                let Some(&rho) = rhos.get(&job) else {
                    continue;
                };
                let x = ctx.throughput_in(schedule, job);
                total += ctx.remaining_workload(job, rho) * utilisation_factor(gpus, x);
            }
            total
        }
    }
}

/// The ρ-independent part of one job's Eq 8 term: `c_j / X_j`, or the
/// [`ZERO_THROUGHPUT_PENALTY`] charge when the job makes no progress.
/// Every scoring path — full or delta — multiplies exactly this factor
/// by the remaining workload, which is what makes the two bit-identical.
#[must_use]
pub fn utilisation_factor(gpus: u32, x: f64) -> f64 {
    if x <= 0.0 {
        // A placed job that makes no progress pins its GPUs forever;
        // charge it as if each held GPU-sample cost PENALTY seconds
        // instead of silently dropping the term (which would *reward*
        // throughput-starving placements).
        f64::from(gpus) * ZERO_THROUGHPUT_PENALTY
    } else {
        f64::from(gpus) / x
    }
}

/// One job's entry in a [`ScoreCard`]: its configuration signatures (for
/// reuse checks) and the ρ-independent utilisation factor `u = c_j/X_j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardEntry {
    /// The placed job.
    pub job: JobId,
    /// Placement-shape hash (see [`ones_schedcore::JobSignature`]).
    pub placement: u64,
    /// Batch-sequence hash.
    pub batches: u64,
    /// GPUs held (`c_j`).
    pub gpus: u32,
    /// `c_j / X_j` (or the zero-throughput penalty charge).
    pub u: f64,
}

/// A candidate's per-job scoring breakdown, entries ascending by job id.
///
/// ρ-samples are redrawn every generation, so raw Eq 8 terms cannot be
/// reused — but `u_j = c_j/X_j` is ρ-independent and survives as long as
/// the job's configuration does. A card outlives its generation: the
/// search keeps each population member's card and derives children's
/// cards from their parents', recomputing only dirty jobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoreCard {
    entries: Vec<CardEntry>,
}

/// The per-generation remaining-workload table `Y_j(ρ_j)`, ascending by
/// job id — computed once from the shared ρ-sample and multiplied into
/// every candidate's card.
#[derive(Debug, Clone, PartialEq)]
pub struct RemainingWorkloads {
    entries: Vec<(JobId, f64)>,
}

/// Evaluates `Y_j = remaining_workload(j, ρ_j)` for every sampled job,
/// in ascending job order (the iteration order of the ρ map).
#[must_use]
pub fn remaining_workloads(
    ctx: &EvoContext<'_>,
    rhos: &BTreeMap<JobId, f64>,
) -> RemainingWorkloads {
    RemainingWorkloads {
        entries: rhos
            .iter()
            .map(|(&job, &rho)| (job, ctx.remaining_workload(job, rho)))
            .collect(),
    }
}

impl ScoreCard {
    /// Builds a card from scratch: one model/cache resolution per placed
    /// job, via the same single-pass signature gather as
    /// [`score_schedule`].
    #[must_use]
    pub fn build(ctx: &EvoContext<'_>, schedule: &Schedule) -> ScoreCard {
        let entries = schedule
            .job_signatures(ctx.gpus_per_node())
            .into_iter()
            .map(|(job, sig)| {
                let x = resolve_throughput(ctx, schedule, job, &sig);
                CardEntry {
                    job,
                    placement: sig.placement,
                    batches: sig.batches,
                    gpus: sig.gpus,
                    u: utilisation_factor(sig.gpus, x),
                }
            })
            .collect();
        ScoreCard { entries }
    }

    /// Derives `child`'s card from its parent's: entries of jobs outside
    /// `dirty` are copied verbatim, dirty jobs are re-resolved against
    /// `child`. When `layout` is given (the child was reordered,
    /// [`Schedule::reordered_with_layout`]), every job's new placement
    /// shape comes from its contiguous block in `O(1)`; untouched jobs
    /// whose shape changed under packing keep their batch hash (reorder
    /// preserves batch sequences) and re-resolve only the throughput.
    ///
    /// `dirty` must contain every job whose configuration differs from
    /// the parent's (an over-approximation is safe); with `layout` it
    /// must also hold that `layout` covers exactly `child`'s placed jobs.
    #[must_use]
    pub fn derive(
        ctx: &EvoContext<'_>,
        child: &Schedule,
        parent: &ScoreCard,
        dirty: &DirtySet,
        layout: Option<&[JobRun]>,
    ) -> ScoreCard {
        let gpn = ctx.gpus_per_node();
        let mut entries: Vec<CardEntry> = match layout {
            Some(runs) => runs
                .iter()
                .map(|run| {
                    let placement = JobSignature::contiguous_shape_hash(run.start, run.len, gpn);
                    if !dirty.contains(&run.job) {
                        if let Some(pe) = parent.find(run.job) {
                            debug_assert_eq!(pe.gpus, run.len, "clean job changed size");
                            if pe.placement == placement {
                                return *pe;
                            }
                            // Packing changed the job's shape but not its
                            // batches: the batch hash carries over and only
                            // the throughput is re-resolved (usually a hit —
                            // some earlier candidate packed it the same way).
                            let sig = JobSignature {
                                placement,
                                batches: pe.batches,
                                gpus: pe.gpus,
                            };
                            let x = resolve_throughput_run(ctx, child, run, &sig);
                            return CardEntry {
                                job: run.job,
                                placement,
                                batches: pe.batches,
                                gpus: pe.gpus,
                                u: utilisation_factor(pe.gpus, x),
                            };
                        }
                    }
                    let batches = JobSignature::batches_hash(
                        child.slots()[run.start as usize..(run.start + run.len) as usize]
                            .iter()
                            .map(|s| s.expect("layout block is dense").local_batch),
                    );
                    let sig = JobSignature {
                        placement,
                        batches,
                        gpus: run.len,
                    };
                    let x = resolve_throughput_run(ctx, child, run, &sig);
                    CardEntry {
                        job: run.job,
                        placement,
                        batches,
                        gpus: run.len,
                        u: utilisation_factor(run.len, x),
                    }
                })
                .collect(),
            None => {
                // No reorder: untouched jobs keep identical slots, so
                // their parent entries transfer; dirty jobs re-walk the
                // child's slots individually.
                let mut out: Vec<CardEntry> = parent
                    .entries
                    .iter()
                    .filter(|e| !dirty.contains(&e.job))
                    .copied()
                    .collect();
                for &job in dirty {
                    if let Some(sig) = child.job_signature(job, gpn) {
                        let x = resolve_throughput(ctx, child, job, &sig);
                        out.push(CardEntry {
                            job,
                            placement: sig.placement,
                            batches: sig.batches,
                            gpus: sig.gpus,
                            u: utilisation_factor(sig.gpus, x),
                        });
                    }
                }
                out
            }
        };
        entries.sort_unstable_by_key(|e| e.job);
        ScoreCard { entries }
    }

    fn find(&self, job: JobId) -> Option<&CardEntry> {
        self.entries
            .binary_search_by_key(&job, |e| e.job)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Number of placed jobs on the card.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the card covers no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The card's entries, ascending by job id.
    #[must_use]
    pub fn entries(&self) -> &[CardEntry] {
        &self.entries
    }

    /// Eq 8 total: `Σ_j Y_j · u_j` over jobs present in both the card and
    /// the workload table, in ascending job order — the same terms in the
    /// same order as [`score_schedule`], hence bit-identical.
    #[must_use]
    pub fn score(&self, remaining: &RemainingWorkloads) -> f64 {
        // Both sides are ascending by job id: lockstep merge.
        let mut total = 0.0;
        let mut ri = 0usize;
        let rem = &remaining.entries;
        for e in &self.entries {
            while ri < rem.len() && rem[ri].0 < e.job {
                ri += 1;
            }
            if ri < rem.len() && rem[ri].0 == e.job {
                total += rem[ri].1 * e.u;
            }
        }
        total
    }
}

/// Resolves one job's throughput for a known signature, via the cache
/// when installed (the same keys [`score_schedule`] uses).
fn resolve_throughput(
    ctx: &EvoContext<'_>,
    schedule: &Schedule,
    job: JobId,
    sig: &JobSignature,
) -> f64 {
    let compute = || {
        let profile = ctx.profile(job);
        let batches = schedule.local_batches(job);
        let placement = schedule.placement(job);
        ctx.view.perf.throughput(&profile, &batches, &placement)
    };
    match ctx.cache {
        Some(cache) => cache.get_or_insert_with((job, sig.placement, sig.batches), compute),
        None => compute(),
    }
}

/// [`resolve_throughput`] for a job known to occupy one contiguous block:
/// the miss path reads only the block's slots instead of re-walking the
/// whole schedule.
fn resolve_throughput_run(
    ctx: &EvoContext<'_>,
    child: &Schedule,
    run: &JobRun,
    sig: &JobSignature,
) -> f64 {
    let compute = || {
        let profile = ctx.profile(run.job);
        let batches: Vec<u32> = child.slots()[run.start as usize..(run.start + run.len) as usize]
            .iter()
            .map(|s| s.expect("layout block is dense").local_batch)
            .collect();
        let placement = ones_cluster::Placement::contiguous(run.start, run.len);
        ctx.view.perf.throughput(&profile, &batches, &placement)
    };
    match ctx.cache {
        Some(cache) => cache.get_or_insert_with((run.job, sig.placement, sig.batches), compute),
        None => compute(),
    }
}

/// Algorithm 1: scores every candidate against one shared ρ-sample and
/// returns the index of the best (smallest-score) candidate.
///
/// Ties break to the lowest index, so a deterministic candidate order
/// yields a deterministic selection. NaN scores never panic and never
/// win: [`argmin`] ranks them after every real score.
///
/// # Panics
/// Panics if `candidates` is empty.
#[must_use]
pub fn select_best(ctx: &EvoContext<'_>, candidates: &[Schedule], rng: &mut DetRng) -> usize {
    assert!(!candidates.is_empty(), "Algorithm 1 needs candidates");
    let rhos = sample_rhos(ctx, rng);
    let scores = score_all(ctx, candidates, &rhos);
    argmin(&scores).expect("non-empty candidates")
}

/// Index of the smallest score under [`f64::total_cmp`], first of equal
/// minima. `total_cmp` orders every NaN above (for the NaN bit patterns
/// produced by arithmetic) every finite value, so a NaN score loses to
/// any real score instead of poisoning the comparison.
#[must_use]
pub fn argmin(scores: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, s) in scores.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) if s.total_cmp(&scores[b]) == std::cmp::Ordering::Less => best = Some(i),
            Some(_) => {}
        }
    }
    best
}

/// Scores all candidates with a shared ρ-sample, in parallel for large
/// populations (the scheduler's hot loop; see the hpc guides on
/// `par_iter`).
#[must_use]
pub fn score_all(
    ctx: &EvoContext<'_>,
    candidates: &[Schedule],
    rhos: &BTreeMap<JobId, f64>,
) -> Vec<f64> {
    use rayon::prelude::*;
    if candidates.len() >= 32 {
        candidates
            .par_iter()
            .map(|s| score_schedule(ctx, s, rhos))
            .collect()
    } else {
        candidates
            .iter()
            .map(|s| score_schedule(ctx, s, rhos))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::testutil::*;
    use ones_cluster::GpuId;

    #[test]
    fn empty_schedule_scores_zero() {
        let fx = Fixture::new(2);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut rng = DetRng::seed(1);
        let rhos = sample_rhos(&c, &mut rng);
        assert_eq!(score_schedule(&c, &Schedule::empty(8), &rhos), 0.0);
    }

    #[test]
    fn rho_samples_cover_all_jobs_and_are_clamped() {
        let fx = Fixture::new(5);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut rng = DetRng::seed(2);
        let rhos = sample_rhos(&c, &mut rng);
        assert_eq!(rhos.len(), 5);
        for &r in rhos.values() {
            assert!((MIN_RHO..1.0).contains(&r));
        }
    }

    #[test]
    fn nearly_done_job_scores_below_fresh_job() {
        // Same placement; the job predicted nearly complete has a far
        // smaller remaining utilisation (SRUF prefers it).
        let mut fx = Fixture::new(2);
        fx.start_job(0, 30);
        fx.start_job(1, 30);
        fx.betas
            .insert(ones_workload::JobId(0), ones_stats::Beta::new(30.0, 1.0)); // almost done
        fx.betas
            .insert(ones_workload::JobId(1), ones_stats::Beta::new(1.0, 30.0)); // barely started
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut rng = DetRng::seed(3);
        let rhos = sample_rhos(&c, &mut rng);

        let mut near = Schedule::empty(8);
        near.assign(GpuId(0), ones_workload::JobId(0), 256);
        let mut fresh = Schedule::empty(8);
        fresh.assign(GpuId(0), ones_workload::JobId(1), 256);

        assert!(
            score_schedule(&c, &near, &rhos) < score_schedule(&c, &fresh, &rhos),
            "SRUF must prefer the nearly-finished job"
        );
    }

    #[test]
    fn select_best_picks_lowest_score() {
        let mut fx = Fixture::new(2);
        fx.start_job(0, 30);
        fx.start_job(1, 30);
        fx.betas
            .insert(ones_workload::JobId(0), ones_stats::Beta::new(50.0, 1.0));
        fx.betas
            .insert(ones_workload::JobId(1), ones_stats::Beta::new(1.0, 50.0));
        let view = fx.view();
        let c = ctx(&fx, &view);

        let mut near = Schedule::empty(8);
        near.assign(GpuId(0), ones_workload::JobId(0), 256);
        let mut fresh = Schedule::empty(8);
        fresh.assign(GpuId(0), ones_workload::JobId(1), 256);

        // The near-complete-job schedule should win under almost any sample.
        let mut wins = 0;
        for seed in 0..20 {
            let mut rng = DetRng::seed(seed);
            if select_best(&c, &[fresh.clone(), near.clone()], &mut rng) == 1 {
                wins += 1;
            }
        }
        assert!(wins >= 16, "near-complete won only {wins}/20");
    }

    #[test]
    fn more_gpus_for_same_job_can_cost_more_utilisation() {
        // SRUF (vs SRPT) exists because T·c grows when extra GPUs give
        // sub-linear speedup. An 8-GPU (2-node) allocation must score worse
        // than 1 GPU for a communication-bound small job.
        let mut fx = Fixture::new(1);
        fx.start_job(0, 10);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut rng = DetRng::seed(7);
        let rhos = sample_rhos(&c, &mut rng);

        let mut one = Schedule::empty(8);
        c.assign_evenly(&mut one, ones_workload::JobId(0), &[GpuId(0)]);
        let mut eight = Schedule::empty(8);
        c.assign_evenly(
            &mut eight,
            ones_workload::JobId(0),
            &(0..8).map(GpuId).collect::<Vec<_>>(),
        );
        let s1 = score_schedule(&c, &one, &rhos);
        let s8 = score_schedule(&c, &eight, &rhos);
        assert!(
            s8 > s1,
            "8 GPUs at fixed batch should waste utilisation: s1={s1}, s8={s8}"
        );
    }

    #[test]
    fn argmin_ranks_nan_last_and_breaks_ties_low() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f64::NAN]), Some(0));
        assert_eq!(argmin(&[f64::NAN, 1.0, 0.5]), Some(2));
        assert_eq!(argmin(&[f64::INFINITY, f64::NAN]), Some(0));
        // First of equal minima wins.
        assert_eq!(argmin(&[2.0, 1.0, 1.0, 3.0]), Some(1));
        assert_eq!(argmin(&[0.0, 0.0, 0.0]), Some(0));
    }

    #[test]
    fn identical_candidates_tie_to_lowest_index() {
        let mut fx = Fixture::new(2);
        fx.start_job(0, 10);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        s.assign(GpuId(0), ones_workload::JobId(0), 256);
        let clones = vec![s.clone(), s.clone(), s.clone(), s];
        for seed in 0..10 {
            let mut rng = DetRng::seed(seed);
            assert_eq!(select_best(&c, &clones, &mut rng), 0);
        }
    }

    #[test]
    fn nan_throughput_candidate_loses_without_panicking() {
        // Regression: selection used to unwrap partial_cmp and panicked
        // the scheduler on any NaN score. Inject a NaN throughput via the
        // memo table (the perf model never returns NaN for legal input).
        let mut fx = Fixture::new(2);
        fx.start_job(0, 5);
        fx.start_job(1, 5);
        let view = fx.view();
        let cache = crate::cache::ThroughputCache::new();
        let c = ctx(&fx, &view).with_cache(&cache);

        let mut healthy = Schedule::empty(8);
        healthy.assign(GpuId(0), ones_workload::JobId(0), 256);
        let mut poisoned = Schedule::empty(8);
        poisoned.assign(GpuId(0), ones_workload::JobId(1), 256);
        let sig = poisoned
            .job_signature(ones_workload::JobId(1), c.gpus_per_node())
            .unwrap();
        cache.get_or_insert_with(
            (ones_workload::JobId(1), sig.placement, sig.batches),
            || f64::NAN,
        );

        for seed in 0..10 {
            let mut rng = DetRng::seed(seed);
            assert_eq!(
                select_best(&c, &[poisoned.clone(), healthy.clone()], &mut rng),
                1,
                "NaN-scored candidate must lose"
            );
        }
    }

    #[test]
    fn zero_throughput_candidates_lose() {
        // A placed job with zero modelled throughput used to contribute
        // nothing to its candidate's score, making GPU-wasting placements
        // look cheap. The penalty must make such candidates lose.
        let mut fx = Fixture::new(2);
        fx.start_job(0, 5);
        fx.start_job(1, 5);
        let view = fx.view();
        let cache = crate::cache::ThroughputCache::new();
        let c = ctx(&fx, &view).with_cache(&cache);

        let mut healthy = Schedule::empty(8);
        healthy.assign(GpuId(0), ones_workload::JobId(0), 256);
        let mut starved = Schedule::empty(8);
        starved.assign(GpuId(0), ones_workload::JobId(1), 256);
        let sig = starved
            .job_signature(ones_workload::JobId(1), c.gpus_per_node())
            .unwrap();
        cache.get_or_insert_with(
            (ones_workload::JobId(1), sig.placement, sig.batches),
            || 0.0,
        );

        let mut rng = DetRng::seed(4);
        let rhos = sample_rhos(&c, &mut rng);
        let s_healthy = score_schedule(&c, &healthy, &rhos);
        let s_starved = score_schedule(&c, &starved, &rhos);
        assert!(s_starved.is_finite(), "penalty must keep scores finite");
        assert!(
            s_starved > s_healthy * 1.0e6,
            "starved candidate must be crushed: {s_starved} vs {s_healthy}"
        );
        assert_eq!(argmin(&[s_starved, s_healthy]), Some(1));
    }

    #[test]
    fn score_all_matches_sequential() {
        let mut fx = Fixture::new(4);
        for i in 0..4 {
            fx.start_job(i, 5);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut rng = DetRng::seed(11);
        let rhos = sample_rhos(&c, &mut rng);
        // 40 candidates to exercise the parallel path.
        let mut candidates = Vec::new();
        for k in 0..40u32 {
            let mut s = Schedule::empty(8);
            s.assign(GpuId(k % 8), ones_workload::JobId(u64::from(k % 4)), 128);
            candidates.push(s);
        }
        let par = score_all(&c, &candidates, &rhos);
        let seq: Vec<f64> = candidates
            .iter()
            .map(|s| score_schedule(&c, s, &rhos))
            .collect();
        assert_eq!(par, seq);
    }
}
