//! The generation loop (Figure 5).
//!
//! `G_0` → derive `G'_i` (refresh + crossover + mutation + reorder) →
//! select the top-K by Algorithm 1 scoring → `G_{i+1}`, surfacing the best
//! candidate `S_*` for deployment. The population persists across scheduler
//! invocations, which is what makes the search *online*: every new event
//! (arrival, epoch end, completion) evolves the existing population against
//! fresh telemetry instead of re-planning from scratch.
//!
//! # Determinism under parallelism
//!
//! Candidate derivation is embarrassingly parallel, but a shared mutable
//! RNG would make parallel results order-dependent. Instead every
//! generation derives a *base* stream `rng.fork_idx("gen", generation)`
//! and every unit of work gets its own child stream split from it by a
//! fixed label and index:
//!
//! | work unit                 | stream                               |
//! |---------------------------|--------------------------------------|
//! | refresh of member *i*     | `base.fork_idx("refresh", i)`        |
//! | crossover of pair *p*     | `base.fork_idx("cross", p)`          |
//! | parent selection          | `base.fork("select")` (sequential)   |
//! | mutation of mutant *m*    | `base.fork_idx("mutate", m)`         |
//! | legalise of child *k*     | `base.fork_idx("legalise", k)`       |
//! | selection ρ-sample        | `base.fork("rhos")`                  |
//!
//! Children are indexed in a fixed documented order: the two crossover
//! children of pair *p* are `2p` and `2p+1`, mutant *m* is
//! `2·crossover_pairs + m`. Because no stream is shared, executing the
//! work sequentially or across threads is bit-identical — verified by
//! `parallel_matches_sequential` below and the property tests in
//! `tests/determinism_props.rs`.

use crate::cache::ThroughputCache;
use crate::context::EvoContext;
use crate::ops;
use crate::perfcounters::EvoPerfCounters;
use crate::scoring;
use ones_schedcore::Schedule;
use ones_simcore::DetRng;
use ones_workload::JobId;
use std::time::Instant;

/// Evolutionary search tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvoConfig {
    /// Population size K. The paper suggests K = |C| (one candidate per
    /// GPU).
    pub population: usize,
    /// Mutation rate θ: per-job preemption probability in the uniform
    /// mutation operation.
    pub mutation_rate: f64,
    /// Crossover pairs drawn per generation (the paper uses K pairs).
    pub crossover_pairs: usize,
    /// Apply the *reorder* operation (Figure 10) to derived candidates.
    /// Disabled only by the ablation harness.
    pub reorder: bool,
    /// Derive candidates across threads (see the module docs on
    /// determinism; results are bit-identical either way).
    pub parallel_derive: bool,
    /// Memoise throughput evaluations in a fresh per-generation
    /// [`ThroughputCache`]. Exact — scores are unchanged.
    pub use_cache: bool,
}

impl EvoConfig {
    /// The paper's suggested configuration for a cluster of `gpus` devices.
    #[must_use]
    pub fn for_cluster(gpus: u32) -> Self {
        EvoConfig {
            population: gpus as usize,
            mutation_rate: 0.2,
            crossover_pairs: gpus as usize,
            reorder: true,
            parallel_derive: true,
            use_cache: true,
        }
    }
}

/// Maps `f` over `items`, across threads when `parallel` (order is
/// preserved either way, and `f` draws no shared state, so the results
/// are identical).
fn map_maybe_parallel<T, U, F>(parallel: bool, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if parallel {
        use rayon::prelude::*;
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

/// Legalises a derived candidate: cap batches at `R_j`, fill idle GPUs
/// so the Eq 4 full-utilisation constraint holds, and optionally reorder
/// for locality (Figure 10).
fn legalise(ctx: &EvoContext<'_>, mut child: Schedule, mut rng: DetRng, reorder: bool) -> Schedule {
    ctx.enforce_limits(&mut child);
    ops::fill_idle(ctx, &mut child, &mut rng);
    if reorder {
        child.reordered()
    } else {
        child
    }
}

/// The persistent online evolutionary search.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    config: EvoConfig,
    population: Vec<Schedule>,
    rng: DetRng,
    generations: u64,
    counters: EvoPerfCounters,
}

impl EvolutionarySearch {
    /// Creates a search with an empty population (initialised lazily on the
    /// first generation, when jobs exist).
    #[must_use]
    pub fn new(config: EvoConfig, rng: DetRng) -> Self {
        assert!(config.population > 0, "population must be positive");
        EvolutionarySearch {
            config,
            population: Vec::new(),
            rng,
            generations: 0,
            counters: EvoPerfCounters::default(),
        }
    }

    /// Generations evolved so far.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Current tunables.
    #[must_use]
    pub fn config(&self) -> &EvoConfig {
        &self.config
    }

    /// Swaps in new tunables mid-search (ones-d live reconfiguration).
    /// The population carries over; a shrunken `population` size takes
    /// effect at the next generation's selection.
    ///
    /// # Panics
    /// Panics if `config.population` is zero.
    pub fn set_config(&mut self, config: EvoConfig) {
        assert!(config.population > 0, "population must be positive");
        self.config = config;
    }

    /// Current population (empty before the first generation).
    #[must_use]
    pub fn population(&self) -> &[Schedule] {
        &self.population
    }

    /// Performance counters accumulated across all generations.
    #[must_use]
    pub fn perf_counters(&self) -> EvoPerfCounters {
        self.counters
    }

    /// Runs one generation and returns the best candidate `S_*`.
    ///
    /// With no schedulable jobs this returns the empty schedule. See the
    /// module docs for the per-phase RNG stream layout that makes the
    /// parallel and sequential paths bit-identical.
    pub fn generation(&mut self, ctx: &EvoContext<'_>) -> Schedule {
        let gpus = ctx.view.spec.total_gpus();
        if ctx.schedulable().is_empty() {
            self.population.clear();
            return Schedule::empty(gpus);
        }
        self.generations += 1;
        let counters_before = self.counters;
        self.counters.generations += 1;
        let mut gen_span = ones_obs::span!("evo", "generation");
        gen_span.arg("generation", self.generations);

        // Generation-scoped throughput memoisation: the view is frozen for
        // the duration of this call, so every (job, placement, batches)
        // evaluation is pure and cacheable. A caller-installed cache is
        // kept when ours is disabled.
        let cache = ThroughputCache::new();
        let gctx = if self.config.use_cache {
            ctx.with_cache(&cache)
        } else {
            *ctx
        };

        // Base stream for this generation; every work unit below forks its
        // own child stream, so no RNG state is shared across units.
        let base = self.rng.fork_idx("gen", self.generations);
        let parallel = self.config.parallel_derive;

        if self.population.is_empty() {
            self.initialize(&gctx);
        }

        // Refresh every member against live state (this is also where new
        // arrivals enter every candidate).
        let t_refresh = Instant::now();
        let member_idx: Vec<usize> = (0..self.population.len()).collect();
        let population = &self.population;
        let refreshed: Vec<Schedule> = map_maybe_parallel(parallel, &member_idx, |&i| {
            ops::refresh(
                &gctx,
                &population[i],
                &mut base.fork_idx("refresh", i as u64),
            )
        });
        self.counters.refresh_nanos += t_refresh.elapsed().as_nanos() as u64;

        // Derive children: K crossover pairs -> 2K children, K mutants.
        // Parent picks draw from one sequential stream (cheap) so the
        // expensive derivation below is free of shared state. Every child
        // is legalised in the same task: cap batches at R_j, fill idle
        // GPUs so the Eq 4 full-utilisation constraint holds (a child
        // that merely dropped a job would otherwise score better by
        // having fewer SRUF terms), and reorder for locality (Figure 10).
        let t_derive = Instant::now();
        let mut select = base.fork("select");
        let pairs: Vec<(usize, usize)> = (0..self.config.crossover_pairs)
            .map(|_| (select.index(refreshed.len()), select.index(refreshed.len())))
            .collect();
        let parents: Vec<usize> = (0..self.config.population)
            .map(|_| select.index(refreshed.len()))
            .collect();
        let reorder = self.config.reorder;
        let mutation_rate = self.config.mutation_rate;
        let crossover_pairs = self.config.crossover_pairs;

        let pair_idx: Vec<usize> = (0..pairs.len()).collect();
        let crossed: Vec<(Schedule, Schedule)> = map_maybe_parallel(parallel, &pair_idx, |&p| {
            let (ai, bi) = pairs[p];
            let (c1, c2) = ops::crossover(
                &refreshed[ai],
                &refreshed[bi],
                &mut base.fork_idx("cross", p as u64),
            );
            (
                legalise(&gctx, c1, base.fork_idx("legalise", 2 * p as u64), reorder),
                legalise(
                    &gctx,
                    c2,
                    base.fork_idx("legalise", 2 * p as u64 + 1),
                    reorder,
                ),
            )
        });
        let mutant_idx: Vec<usize> = (0..parents.len()).collect();
        let mutants: Vec<Schedule> = map_maybe_parallel(parallel, &mutant_idx, |&m| {
            let child = ops::mutate(
                &gctx,
                &refreshed[parents[m]],
                mutation_rate,
                &mut base.fork_idx("mutate", m as u64),
            );
            legalise(
                &gctx,
                child,
                base.fork_idx("legalise", (2 * crossover_pairs + m) as u64),
                reorder,
            )
        });
        self.counters.derive_nanos += t_derive.elapsed().as_nanos() as u64;

        // Pool in the documented order: survivors, crossover children
        // (pair-major), mutants.
        let mut pool: Vec<Schedule> = refreshed;
        for (c1, c2) in crossed {
            pool.push(c1);
            pool.push(c2);
        }
        pool.extend(mutants);

        // Selection: Algorithm 1 sampling, keep the K best. The sort is
        // stable under total_cmp, so equal scores keep pool order and the
        // lowest-index candidate wins ties deterministically; NaN scores
        // sort last instead of panicking.
        let t_score = Instant::now();
        let rhos = scoring::sample_rhos(&gctx, &mut base.fork("rhos"));
        let scores = scoring::score_all(&gctx, &pool, &rhos);
        self.counters.candidates_scored += pool.len() as u64;
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        self.counters.score_nanos += t_score.elapsed().as_nanos() as u64;
        if self.config.use_cache {
            self.counters.cache_hits += cache.hits();
            self.counters.cache_misses += cache.misses();
        }
        gen_span.arg("pool", pool.len());
        self.counters.forward_delta_to_registry(&counters_before);
        let best = pool[order[0]].clone();
        self.population = order
            .into_iter()
            .take(self.config.population)
            .map(|i| pool[i].clone())
            .collect();
        best
    }

    /// Initial population `G_0`: each candidate assigns a random job to
    /// each GPU (then legalised), per §3.2.2 *Initialization*.
    fn initialize(&mut self, ctx: &EvoContext<'_>) {
        let jobs: Vec<JobId> = ctx.schedulable().iter().map(|j| j.id()).collect();
        let gpus = ctx.view.spec.total_gpus();
        self.population = (0..self.config.population)
            .map(|_| {
                let mut s = Schedule::empty(gpus);
                for g in ctx.view.spec.all_gpus() {
                    let job = jobs[self.rng.index(jobs.len())];
                    let b = ctx.limit(job).min(ctx.profile(job).max_local_batch).max(1);
                    s.assign(g, job, b);
                }
                ctx.enforce_limits(&mut s);
                s.reordered()
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::testutil::*;
    use ones_schedcore::JobPhase;

    fn search(gpus: u32) -> EvolutionarySearch {
        EvolutionarySearch::new(EvoConfig::for_cluster(gpus), DetRng::seed(17))
    }

    #[test]
    fn empty_cluster_returns_empty_schedule() {
        let fx = Fixture::new(1);
        let mut fx = fx;
        fx.jobs.get_mut(&JobId(0)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let best = s.generation(&c);
        assert_eq!(best.idle_count(), 8);
        assert!(s.population().is_empty());
    }

    #[test]
    fn generation_places_all_jobs_when_cluster_is_large_enough() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let best = s.generation(&c);
        for i in 0..4 {
            assert!(best.is_running(JobId(i)), "job {i} missing from S_*");
            assert!(best.global_batch(JobId(i)) <= c.limit(JobId(i)));
        }
        assert_eq!(s.population().len(), 8);
        assert_eq!(s.generations(), 1);
    }

    #[test]
    fn population_survives_and_improves_across_generations() {
        let mut fx = Fixture::new(6);
        for i in 0..6 {
            fx.start_job(i, (i * 5) as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let rhos_rng = &mut DetRng::seed(99);
        let rhos = crate::scoring::sample_rhos(&c, rhos_rng);
        let first = s.generation(&c);
        let first_score = crate::scoring::score_schedule(&c, &first, &rhos);
        let mut last_score = first_score;
        for _ in 0..5 {
            let best = s.generation(&c);
            last_score = crate::scoring::score_schedule(&c, &best, &rhos);
        }
        // Evolution should not make the fixed-sample score drastically
        // worse; usually it improves.
        assert!(
            last_score <= first_score * 1.5,
            "search diverged: {first_score} -> {last_score}"
        );
        assert_eq!(s.generations(), 6);
    }

    #[test]
    fn every_member_respects_limits_and_memory() {
        let mut fx = Fixture::new(5);
        for i in 0..5 {
            fx.limits.insert(JobId(i), 64 << i);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        for _ in 0..4 {
            let _ = s.generation(&c);
        }
        for member in s.population() {
            member
                .validate(&fx.spec, |j| {
                    fx.jobs
                        .get(&j)
                        .map_or(0, |st| st.spec.profile().max_local_batch)
                })
                .expect("member violates memory limits");
            for (job, (batch, _)) in member.running_jobs() {
                assert!(
                    batch <= c.limit(job),
                    "{job} over limit: {batch} > {}",
                    c.limit(job)
                );
            }
        }
    }

    #[test]
    fn completed_jobs_leave_the_population() {
        let mut fx = Fixture::new(3);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let _ = s.generation(&c);
        let _ = view;
        // Complete job 1 and evolve again.
        fx.jobs.get_mut(&JobId(1)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let best = s.generation(&c);
        assert!(!best.is_running(JobId(1)));
        for member in s.population() {
            assert!(!member.is_running(JobId(1)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s1 = search(8);
        let mut s2 = search(8);
        for _ in 0..3 {
            assert_eq!(s1.generation(&c), s2.generation(&c));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut fx = Fixture::new(5);
        for i in 0..5 {
            fx.start_job(i, i as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut seq_cfg = EvoConfig::for_cluster(8);
        seq_cfg.parallel_derive = false;
        let mut par_cfg = EvoConfig::for_cluster(8);
        par_cfg.parallel_derive = true;
        let mut seq = EvolutionarySearch::new(seq_cfg, DetRng::seed(17));
        let mut par = EvolutionarySearch::new(par_cfg, DetRng::seed(17));
        for g in 0..4 {
            assert_eq!(
                seq.generation(&c),
                par.generation(&c),
                "S_* diverged at generation {g}"
            );
            assert_eq!(seq.population(), par.population());
        }
    }

    #[test]
    fn cache_and_parallel_do_not_change_selection() {
        let mut fx = Fixture::new(6);
        for i in 0..6 {
            fx.start_job(i, (i * 3) as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut plain_cfg = EvoConfig::for_cluster(8);
        plain_cfg.parallel_derive = false;
        plain_cfg.use_cache = false;
        let full_cfg = EvoConfig::for_cluster(8);
        assert!(full_cfg.parallel_derive && full_cfg.use_cache);
        let mut plain = EvolutionarySearch::new(plain_cfg, DetRng::seed(23));
        let mut full = EvolutionarySearch::new(full_cfg, DetRng::seed(23));
        for g in 0..4 {
            assert_eq!(
                plain.generation(&c),
                full.generation(&c),
                "S_* diverged at generation {g}"
            );
            assert_eq!(plain.population(), full.population());
        }
        let counters = full.perf_counters();
        assert_eq!(counters.generations, 4);
        assert!(counters.candidates_scored > 0);
        assert!(counters.cache_hits > 0, "cache never hit");
        assert_eq!(plain.perf_counters().cache_hits, 0);
    }

    use ones_simcore::DetRng;
    use ones_workload::JobId;
}
