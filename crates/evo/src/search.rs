//! The generation loop (Figure 5).
//!
//! `G_0` → derive `G'_i` (refresh + crossover + mutation + reorder) →
//! select the top-K by Algorithm 1 scoring → `G_{i+1}`, surfacing the best
//! candidate `S_*` for deployment. The population persists across scheduler
//! invocations, which is what makes the search *online*: every new event
//! (arrival, epoch end, completion) evolves the existing population against
//! fresh telemetry instead of re-planning from scratch.

use crate::context::EvoContext;
use crate::ops;
use crate::scoring;
use ones_schedcore::Schedule;
use ones_simcore::DetRng;
use ones_workload::JobId;

/// Evolutionary search tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvoConfig {
    /// Population size K. The paper suggests K = |C| (one candidate per
    /// GPU).
    pub population: usize,
    /// Mutation rate θ: per-job preemption probability in the uniform
    /// mutation operation.
    pub mutation_rate: f64,
    /// Crossover pairs drawn per generation (the paper uses K pairs).
    pub crossover_pairs: usize,
    /// Apply the *reorder* operation (Figure 10) to derived candidates.
    /// Disabled only by the ablation harness.
    pub reorder: bool,
}

impl EvoConfig {
    /// The paper's suggested configuration for a cluster of `gpus` devices.
    #[must_use]
    pub fn for_cluster(gpus: u32) -> Self {
        EvoConfig {
            population: gpus as usize,
            mutation_rate: 0.2,
            crossover_pairs: gpus as usize,
            reorder: true,
        }
    }
}

/// The persistent online evolutionary search.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    config: EvoConfig,
    population: Vec<Schedule>,
    rng: DetRng,
    generations: u64,
}

impl EvolutionarySearch {
    /// Creates a search with an empty population (initialised lazily on the
    /// first generation, when jobs exist).
    #[must_use]
    pub fn new(config: EvoConfig, rng: DetRng) -> Self {
        assert!(config.population > 0, "population must be positive");
        EvolutionarySearch {
            config,
            population: Vec::new(),
            rng,
            generations: 0,
        }
    }

    /// Generations evolved so far.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Current population (empty before the first generation).
    #[must_use]
    pub fn population(&self) -> &[Schedule] {
        &self.population
    }

    /// Runs one generation and returns the best candidate `S_*`.
    ///
    /// With no schedulable jobs this returns the empty schedule.
    pub fn generation(&mut self, ctx: &EvoContext<'_>) -> Schedule {
        let gpus = ctx.view.spec.total_gpus();
        if ctx.schedulable().is_empty() {
            self.population.clear();
            return Schedule::empty(gpus);
        }
        self.generations += 1;
        if self.population.is_empty() {
            self.initialize(ctx);
        }

        // Refresh every member against live state (this is also where new
        // arrivals enter every candidate).
        let refreshed: Vec<Schedule> = self
            .population
            .iter()
            .map(|s| ops::refresh(ctx, s, &mut self.rng))
            .collect();

        // Derive children: K crossover pairs -> 2K children, K mutants.
        let mut children: Vec<Schedule> = Vec::with_capacity(self.config.crossover_pairs * 3);
        for _ in 0..self.config.crossover_pairs {
            let a = &refreshed[self.rng.index(refreshed.len())];
            let b = &refreshed[self.rng.index(refreshed.len())];
            let (c1, c2) = ops::crossover(a, b, &mut self.rng);
            children.push(c1);
            children.push(c2);
        }
        for _ in 0..self.config.population {
            let parent = &refreshed[self.rng.index(refreshed.len())];
            children.push(ops::mutate(ctx, parent, self.config.mutation_rate, &mut self.rng));
        }

        // Legalise every candidate: cap batches at R_j, fill idle GPUs so
        // the Eq 4 full-utilisation constraint holds (a child that merely
        // dropped a job would otherwise score better by having fewer SRUF
        // terms), and reorder for locality (Figure 10).
        let mut pool: Vec<Schedule> = refreshed;
        for mut c in children {
            ctx.enforce_limits(&mut c);
            ops::fill_idle(ctx, &mut c, &mut self.rng);
            pool.push(if self.config.reorder { c.reordered() } else { c });
        }

        // Selection: Algorithm 1 sampling, keep the K best.
        let rhos = scoring::sample_rhos(ctx, &mut self.rng);
        let scores = scoring::score_all(ctx, &pool, &rhos);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("scores are finite")
        });
        let best = pool[order[0]].clone();
        self.population = order
            .into_iter()
            .take(self.config.population)
            .map(|i| pool[i].clone())
            .collect();
        best
    }

    /// Initial population `G_0`: each candidate assigns a random job to
    /// each GPU (then legalised), per §3.2.2 *Initialization*.
    fn initialize(&mut self, ctx: &EvoContext<'_>) {
        let jobs: Vec<JobId> = ctx.schedulable().iter().map(|j| j.id()).collect();
        let gpus = ctx.view.spec.total_gpus();
        self.population = (0..self.config.population)
            .map(|_| {
                let mut s = Schedule::empty(gpus);
                for g in ctx.view.spec.all_gpus() {
                    let job = jobs[self.rng.index(jobs.len())];
                    let b = ctx
                        .limit(job)
                        .min(ctx.profile(job).max_local_batch)
                        .max(1);
                    s.assign(g, job, b);
                }
                ctx.enforce_limits(&mut s);
                s.reordered()
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::testutil::*;
    use ones_schedcore::JobPhase;

    fn search(gpus: u32) -> EvolutionarySearch {
        EvolutionarySearch::new(EvoConfig::for_cluster(gpus), DetRng::seed(17))
    }

    #[test]
    fn empty_cluster_returns_empty_schedule() {
        let fx = Fixture::new(1);
        let mut fx = fx;
        fx.jobs.get_mut(&JobId(0)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let best = s.generation(&c);
        assert_eq!(best.idle_count(), 8);
        assert!(s.population().is_empty());
    }

    #[test]
    fn generation_places_all_jobs_when_cluster_is_large_enough() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let best = s.generation(&c);
        for i in 0..4 {
            assert!(best.is_running(JobId(i)), "job {i} missing from S_*");
            assert!(best.global_batch(JobId(i)) <= c.limit(JobId(i)));
        }
        assert_eq!(s.population().len(), 8);
        assert_eq!(s.generations(), 1);
    }

    #[test]
    fn population_survives_and_improves_across_generations() {
        let mut fx = Fixture::new(6);
        for i in 0..6 {
            fx.start_job(i, (i * 5) as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let rhos_rng = &mut DetRng::seed(99);
        let rhos = crate::scoring::sample_rhos(&c, rhos_rng);
        let first = s.generation(&c);
        let first_score = crate::scoring::score_schedule(&c, &first, &rhos);
        let mut last_score = first_score;
        for _ in 0..5 {
            let best = s.generation(&c);
            last_score = crate::scoring::score_schedule(&c, &best, &rhos);
        }
        // Evolution should not make the fixed-sample score drastically
        // worse; usually it improves.
        assert!(
            last_score <= first_score * 1.5,
            "search diverged: {first_score} -> {last_score}"
        );
        assert_eq!(s.generations(), 6);
    }

    #[test]
    fn every_member_respects_limits_and_memory() {
        let mut fx = Fixture::new(5);
        for i in 0..5 {
            fx.limits.insert(JobId(i), 64 << i);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        for _ in 0..4 {
            let _ = s.generation(&c);
        }
        for member in s.population() {
            member
                .validate(&fx.spec, |j| {
                    fx.jobs
                        .get(&j)
                        .map_or(0, |st| st.spec.profile().max_local_batch)
                })
                .expect("member violates memory limits");
            for (job, (batch, _)) in member.running_jobs() {
                assert!(
                    batch <= c.limit(job),
                    "{job} over limit: {batch} > {}",
                    c.limit(job)
                );
            }
        }
    }

    #[test]
    fn completed_jobs_leave_the_population() {
        let mut fx = Fixture::new(3);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let _ = s.generation(&c);
        let _ = view;
        // Complete job 1 and evolve again.
        fx.jobs.get_mut(&JobId(1)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let best = s.generation(&c);
        assert!(!best.is_running(JobId(1)));
        for member in s.population() {
            assert!(!member.is_running(JobId(1)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s1 = search(8);
        let mut s2 = search(8);
        for _ in 0..3 {
            assert_eq!(s1.generation(&c), s2.generation(&c));
        }
    }

    use ones_simcore::DetRng;
    use ones_workload::JobId;
}
