//! The generation loop (Figure 5).
//!
//! `G_0` → derive `G'_i` (refresh + crossover + mutation + reorder) →
//! select the top-K by Algorithm 1 scoring → `G_{i+1}`, surfacing the best
//! candidate `S_*` for deployment. The population persists across scheduler
//! invocations, which is what makes the search *online*: every new event
//! (arrival, epoch end, completion) evolves the existing population against
//! fresh telemetry instead of re-planning from scratch.
//!
//! # Determinism under parallelism
//!
//! Candidate derivation is embarrassingly parallel, but a shared mutable
//! RNG would make parallel results order-dependent. Instead every
//! generation derives a *base* stream `rng.fork_idx("gen", generation)`
//! and every unit of work gets its own child stream split from it by a
//! fixed label and index:
//!
//! | work unit                 | stream                               |
//! |---------------------------|--------------------------------------|
//! | refresh of member *i*     | `base.fork_idx("refresh", i)`        |
//! | crossover of pair *p*     | `base.fork_idx("cross", p)`          |
//! | parent selection          | `base.fork("select")` (sequential)   |
//! | mutation of mutant *m*    | `base.fork_idx("mutate", m)`         |
//! | legalise of child *k*     | `base.fork_idx("legalise", k)`       |
//! | selection ρ-sample        | `base.fork("rhos")`                  |
//!
//! Children are indexed in a fixed documented order: the two crossover
//! children of pair *p* are `2p` and `2p+1`, mutant *m* is
//! `2·crossover_pairs + m`. Because no stream is shared, executing the
//! work sequentially or across threads is bit-identical — verified by
//! `parallel_matches_sequential` below and the property tests in
//! `tests/determinism_props.rs`.

use crate::cache::ThroughputCache;
use crate::context::EvoContext;
use crate::ops;
use crate::perfcounters::EvoPerfCounters;
use crate::scoring::{self, ScoreCard};
use ones_schedcore::{DirtySet, JobRun, Schedule};
use ones_simcore::DetRng;
use ones_sync::Arc;
use ones_workload::JobId;
use std::time::Instant;

/// Evolutionary search tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvoConfig {
    /// Population size K. The paper suggests K = |C| (one candidate per
    /// GPU).
    pub population: usize,
    /// Mutation rate θ: per-job preemption probability in the uniform
    /// mutation operation.
    pub mutation_rate: f64,
    /// Crossover pairs drawn per generation (the paper uses K pairs).
    pub crossover_pairs: usize,
    /// Apply the *reorder* operation (Figure 10) to derived candidates.
    /// Disabled only by the ablation harness.
    pub reorder: bool,
    /// Derive candidates across threads (see the module docs on
    /// determinism; results are bit-identical either way).
    pub parallel_derive: bool,
    /// Memoise throughput evaluations in the search-scoped
    /// [`ThroughputCache`] (entries survive across generations; job
    /// events invalidate per-job). Exact — scores are unchanged.
    pub use_cache: bool,
    /// Score candidates by deriving per-job [`ScoreCard`]s from their
    /// parents' (only op-touched jobs re-resolve throughput) instead of
    /// rescoring every job of every candidate. Exact — bit-identical to
    /// the full rescore (see `tests/determinism_props.rs`).
    pub delta_score: bool,
}

impl EvoConfig {
    /// The paper's suggested configuration for a cluster of `gpus` devices.
    #[must_use]
    pub fn for_cluster(gpus: u32) -> Self {
        EvoConfig {
            population: gpus as usize,
            mutation_rate: 0.2,
            crossover_pairs: gpus as usize,
            reorder: true,
            parallel_derive: true,
            use_cache: true,
            delta_score: true,
        }
    }
}

/// Maps `f` over `items`, across threads when `parallel` (order is
/// preserved either way, and `f` draws no shared state, so the results
/// are identical).
fn map_maybe_parallel<T, U, F>(parallel: bool, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if parallel {
        use rayon::prelude::*;
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

/// Legalises a derived candidate: cap batches at `R_j`, fill idle GPUs
/// so the Eq 4 full-utilisation constraint holds, and optionally reorder
/// for locality (Figure 10). Returns the jobs it touched and, when the
/// child was reordered, its packed per-job layout (which lets delta
/// scoring hash every job's new placement shape in `O(1)`).
fn legalise(
    ctx: &EvoContext<'_>,
    mut child: Schedule,
    mut rng: DetRng,
    reorder: bool,
) -> (Schedule, DirtySet, Option<Vec<JobRun>>) {
    let mut dirty = DirtySet::new();
    dirty.extend(ctx.enforce_limits(&mut child));
    dirty.extend(ops::fill_idle(ctx, &mut child, &mut rng));
    if reorder {
        let (packed, layout) = child.reordered_with_layout();
        (packed, dirty, Some(layout))
    } else {
        (child, dirty, None)
    }
}

/// The persistent online evolutionary search.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    config: EvoConfig,
    population: Vec<Schedule>,
    /// Per-member score cards, aligned with `population`; empty until the
    /// first delta-scored generation completes.
    cards: Vec<ScoreCard>,
    /// Search-scoped throughput memo table: entries are pure in
    /// `(job, placement shape, batches)` and survive across generations.
    cache: Arc<ThroughputCache>,
    /// Jobs invalidated since the last generation; their card entries are
    /// re-resolved at the next derivation.
    pending_invalidations: DirtySet,
    rng: DetRng,
    generations: u64,
    counters: EvoPerfCounters,
}

impl EvolutionarySearch {
    /// Creates a search with an empty population (initialised lazily on the
    /// first generation, when jobs exist).
    #[must_use]
    pub fn new(config: EvoConfig, rng: DetRng) -> Self {
        assert!(config.population > 0, "population must be positive");
        EvolutionarySearch {
            config,
            population: Vec::new(),
            cards: Vec::new(),
            cache: Arc::new(ThroughputCache::new()),
            pending_invalidations: DirtySet::new(),
            rng,
            generations: 0,
            counters: EvoPerfCounters::default(),
        }
    }

    /// Drops every cached state derived from `job`'s configuration: its
    /// throughput-cache entries (the entries are pure in placement and
    /// batches, but the job's *model profile* is only fixed while the job
    /// is known — arrival, epoch end and completion may all change what
    /// the view reports) and its score-card terms, which re-resolve at
    /// the next generation. Call on every job event.
    pub fn invalidate_job(&mut self, job: JobId) {
        self.cache.invalidate_job(job);
        self.pending_invalidations.insert(job);
    }

    /// Generations evolved so far.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Current tunables.
    #[must_use]
    pub fn config(&self) -> &EvoConfig {
        &self.config
    }

    /// Swaps in new tunables mid-search (ones-d live reconfiguration).
    /// The population carries over; a shrunken `population` size takes
    /// effect at the next generation's selection.
    ///
    /// # Panics
    /// Panics if `config.population` is zero.
    pub fn set_config(&mut self, config: EvoConfig) {
        assert!(config.population > 0, "population must be positive");
        self.config = config;
    }

    /// Current population (empty before the first generation).
    #[must_use]
    pub fn population(&self) -> &[Schedule] {
        &self.population
    }

    /// Performance counters accumulated across all generations.
    #[must_use]
    pub fn perf_counters(&self) -> EvoPerfCounters {
        self.counters
    }

    /// Runs one generation and returns the best candidate `S_*`.
    ///
    /// With no schedulable jobs this returns the empty schedule. See the
    /// module docs for the per-phase RNG stream layout that makes the
    /// parallel and sequential paths bit-identical.
    pub fn generation(&mut self, ctx: &EvoContext<'_>) -> Schedule {
        let gpus = ctx.view.spec.total_gpus();
        if ctx.schedulable().is_empty() {
            self.population.clear();
            self.cards.clear();
            return Schedule::empty(gpus);
        }
        self.generations += 1;
        let counters_before = self.counters;
        self.counters.generations += 1;
        let mut gen_span = ones_obs::span!("evo", "generation");
        gen_span.arg("generation", self.generations);

        // Search-scoped throughput memoisation: every (job, placement
        // shape, batches) evaluation is pure for as long as the job's
        // profile is, so entries survive across generations; job events
        // drop per-job entries via [`Self::invalidate_job`]. A
        // caller-installed cache is kept when ours is disabled. (The
        // local Arc clone keeps the borrow away from `self` so the
        // counters below stay mutably reachable.)
        let cache = Arc::clone(&self.cache);
        let gctx = if self.config.use_cache {
            ctx.with_cache(&cache)
        } else {
            *ctx
        };
        let delta = self.config.delta_score;

        // Base stream for this generation; every work unit below forks its
        // own child stream, so no RNG state is shared across units.
        let base = self.rng.fork_idx("gen", self.generations);
        let parallel = self.config.parallel_derive;

        if self.population.is_empty() {
            self.initialize(&gctx);
            self.cards.clear();
        }

        // Refresh every member against live state (this is also where new
        // arrivals enter every candidate), and carry each member's score
        // card forward: only refresh-touched and invalidated jobs
        // re-resolve their throughput.
        let t_refresh = Instant::now();
        let member_idx: Vec<usize> = (0..self.population.len()).collect();
        let population = &self.population;
        let cards = &self.cards;
        let have_cards = delta && cards.len() == population.len();
        let pending = std::mem::take(&mut self.pending_invalidations);
        let refreshed: Vec<(Schedule, ScoreCard)> =
            map_maybe_parallel(parallel, &member_idx, |&i| {
                let (s, mut dirty) = ops::refresh(
                    &gctx,
                    &population[i],
                    &mut base.fork_idx("refresh", i as u64),
                );
                let card = if have_cards {
                    dirty.extend(pending.iter().copied());
                    ScoreCard::derive(&gctx, &s, &cards[i], &dirty, None)
                } else if delta {
                    ScoreCard::build(&gctx, &s)
                } else {
                    ScoreCard::default()
                };
                (s, card)
            });
        let (refreshed, refreshed_cards): (Vec<Schedule>, Vec<ScoreCard>) =
            refreshed.into_iter().unzip();
        self.counters.refresh_nanos += t_refresh.elapsed().as_nanos() as u64;

        // Derive children: K crossover pairs -> 2K children, K mutants.
        // Parent picks draw from one sequential stream (cheap) so the
        // expensive derivation below is free of shared state. Every child
        // is legalised in the same task: cap batches at R_j, fill idle
        // GPUs so the Eq 4 full-utilisation constraint holds (a child
        // that merely dropped a job would otherwise score better by
        // having fewer SRUF terms), and reorder for locality (Figure 10).
        let t_derive = Instant::now();
        let mut select = base.fork("select");
        let pairs: Vec<(usize, usize)> = (0..self.config.crossover_pairs)
            .map(|_| (select.index(refreshed.len()), select.index(refreshed.len())))
            .collect();
        let parents: Vec<usize> = (0..self.config.population)
            .map(|_| select.index(refreshed.len()))
            .collect();
        let reorder = self.config.reorder;
        let mutation_rate = self.config.mutation_rate;
        let crossover_pairs = self.config.crossover_pairs;

        // Derive one child's schedule *and* score card in the same task:
        // the card comes from the parent's via the op's dirty set (union
        // the legalise touches), with the reorder layout giving every
        // job's packed placement shape in O(1).
        let derive_card = |child: &Schedule,
                           parent_card: &ScoreCard,
                           mut dirty: DirtySet,
                           legal_dirty: DirtySet,
                           layout: Option<&[JobRun]>| {
            if !delta {
                return ScoreCard::default();
            }
            dirty.extend(legal_dirty);
            ScoreCard::derive(&gctx, child, parent_card, &dirty, layout)
        };
        let pair_idx: Vec<usize> = (0..pairs.len()).collect();
        let crossed: Vec<((Schedule, ScoreCard), (Schedule, ScoreCard))> =
            map_maybe_parallel(parallel, &pair_idx, |&p| {
                let (ai, bi) = pairs[p];
                let (c1, c2, xdirty) = ops::crossover(
                    &refreshed[ai],
                    &refreshed[bi],
                    &mut base.fork_idx("cross", p as u64),
                );
                let (s1, d1, l1) =
                    legalise(&gctx, c1, base.fork_idx("legalise", 2 * p as u64), reorder);
                let (s2, d2, l2) = legalise(
                    &gctx,
                    c2,
                    base.fork_idx("legalise", 2 * p as u64 + 1),
                    reorder,
                );
                let card1 =
                    derive_card(&s1, &refreshed_cards[ai], xdirty.clone(), d1, l1.as_deref());
                let card2 = derive_card(&s2, &refreshed_cards[bi], xdirty, d2, l2.as_deref());
                ((s1, card1), (s2, card2))
            });
        let mutant_idx: Vec<usize> = (0..parents.len()).collect();
        let mutants: Vec<(Schedule, ScoreCard)> = map_maybe_parallel(parallel, &mutant_idx, |&m| {
            let (child, mdirty) = ops::mutate(
                &gctx,
                &refreshed[parents[m]],
                mutation_rate,
                &mut base.fork_idx("mutate", m as u64),
            );
            let (s, d, l) = legalise(
                &gctx,
                child,
                base.fork_idx("legalise", (2 * crossover_pairs + m) as u64),
                reorder,
            );
            let card = derive_card(&s, &refreshed_cards[parents[m]], mdirty, d, l.as_deref());
            (s, card)
        });
        self.counters.derive_nanos += t_derive.elapsed().as_nanos() as u64;

        // Pool in the documented order: survivors, crossover children
        // (pair-major), mutants.
        let mut pool: Vec<Schedule> = refreshed;
        let mut pool_cards: Vec<ScoreCard> = refreshed_cards;
        for ((s1, card1), (s2, card2)) in crossed {
            pool.push(s1);
            pool_cards.push(card1);
            pool.push(s2);
            pool_cards.push(card2);
        }
        for (s, card) in mutants {
            pool.push(s);
            pool_cards.push(card);
        }

        // Selection: Algorithm 1 sampling, keep the K best. The sort is
        // stable under total_cmp, so equal scores keep pool order and the
        // lowest-index candidate wins ties deterministically; NaN scores
        // sort last instead of panicking. Delta scoring multiplies each
        // card's ρ-independent factors by this generation's remaining
        // workloads — the same terms in the same order as the full
        // rescore, so the totals are bit-identical.
        let t_score = Instant::now();
        let rhos = scoring::sample_rhos(&gctx, &mut base.fork("rhos"));
        let scores: Vec<f64> = if delta {
            let remaining = scoring::remaining_workloads(&gctx, &rhos);
            pool_cards.iter().map(|c| c.score(&remaining)).collect()
        } else {
            scoring::score_all(&gctx, &pool, &rhos)
        };
        self.counters.candidates_scored += pool.len() as u64;
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        self.counters.score_nanos += t_score.elapsed().as_nanos() as u64;
        if self.config.use_cache {
            // The cache is cumulative across the search's lifetime;
            // counters mirror its totals and keep the last generation's
            // delta for the cross-generation (warm) hit-rate signal.
            self.counters.cache_hits = cache.hits();
            self.counters.cache_misses = cache.misses();
            self.counters.cache_duplicate_computes = cache.duplicate_computes();
            self.counters.cache_invalidations = cache.invalidations();
            self.counters.cache_hits_last_gen =
                self.counters.cache_hits - counters_before.cache_hits;
            self.counters.cache_misses_last_gen =
                self.counters.cache_misses - counters_before.cache_misses;
        }
        gen_span.arg("pool", pool.len());
        self.counters.forward_delta_to_registry(&counters_before);
        let best = pool[order[0]].clone();
        let keep: Vec<usize> = order.into_iter().take(self.config.population).collect();
        self.population = keep.iter().map(|&i| pool[i].clone()).collect();
        self.cards = if delta {
            keep.iter().map(|&i| pool_cards[i].clone()).collect()
        } else {
            Vec::new()
        };
        best
    }

    /// Initial population `G_0`: each candidate assigns a random job to
    /// each GPU (then legalised), per §3.2.2 *Initialization*.
    fn initialize(&mut self, ctx: &EvoContext<'_>) {
        let jobs: Vec<JobId> = ctx.schedulable().iter().map(|j| j.id()).collect();
        let gpus = ctx.view.spec.total_gpus();
        self.population = (0..self.config.population)
            .map(|_| {
                let mut s = Schedule::empty(gpus);
                for g in ctx.view.spec.all_gpus() {
                    let job = jobs[self.rng.index(jobs.len())];
                    let b = ctx.limit(job).min(ctx.profile(job).max_local_batch).max(1);
                    s.assign(g, job, b);
                }
                ctx.enforce_limits(&mut s);
                s.reordered()
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::testutil::*;
    use ones_schedcore::JobPhase;

    fn search(gpus: u32) -> EvolutionarySearch {
        EvolutionarySearch::new(EvoConfig::for_cluster(gpus), DetRng::seed(17))
    }

    #[test]
    fn empty_cluster_returns_empty_schedule() {
        let fx = Fixture::new(1);
        let mut fx = fx;
        fx.jobs.get_mut(&JobId(0)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let best = s.generation(&c);
        assert_eq!(best.idle_count(), 8);
        assert!(s.population().is_empty());
    }

    #[test]
    fn generation_places_all_jobs_when_cluster_is_large_enough() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let best = s.generation(&c);
        for i in 0..4 {
            assert!(best.is_running(JobId(i)), "job {i} missing from S_*");
            assert!(best.global_batch(JobId(i)) <= c.limit(JobId(i)));
        }
        assert_eq!(s.population().len(), 8);
        assert_eq!(s.generations(), 1);
    }

    #[test]
    fn population_survives_and_improves_across_generations() {
        let mut fx = Fixture::new(6);
        for i in 0..6 {
            fx.start_job(i, (i * 5) as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let rhos_rng = &mut DetRng::seed(99);
        let rhos = crate::scoring::sample_rhos(&c, rhos_rng);
        let first = s.generation(&c);
        let first_score = crate::scoring::score_schedule(&c, &first, &rhos);
        let mut last_score = first_score;
        for _ in 0..5 {
            let best = s.generation(&c);
            last_score = crate::scoring::score_schedule(&c, &best, &rhos);
        }
        // Evolution should not make the fixed-sample score drastically
        // worse; usually it improves.
        assert!(
            last_score <= first_score * 1.5,
            "search diverged: {first_score} -> {last_score}"
        );
        assert_eq!(s.generations(), 6);
    }

    #[test]
    fn every_member_respects_limits_and_memory() {
        let mut fx = Fixture::new(5);
        for i in 0..5 {
            fx.limits.insert(JobId(i), 64 << i);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        for _ in 0..4 {
            let _ = s.generation(&c);
        }
        for member in s.population() {
            member
                .validate(&fx.spec, |j| {
                    fx.jobs
                        .get(&j)
                        .map_or(0, |st| st.spec.profile().max_local_batch)
                })
                .expect("member violates memory limits");
            for (job, (batch, _)) in member.running_jobs() {
                assert!(
                    batch <= c.limit(job),
                    "{job} over limit: {batch} > {}",
                    c.limit(job)
                );
            }
        }
    }

    #[test]
    fn completed_jobs_leave_the_population() {
        let mut fx = Fixture::new(3);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = search(8);
        let _ = s.generation(&c);
        let _ = view;
        // Complete job 1 and evolve again.
        fx.jobs.get_mut(&JobId(1)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let best = s.generation(&c);
        assert!(!best.is_running(JobId(1)));
        for member in s.population() {
            assert!(!member.is_running(JobId(1)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s1 = search(8);
        let mut s2 = search(8);
        for _ in 0..3 {
            assert_eq!(s1.generation(&c), s2.generation(&c));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut fx = Fixture::new(5);
        for i in 0..5 {
            fx.start_job(i, i as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut seq_cfg = EvoConfig::for_cluster(8);
        seq_cfg.parallel_derive = false;
        let mut par_cfg = EvoConfig::for_cluster(8);
        par_cfg.parallel_derive = true;
        let mut seq = EvolutionarySearch::new(seq_cfg, DetRng::seed(17));
        let mut par = EvolutionarySearch::new(par_cfg, DetRng::seed(17));
        for g in 0..4 {
            assert_eq!(
                seq.generation(&c),
                par.generation(&c),
                "S_* diverged at generation {g}"
            );
            assert_eq!(seq.population(), par.population());
        }
    }

    #[test]
    fn cache_and_parallel_do_not_change_selection() {
        let mut fx = Fixture::new(6);
        for i in 0..6 {
            fx.start_job(i, (i * 3) as u32 + 1);
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut plain_cfg = EvoConfig::for_cluster(8);
        plain_cfg.parallel_derive = false;
        plain_cfg.use_cache = false;
        let full_cfg = EvoConfig::for_cluster(8);
        assert!(full_cfg.parallel_derive && full_cfg.use_cache);
        let mut plain = EvolutionarySearch::new(plain_cfg, DetRng::seed(23));
        let mut full = EvolutionarySearch::new(full_cfg, DetRng::seed(23));
        for g in 0..4 {
            assert_eq!(
                plain.generation(&c),
                full.generation(&c),
                "S_* diverged at generation {g}"
            );
            assert_eq!(plain.population(), full.population());
        }
        let counters = full.perf_counters();
        assert_eq!(counters.generations, 4);
        assert!(counters.candidates_scored > 0);
        assert!(counters.cache_hits > 0, "cache never hit");
        assert_eq!(plain.perf_counters().cache_hits, 0);
    }

    use ones_simcore::DetRng;
    use ones_workload::JobId;
}
