//! Search-scoped throughput memoisation with per-job invalidation.
//!
//! One evolution generation evaluates thousands of candidate schedules
//! against the same frozen [`ClusterView`](ones_schedcore::ClusterView),
//! and the candidates overlap heavily: children inherit most of their
//! parents' per-job configurations, and the fill/scale-up search probes
//! the same `(job, placement, batches)` triples over and over. Throughput
//! `X_j` is a pure function of that triple for a fixed view, so the cache
//! turns the repeated model evaluations into hash lookups.
//!
//! The cache is keyed by `(JobId, placement-shape hash, batch hash)` —
//! see [`ones_schedcore::Schedule::job_signature`] — and sharded behind
//! plain mutexes so concurrent scoring under rayon never contends on a
//! single lock.
//!
//! ## Lifetime and invalidation contract
//!
//! Entries are valid as long as the job's model profile and the cluster
//! fabric are unchanged — generations do not invalidate anything, so the
//! cache lives for the whole search and later generations run almost
//! entirely on warm entries. What *does* invalidate a job's entries is a
//! view change concerning that job: arrival (id reuse), completion
//! (reclamation), or an epoch-end telemetry update (defensive — today's
//! throughput model reads only static specs, but the contract must hold
//! if profiles ever recalibrate online). The scheduler calls
//! [`ThroughputCache::invalidate_job`] on exactly those events; a per-job
//! epoch stamp closes the race where a compute that started before an
//! invalidation would otherwise insert a stale value after it.

use ones_sync::atomic::{AtomicU64, Ordering};
use ones_sync::Mutex;
use ones_workload::JobId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Cache key: the job plus its configuration signatures in a candidate.
pub type CacheKey = (JobId, u64, u64);

/// FNV-1a hasher for the shard tables. The key components are already
/// FNV-mixed signatures, so a DoS-resistant SipHash buys nothing here and
/// its per-lookup cost is visible in the scoring hot loop.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

type Shard = HashMap<CacheKey, f64, BuildHasherDefault<FnvHasher>>;

/// Per-job bookkeeping for invalidation: the keys currently stored for
/// the job (so invalidation removes exactly them, without scanning every
/// shard) and a monotonically increasing invalidation stamp.
#[derive(Debug, Default)]
struct JobIndex {
    stamp: u64,
    keys: Vec<CacheKey>,
}

type IndexShard = HashMap<JobId, JobIndex, BuildHasherDefault<FnvHasher>>;

/// Number of independently locked shards: 4× the machine's available
/// parallelism, rounded up to a power of two so shard selection is a
/// mask instead of a modulo. The oversubscription keeps the probability
/// of two scorer threads colliding on one shard low without hard-coding
/// a count that is wrong on both 1-core CI boxes and 64-core servers.
fn shard_count() -> usize {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    threads.saturating_mul(4).next_power_of_two()
}

/// A sharded, thread-safe memo table for per-job throughput evaluations,
/// owned by the search and surviving across generations (see the module
/// docs for the invalidation contract).
///
/// Counters are relaxed atomics — they feed performance diagnostics, not
/// control flow. `hits + misses == lookups` holds exactly: a thread that
/// loses a compute race counts a hit (the table served it) plus one
/// `duplicate_computes`.
#[derive(Debug)]
pub struct ThroughputCache {
    shards: Box<[Mutex<Shard>]>,
    index: Box<[Mutex<IndexShard>]>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    duplicate_computes: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for ThroughputCache {
    fn default() -> Self {
        ThroughputCache::new()
    }
}

impl ThroughputCache {
    /// An empty cache, sharded for this machine's parallelism.
    #[must_use]
    pub fn new() -> Self {
        ThroughputCache::with_shards(shard_count())
    }

    /// An empty cache with an explicit shard count (rounded up to a power
    /// of two). Exposed for tests; production code uses
    /// [`ThroughputCache::new`].
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ThroughputCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            index: (0..n).map(|_| Mutex::new(IndexShard::default())).collect(),
            mask: n - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            duplicate_computes: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // Mix the three components so consecutive job ids spread out.
        let mix = key.0 .0 ^ key.1.rotate_left(17) ^ key.2.rotate_left(41);
        &self.shards[(mix as usize) & self.mask]
    }

    fn index_shard(&self, job: JobId) -> &Mutex<IndexShard> {
        // Spread consecutive job ids across index shards.
        &self.index[(job.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask]
    }

    /// The job's current invalidation stamp (0 before the first
    /// [`ThroughputCache::invalidate_job`] call for it).
    #[must_use]
    pub fn job_stamp(&self, job: JobId) -> u64 {
        self.index_shard(job)
            .lock()
            .expect("cache index poisoned")
            .get(&job)
            .map_or(0, |e| e.stamp)
    }

    /// Returns the cached throughput for `key`, computing and storing it
    /// via `compute` on a miss. `compute` runs outside the shard lock, so
    /// an expensive model evaluation never blocks other shard users. Two
    /// threads may race to compute the same key; both get the same pure
    /// result, the insert is idempotent, and only the thread whose insert
    /// lands counts a miss (the loser counts a hit plus one
    /// `duplicate_computes`). A compute that straddles an
    /// [`ThroughputCache::invalidate_job`] call observes a stamp change
    /// and discards its insert, so no pre-invalidation value survives.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> f64) -> f64 {
        let shard = self.shard(&key);
        if let Some(&v) = shard.lock().expect("cache shard poisoned").get(&key) {
            // relaxed: diagnostic counter; reads tolerate staleness.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        let stamp = self.job_stamp(key.0);
        let v = compute();
        if self.job_stamp(key.0) != stamp {
            // The job was invalidated while we evaluated the model: the
            // value is (potentially) stale, so serve it to this caller
            // but do not publish it.
            // relaxed: diagnostic counter; reads tolerate staleness.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        use std::collections::hash_map::Entry;
        match shard.lock().expect("cache shard poisoned").entry(key) {
            Entry::Occupied(e) => {
                // Lost the race: another thread's insert landed first.
                let v = *e.get();
                // relaxed: diagnostic counters; reads tolerate staleness.
                self.hits.fetch_add(1, Ordering::Relaxed);
                // relaxed: diagnostic counter; reads tolerate staleness.
                self.duplicate_computes.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            Entry::Vacant(e) => {
                e.insert(v);
            }
        }
        // relaxed: diagnostic counter; reads tolerate staleness.
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Record the key for per-job invalidation. If an invalidation
        // slipped in between the insert above and this record, remove the
        // entry again rather than leave it unindexed.
        let mut idx = self
            .index_shard(key.0)
            .lock()
            .expect("cache index poisoned");
        let e = idx.entry(key.0).or_default();
        if e.stamp == stamp {
            e.keys.push(key);
        } else {
            drop(idx);
            shard.lock().expect("cache shard poisoned").remove(&key);
        }
        v
    }

    /// Drops every entry belonging to `job` and bumps its invalidation
    /// stamp. Call on any view change concerning the job — arrival,
    /// completion, epoch-end telemetry update. `O(keys stored for job)`.
    pub fn invalidate_job(&self, job: JobId) {
        let keys = {
            let mut idx = self.index_shard(job).lock().expect("cache index poisoned");
            let e = idx.entry(job).or_default();
            e.stamp += 1;
            std::mem::take(&mut e.keys)
        };
        for key in keys {
            self.shard(&key)
                .lock()
                .expect("cache shard poisoned")
                .remove(&key);
        }
        // relaxed: diagnostic counter; the stamp/key removal above is
        // the synchronised part of invalidation, not this count.
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Lookups answered from the table (including compute races lost to
    /// another thread's insert).
    #[must_use]
    pub fn hits(&self) -> u64 {
        // relaxed: diagnostic read; may lag in-flight updates.
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the model and published (or, for
    /// stamp-raced computes, at least evaluated) a value.
    #[must_use]
    pub fn misses(&self) -> u64 {
        // relaxed: diagnostic read; may lag in-flight updates.
        self.misses.load(Ordering::Relaxed)
    }

    /// Model evaluations whose result was already in the table by the
    /// time they finished — wasted work from compute races, not an
    /// accounting error.
    #[must_use]
    pub fn duplicate_computes(&self) -> u64 {
        // relaxed: diagnostic read; may lag in-flight updates.
        self.duplicate_computes.load(Ordering::Relaxed)
    }

    /// Calls to [`ThroughputCache::invalidate_job`].
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        // relaxed: diagnostic read; may lag in-flight updates.
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Distinct configurations stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_per_key() {
        let cache = ThroughputCache::new();
        let mut calls = 0;
        for _ in 0..5 {
            let v = cache.get_or_insert_with((JobId(1), 10, 20), || {
                calls += 1;
                42.5
            });
            assert_eq!(v, 42.5);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.duplicate_computes(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let cache = ThroughputCache::new();
        assert!(cache.is_empty());
        for i in 0..100u64 {
            let v = cache.get_or_insert_with((JobId(i % 3), i, i * 7), || i as f64);
            assert_eq!(v, i as f64);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.misses(), 100);
        assert_eq!(cache.hits(), 0);
        // Re-query every key: all hits, values unchanged.
        for i in 0..100u64 {
            let v = cache.get_or_insert_with((JobId(i % 3), i, i * 7), || f64::NAN);
            assert_eq!(v, i as f64);
        }
        assert_eq!(cache.hits(), 100);
    }

    #[test]
    fn shard_count_is_power_of_two() {
        let cache = ThroughputCache::new();
        assert!(cache.shards().is_power_of_two());
        assert_eq!(ThroughputCache::with_shards(3).shards(), 4);
        assert_eq!(ThroughputCache::with_shards(0).shards(), 1);
        // A single-shard cache still works end to end.
        let one = ThroughputCache::with_shards(1);
        for i in 0..32u64 {
            one.get_or_insert_with((JobId(i), i, i), || i as f64);
        }
        assert_eq!(one.len(), 32);
    }

    #[test]
    fn shared_across_threads() {
        let cache = ThroughputCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let v = cache.get_or_insert_with((JobId(i), i, 0), || i as f64);
                        assert_eq!(v, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }

    #[test]
    fn racing_computes_count_one_miss_per_landed_insert() {
        // Many threads hammer the same small key set through a slow
        // compute to force races. The accounting must satisfy, exactly:
        //   hits + misses == lookups
        //   misses == distinct keys   (one insert lands per key)
        // and every duplicated model evaluation shows up in
        // duplicate_computes instead of inflating misses.
        const THREADS: u64 = 8;
        const KEYS: u64 = 4;
        const ROUNDS: u64 = 16;
        let cache = ThroughputCache::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    for r in 0..ROUNDS {
                        let k = r % KEYS;
                        let v = cache.get_or_insert_with((JobId(k), k, k), || {
                            std::thread::yield_now();
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            k as f64
                        });
                        assert_eq!(v, k as f64);
                    }
                });
            }
        });
        let lookups = THREADS * ROUNDS;
        assert_eq!(cache.hits() + cache.misses(), lookups);
        assert_eq!(cache.misses(), KEYS);
        assert_eq!(cache.len(), KEYS as usize);
        // duplicate_computes is machine-dependent (can be 0 on one core)
        // but bounded by the number of losing lookups.
        assert!(cache.duplicate_computes() <= lookups - KEYS);
    }

    #[test]
    fn invalidate_job_drops_only_that_job() {
        let cache = ThroughputCache::new();
        for i in 0..10u64 {
            cache.get_or_insert_with((JobId(i % 2), i, i), || i as f64);
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.job_stamp(JobId(0)), 0);
        cache.invalidate_job(JobId(0));
        assert_eq!(cache.len(), 5, "only job 0's entries drop");
        assert_eq!(cache.job_stamp(JobId(0)), 1);
        assert_eq!(cache.job_stamp(JobId(1)), 0);
        assert_eq!(cache.invalidations(), 1);
        // Invalidated keys recompute; the survivor's keys still hit.
        let mut recomputed = false;
        cache.get_or_insert_with((JobId(0), 0, 0), || {
            recomputed = true;
            99.0
        });
        assert!(recomputed);
        let hits_before = cache.hits();
        cache.get_or_insert_with((JobId(1), 1, 1), || f64::NAN);
        assert_eq!(cache.hits(), hits_before + 1);
    }

    #[test]
    fn invalidation_during_compute_discards_insert() {
        // A compute that starts before invalidate_job and finishes after
        // must not publish its (stale) value.
        let cache = ThroughputCache::new();
        let v = cache.get_or_insert_with((JobId(7), 1, 2), || {
            cache.invalidate_job(JobId(7));
            1.25
        });
        assert_eq!(v, 1.25, "the caller is still served");
        assert!(cache.is_empty(), "the stale value must not land");
        // The next lookup recomputes and publishes normally.
        let v = cache.get_or_insert_with((JobId(7), 1, 2), || 2.5);
        assert_eq!(v, 2.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn repeated_invalidation_is_idempotent() {
        let cache = ThroughputCache::new();
        cache.invalidate_job(JobId(3)); // nothing stored: fine
        cache.get_or_insert_with((JobId(3), 5, 5), || 1.0);
        cache.invalidate_job(JobId(3));
        cache.invalidate_job(JobId(3));
        assert!(cache.is_empty());
        assert_eq!(cache.job_stamp(JobId(3)), 3);
        assert_eq!(cache.invalidations(), 3);
    }
}
