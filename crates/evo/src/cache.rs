//! Generation-scoped throughput memoisation.
//!
//! One evolution generation evaluates thousands of candidate schedules
//! against the same frozen [`ClusterView`](ones_schedcore::ClusterView),
//! and the candidates overlap heavily: children inherit most of their
//! parents' per-job configurations, and the fill/scale-up search probes
//! the same `(job, placement, batches)` triples over and over. Throughput
//! `X_j` is a pure function of that triple for a fixed view, so a
//! generation-scoped cache turns the repeated model evaluations into hash
//! lookups.
//!
//! The cache is keyed by `(JobId, placement hash, batch hash)` — see
//! [`ones_schedcore::Schedule::job_signature`] — and sharded behind plain
//! mutexes so concurrent scoring under rayon never contends on a single
//! lock. It must be created fresh per generation (the search does this
//! internally): across generations the view's job set changes and stale
//! entries would alias new state.

use ones_workload::JobId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: the job plus its configuration signatures in a candidate.
pub type CacheKey = (JobId, u64, u64);

/// FNV-1a hasher for the shard tables. The key components are already
/// FNV-mixed signatures, so a DoS-resistant SipHash buys nothing here and
/// its per-lookup cost is visible in the scoring hot loop.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

type Shard = HashMap<CacheKey, f64, BuildHasherDefault<FnvHasher>>;

/// Number of independently locked shards. Sized well above any realistic
/// worker count so parallel scorers rarely collide on a shard.
const SHARDS: usize = 16;

/// A sharded, thread-safe memo table for per-job throughput evaluations.
///
/// Hit/miss counters are relaxed atomics — they feed performance
/// diagnostics, not control flow.
#[derive(Debug)]
pub struct ThroughputCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ThroughputCache {
    fn default() -> Self {
        ThroughputCache::new()
    }
}

impl ThroughputCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ThroughputCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // Mix the three components so consecutive job ids spread out.
        let mix = key.0 .0 ^ key.1.rotate_left(17) ^ key.2.rotate_left(41);
        &self.shards[(mix as usize) % SHARDS]
    }

    /// Returns the cached throughput for `key`, computing and storing it
    /// via `compute` on a miss. `compute` runs outside the shard lock, so
    /// an expensive model evaluation never blocks other shard users (two
    /// threads may race to compute the same key; both get the same pure
    /// result and the insert is idempotent).
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> f64) -> f64 {
        let shard = self.shard(&key);
        if let Some(&v) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        let v = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().expect("cache shard poisoned").insert(key, v);
        v
    }

    /// Lookups answered from the table.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the model.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct configurations stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_per_key() {
        let cache = ThroughputCache::new();
        let mut calls = 0;
        for _ in 0..5 {
            let v = cache.get_or_insert_with((JobId(1), 10, 20), || {
                calls += 1;
                42.5
            });
            assert_eq!(v, 42.5);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let cache = ThroughputCache::new();
        assert!(cache.is_empty());
        for i in 0..100u64 {
            let v = cache.get_or_insert_with((JobId(i % 3), i, i * 7), || i as f64);
            assert_eq!(v, i as f64);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.misses(), 100);
        assert_eq!(cache.hits(), 0);
        // Re-query every key: all hits, values unchanged.
        for i in 0..100u64 {
            let v = cache.get_or_insert_with((JobId(i % 3), i, i * 7), || f64::NAN);
            assert_eq!(v, i as f64);
        }
        assert_eq!(cache.hits(), 100);
    }

    #[test]
    fn shared_across_threads() {
        let cache = ThroughputCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let v = cache.get_or_insert_with((JobId(i), i, 0), || i as f64);
                        assert_eq!(v, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }
}
