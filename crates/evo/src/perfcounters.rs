//! Lightweight performance counters for the evolutionary hot loop.
//!
//! The search accumulates these across generations: how much work each
//! phase did (refresh / derive+legalise / score+select wall time), how
//! many candidates were scored, and how the search-scoped
//! [`ThroughputCache`](crate::cache::ThroughputCache) performed. The cache
//! outlives generations, so besides the cumulative hit/miss totals the
//! search records the *last generation's* hits and misses — their ratio
//! ([`EvoPerfCounters::warm_hit_rate`]) is the cross-generation reuse
//! signal (a generation-scoped cache would restart cold every time). They
//! are diagnostics only — wall times come from [`std::time::Instant`] and
//! are excluded from any determinism guarantee.

use ones_sync::LazyLock;

// Registry mirrors of the per-search counters (DESIGN.md §5). Every
// generation forwards its deltas here, so [`EvoPerfCounters::from_registry`]
// is a process-wide view over the same numbers the per-search struct
// accumulates locally.
static REG_GENERATIONS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.generations"));
static REG_SCORED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.candidates_scored"));
static REG_CACHE_HITS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.cache_hits"));
static REG_CACHE_MISSES: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.cache_misses"));
static REG_CACHE_DUP: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.cache_duplicate_computes"));
static REG_CACHE_INVAL: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.cache_invalidations"));
static REG_REFRESH_NANOS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.refresh_nanos"));
static REG_DERIVE_NANOS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.derive_nanos"));
static REG_SCORE_NANOS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("evo.search.score_nanos"));

/// Counters accumulated by
/// [`EvolutionarySearch`](crate::search::EvolutionarySearch) across every
/// generation it has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvoPerfCounters {
    /// Generations evolved.
    pub generations: u64,
    /// Candidates scored by the selection phase (pool sizes, summed).
    pub candidates_scored: u64,
    /// Throughput-cache lookups answered from the table.
    pub cache_hits: u64,
    /// Throughput-cache lookups that evaluated the model.
    pub cache_misses: u64,
    /// Model evaluations whose result lost an insert race (the work was
    /// duplicated but the lookup still counts as a hit — see
    /// [`ThroughputCache::get_or_insert_with`](crate::cache::ThroughputCache::get_or_insert_with)).
    pub cache_duplicate_computes: u64,
    /// Per-job invalidations applied to the search-scoped cache
    /// (arrivals, epoch ends, completions).
    pub cache_invalidations: u64,
    /// Cache hits during the most recent generation only.
    pub cache_hits_last_gen: u64,
    /// Cache misses during the most recent generation only.
    pub cache_misses_last_gen: u64,
    /// Wall time in the refresh phase, nanoseconds.
    pub refresh_nanos: u64,
    /// Wall time deriving and legalising children, nanoseconds.
    pub derive_nanos: u64,
    /// Wall time in ρ-sampling, scoring and selection, nanoseconds.
    pub score_nanos: u64,
}

impl EvoPerfCounters {
    /// Fraction of throughput lookups served by the cache, in [0, 1]
    /// (zero when the cache never ran).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of the *last* generation's throughput lookups served by
    /// the cache, in [0, 1]. On a warm search-scoped cache this stays
    /// high across generations; a generation-scoped cache would pay the
    /// cold misses every time.
    #[must_use]
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.cache_hits_last_gen + self.cache_misses_last_gen;
        if total == 0 {
            0.0
        } else {
            self.cache_hits_last_gen as f64 / total as f64
        }
    }

    /// Total measured wall time across the three phases, nanoseconds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.refresh_nanos + self.derive_nanos + self.score_nanos
    }

    /// Forwards the counter increments accumulated since `before` into the
    /// `evo.search.*` metrics registry.
    pub(crate) fn forward_delta_to_registry(&self, before: &EvoPerfCounters) {
        REG_GENERATIONS.add(self.generations - before.generations);
        REG_SCORED.add(self.candidates_scored - before.candidates_scored);
        REG_CACHE_HITS.add(self.cache_hits - before.cache_hits);
        REG_CACHE_MISSES.add(self.cache_misses - before.cache_misses);
        REG_CACHE_DUP.add(self.cache_duplicate_computes - before.cache_duplicate_computes);
        REG_CACHE_INVAL.add(self.cache_invalidations - before.cache_invalidations);
        REG_REFRESH_NANOS.add(self.refresh_nanos - before.refresh_nanos);
        REG_DERIVE_NANOS.add(self.derive_nanos - before.derive_nanos);
        REG_SCORE_NANOS.add(self.score_nanos - before.score_nanos);
    }

    /// The process-wide view of the same counters, read back from the
    /// `evo.search.*` registry keys: totals across every search that ran
    /// in this process (one scheduler's local counters are a lower bound).
    #[must_use]
    pub fn from_registry() -> EvoPerfCounters {
        EvoPerfCounters {
            generations: REG_GENERATIONS.value(),
            candidates_scored: REG_SCORED.value(),
            cache_hits: REG_CACHE_HITS.value(),
            cache_misses: REG_CACHE_MISSES.value(),
            cache_duplicate_computes: REG_CACHE_DUP.value(),
            cache_invalidations: REG_CACHE_INVAL.value(),
            // Last-generation deltas are a property of one live search;
            // the process-wide registry only carries cumulative totals.
            cache_hits_last_gen: 0,
            cache_misses_last_gen: 0,
            refresh_nanos: REG_REFRESH_NANOS.value(),
            derive_nanos: REG_DERIVE_NANOS.value(),
            score_nanos: REG_SCORE_NANOS.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut c = EvoPerfCounters::default();
        assert_eq!(c.cache_hit_rate(), 0.0);
        c.cache_hits = 3;
        c.cache_misses = 1;
        assert!((c.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn total_sums_phases() {
        let c = EvoPerfCounters {
            refresh_nanos: 1,
            derive_nanos: 2,
            score_nanos: 4,
            ..EvoPerfCounters::default()
        };
        assert_eq!(c.total_nanos(), 7);
    }
}
