//! The four evolution operations (§3.2.2).
//!
//! * [`refresh`] — reconcile a candidate with live state: drop completed
//!   jobs, scale down jobs over their limit `R_j`, place jobs that have
//!   never run (taking GPUs from the longest-running jobs if necessary —
//!   the paper's starvation guard), then fill idle GPUs (Figure 7).
//! * [`crossover`] — uniform crossover (Figure 8): each GPU's slot goes to
//!   a random child, the other child gets the other parent's slot.
//! * [`mutate`] — uniform mutation (Figure 9): each running job is
//!   preempted with probability θ and the freed GPUs are refilled.
//! * reorder — [`ones_schedcore::Schedule::reordered`] (Figure 10).
//!
//! Every op additionally reports the *dirty set*: the jobs whose
//! configuration it may have changed relative to the input candidate(s).
//! Delta-scoring ([`crate::scoring::ScoreCard::derive`]) recomputes only
//! those jobs' Eq 8 terms; the sets are deliberately over-approximations
//! (marking an untouched job dirty costs a recompute, missing a touched
//! one would corrupt scores).

use crate::context::EvoContext;
use crate::scoring;
use ones_cluster::GpuId;
use ones_schedcore::{DirtySet, Schedule};
use ones_simcore::DetRng;
use ones_workload::JobId;

/// The *refresh* operation: updates a candidate with real-time job status.
/// Returns the refreshed schedule and the jobs it touched.
#[must_use]
pub fn refresh(
    ctx: &EvoContext<'_>,
    candidate: &Schedule,
    rng: &mut DetRng,
) -> (Schedule, DirtySet) {
    let mut s = candidate.clone();
    let mut dirty = DirtySet::new();

    // (1) Clean up GPUs of completed jobs (and of jobs unknown to the
    // view, which can linger in stale candidates).
    let stale: Vec<JobId> = s
        .running_jobs()
        .keys()
        .filter(|j| ctx.view.jobs.get(j).is_none_or(|st| st.is_completed()))
        .copied()
        .collect();
    for j in stale {
        s.evict(j);
        dirty.insert(j);
    }

    // (2) Scale down any job whose global batch exceeds its limit R_j.
    dirty.extend(ctx.enforce_limits(&mut s));

    // (3) Allocate new jobs (never started) one GPU each, preferentially:
    // if idle GPUs run out, take GPUs from the jobs with the largest
    // processed time.
    let new_jobs: Vec<JobId> = ctx
        .new_jobs()
        .iter()
        .map(|j| j.id())
        .filter(|&j| !s.is_running(j))
        .collect();
    for job in new_jobs {
        let gpu = match s.idle_gpus().first() {
            Some(&g) => Some(g),
            None => steal_gpu_from_longest(ctx, &mut s, &mut dirty),
        };
        if let Some(g) = gpu {
            ctx.assign_evenly(&mut s, job, &[g]);
            dirty.insert(job);
        }
    }

    // (4) Fill any remaining idle GPUs (Figure 7).
    dirty.extend(fill_idle(ctx, &mut s, rng));
    (s, dirty)
}

/// Takes one GPU from the running job with the largest processed time that
/// still holds more than zero GPUs. Returns the freed GPU and marks the
/// victim dirty.
fn steal_gpu_from_longest(
    ctx: &EvoContext<'_>,
    s: &mut Schedule,
    dirty: &mut DirtySet,
) -> Option<GpuId> {
    let victim = s
        .running_jobs()
        .keys()
        .filter_map(|j| ctx.view.jobs.get(j))
        .max_by(|a, b| a.exec_time.total_cmp(&b.exec_time))?
        .id();
    dirty.insert(victim);
    // Free the victim's last GPU (keep its remaining workers contiguous).
    let placement = s.placement(victim);
    let &last = placement.gpus().last()?;
    s.clear(last);
    // Re-split the victim's batch over its remaining workers so its global
    // batch is preserved as far as its limit allows.
    let remaining: Vec<GpuId> = s.placement(victim).gpus().to_vec();
    if remaining.is_empty() {
        return Some(last);
    }
    s.evict(victim);
    ctx.assign_evenly(s, victim, &remaining);
    Some(last)
}

/// Fills idle GPUs by resuming waiting jobs or scaling up running jobs,
/// repeatedly selecting the candidate with the smallest utilisation
/// increase `Δφ_j · Y_j` via Algorithm 1 sampling (Figure 7). Returns the
/// jobs whose slots changed.
pub fn fill_idle(ctx: &EvoContext<'_>, s: &mut Schedule, rng: &mut DetRng) -> DirtySet {
    fill(ctx, s, rng, true)
}

/// Resume-only filling: places waiting jobs on idle GPUs (one each, SRUF
/// order) without touching any running job's slots. Used by the scheduler
/// to respond immediately to arrivals/completions while the §3.2.2 update
/// rule blocks disruptive redeployments. Returns the jobs placed.
pub fn admit_waiting(ctx: &EvoContext<'_>, s: &mut Schedule, rng: &mut DetRng) -> DirtySet {
    fill(ctx, s, rng, false)
}

fn fill(
    ctx: &EvoContext<'_>,
    s: &mut Schedule,
    rng: &mut DetRng,
    allow_scale_up: bool,
) -> DirtySet {
    let rhos = scoring::sample_rhos(ctx, rng);
    let mut dirty = DirtySet::new();
    loop {
        let idle = s.idle_gpus();
        if idle.is_empty() {
            return dirty;
        }
        // One slot walk per round covers both the resume membership test
        // and the scale-up candidate scan (`is_running` per schedulable
        // job would make each round O(jobs · gpus)).
        let running = s.running_jobs();
        let mut best: Option<(f64, FillAction)> = None;

        // Resume candidates: schedulable jobs not currently in the genome.
        // An idle GPU serving a waiting job reduces that job's completion
        // time from "not progressing" to Y/X — admitting always beats
        // growing an already-running job (§2.2: "execute some job with a
        // smaller size first ... reduce waiting time of the jobs"), so
        // resumes are ranked first, by SRUF (smallest estimated remaining
        // time). `probe_throughput` evaluates the hypothetical one-GPU
        // assignment without materialising a trial schedule.
        for j in ctx.schedulable() {
            let job = j.id();
            if running.contains_key(&job) {
                continue;
            }
            let Some(&rho) = rhos.get(&job) else { continue };
            let x = ctx.probe_throughput(job, &idle[..1]);
            if x <= 0.0 {
                continue;
            }
            let delta = ctx.remaining_workload(job, rho) / x;
            if best.as_ref().is_none_or(|(d, _)| delta < *d) {
                best = Some((delta, FillAction::Resume(job)));
            }
        }
        if let Some((_, FillAction::Resume(job))) = best {
            ctx.assign_evenly(s, job, &[idle[0]]);
            dirty.insert(job);
            continue;
        }

        // Past the resume shortcut, `best` is empty; in resume-only mode
        // there is nothing else to try.
        if !allow_scale_up {
            return dirty;
        }
        // Scale-up candidates: running jobs below their limit. The limit
        // justifies up to ⌊R·c/B⌋ − c extra GPUs (Figure 7); intermediate
        // power-of-two counts are also evaluated because communication
        // overhead can make the maximal spread worse than a smaller one
        // (e.g. a config that stays within one node).
        for (&job, &(batch, gpus)) in &running {
            let limit = ctx.limit(job);
            if batch >= limit {
                continue;
            }
            let Some(&rho) = rhos.get(&job) else { continue };
            let max_extra = ((limit * gpus / batch).saturating_sub(gpus) as usize).min(idle.len());
            if max_extra == 0 {
                continue;
            }
            let rem = ctx.remaining_workload(job, rho);
            let before_u = utilisation(ctx, s, job, rem);
            let held: Vec<GpuId> = s.placement(job).gpus().to_vec();
            let mut extra = 1usize;
            loop {
                let mut all = held.clone();
                all.extend(idle.iter().copied().take(extra));
                let x = ctx.probe_throughput(job, &all);
                let after_u = if x <= 0.0 {
                    0.0
                } else {
                    rem * (all.len() as f64) / x
                };
                let delta = after_u - before_u;
                if best.as_ref().is_none_or(|(d, _)| delta < *d) {
                    best = Some((delta, FillAction::ScaleUp(job, extra)));
                }
                if extra == max_extra {
                    break;
                }
                extra = (extra * 2).min(max_extra);
            }
        }

        match best {
            Some((_, FillAction::Resume(job))) => {
                ctx.assign_evenly(s, job, &[idle[0]]);
                dirty.insert(job);
            }
            Some((_, FillAction::ScaleUp(job, extra))) => {
                let mut all: Vec<GpuId> = s.placement(job).gpus().to_vec();
                all.extend(idle.iter().copied().take(extra));
                s.evict(job);
                ctx.assign_evenly(s, job, &all);
                dirty.insert(job);
            }
            None => return dirty, // nothing can use the idle GPUs
        }
    }
}

/// Remaining utilisation `T_j · c_j` of one job under a schedule, given
/// its remaining workload `Y_j = rem`.
fn utilisation(ctx: &EvoContext<'_>, s: &Schedule, job: JobId, rem: f64) -> f64 {
    let x = ctx.throughput_in(s, job);
    if x <= 0.0 {
        return 0.0;
    }
    let c = f64::from(s.gpu_count(job));
    rem * c / x
}

enum FillAction {
    Resume(JobId),
    ScaleUp(JobId, usize),
}

/// Uniform crossover (Figure 8): returns two children plus the jobs whose
/// slots changed relative to the respective parent.
///
/// Child 1 differs from parent `a` (and child 2 from parent `b`) exactly
/// at the GPUs where the coin picked the swapped order *and* the parents'
/// slots disagree — so a single dirty set (both slots' jobs at every such
/// GPU) is valid for deriving child 1's card from `a`'s and child 2's
/// card from `b`'s.
#[must_use]
pub fn crossover(a: &Schedule, b: &Schedule, rng: &mut DetRng) -> (Schedule, Schedule, DirtySet) {
    assert_eq!(a.num_gpus(), b.num_gpus(), "parents must share a cluster");
    let n = a.num_gpus();
    let mut c1 = Schedule::empty(n);
    let mut c2 = Schedule::empty(n);
    let mut dirty = DirtySet::new();
    for i in 0..n {
        let g = GpuId(i);
        let swapped = !rng.chance(0.5);
        let (first, second) = if swapped { (b, a) } else { (a, b) };
        if swapped && a.slot(g) != b.slot(g) {
            if let Some(slot) = a.slot(g) {
                dirty.insert(slot.job);
            }
            if let Some(slot) = b.slot(g) {
                dirty.insert(slot.job);
            }
        }
        if let Some(slot) = first.slot(g) {
            c1.assign(g, slot.job, slot.local_batch);
        }
        if let Some(slot) = second.slot(g) {
            c2.assign(g, slot.job, slot.local_batch);
        }
    }
    (c1, c2, dirty)
}

/// Uniform mutation (Figure 9): preempts each running job with probability
/// `rate` and refills the freed GPUs. Returns the mutated schedule and the
/// jobs it touched (preempted and/or refilled).
#[must_use]
pub fn mutate(
    ctx: &EvoContext<'_>,
    candidate: &Schedule,
    rate: f64,
    rng: &mut DetRng,
) -> (Schedule, DirtySet) {
    assert!((0.0..=1.0).contains(&rate), "mutation rate out of range");
    let mut s = candidate.clone();
    let mut dirty = DirtySet::new();
    for job in candidate.running_jobs().keys() {
        if rng.chance(rate) {
            s.evict(*job);
            dirty.insert(*job);
        }
    }
    dirty.extend(fill_idle(ctx, &mut s, rng));
    (s, dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::testutil::*;
    use ones_schedcore::JobPhase;

    #[test]
    fn refresh_cleans_completed_jobs() {
        let mut fx = Fixture::new(3);
        fx.start_job(0, 5);
        fx.jobs.get_mut(&JobId(0)).unwrap().phase = JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        s.assign(GpuId(0), JobId(0), 256);
        let mut rng = DetRng::seed(1);
        let (r, _) = refresh(&c, &s, &mut rng);
        assert!(!r.is_running(JobId(0)));
    }

    #[test]
    fn refresh_places_new_jobs_and_fills_cluster() {
        let fx = Fixture::new(3);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut rng = DetRng::seed(2);
        let (r, dirty) = refresh(&c, &Schedule::empty(8), &mut rng);
        // All three jobs placed, and no idle GPU left (all jobs can scale
        // up to R with the spare GPUs... R=256 and max_local=2048, so a
        // single GPU each caps at R; the remaining 5 GPUs can only be used
        // by scale-up beyond batch... which R forbids -> they stay idle
        // only if no candidate exists).
        for i in 0..3 {
            assert!(r.is_running(JobId(i)), "job {i} not placed");
            assert!(r.global_batch(JobId(i)) <= 256);
            assert!(dirty.contains(&JobId(i)), "placed job {i} must be dirty");
        }
    }

    #[test]
    fn refresh_steals_from_longest_running_job_when_full() {
        let mut fx = Fixture::new(9);
        // 8 jobs running, one per GPU; job 3 has by far the longest
        // processed time. Job 8 is new.
        for i in 0..8 {
            fx.start_job(i, if i == 3 { 50 } else { 2 });
        }
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        for i in 0..8u32 {
            s.assign(GpuId(i), JobId(u64::from(i)), 256);
        }
        let mut rng = DetRng::seed(3);
        let (r, _) = refresh(&c, &s, &mut rng);
        assert!(r.is_running(JobId(8)), "new job must be placed");
        // The victim giving up its (only) GPU is the longest-processed job.
        assert!(
            !r.is_running(JobId(3)) || r.gpu_count(JobId(3)) == 0,
            "longest job should have been preempted"
        );
    }

    #[test]
    fn refresh_scales_down_over_limit_jobs() {
        let mut fx = Fixture::new(1);
        fx.start_job(0, 5);
        fx.limits.insert(JobId(0), 64);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        for g in 0..4 {
            s.assign(GpuId(g), JobId(0), 64); // B = 256 > R = 64
        }
        let mut rng = DetRng::seed(4);
        let (r, _) = refresh(&c, &s, &mut rng);
        assert!(r.global_batch(JobId(0)) <= 64);
        assert_eq!(r.gpu_count(JobId(0)), 1);
    }

    #[test]
    fn fill_idle_prefers_shorter_jobs() {
        let mut fx = Fixture::new(2);
        fx.start_job(0, 30);
        fx.start_job(1, 30);
        // Stop both jobs being in the schedule; make job 1 nearly done.
        fx.jobs.get_mut(&JobId(0)).unwrap().phase = JobPhase::Waiting;
        fx.jobs.get_mut(&JobId(1)).unwrap().phase = JobPhase::Waiting;
        fx.betas.insert(JobId(0), ones_stats::Beta::new(1.0, 60.0));
        fx.betas.insert(JobId(1), ones_stats::Beta::new(60.0, 1.0));
        let view = fx.view();
        let c = ctx(&fx, &view);
        // Only one idle GPU: whoever is placed first reveals the priority.
        let mut s = Schedule::empty(8);
        for g in 1..8 {
            s.assign(GpuId(g), JobId(0), 1); // occupy the rest with filler
        }
        s.evict(JobId(0));
        for g in 1..8 {
            s.assign(GpuId(g), JobId(99_999), 1); // unknown job -> ignored by fill
        }
        let mut wins = 0;
        for seed in 0..20 {
            let mut trial = s.clone();
            let mut rng = DetRng::seed(seed);
            // Remove the unknown filler from telemetry concerns: fill only
            // sees GPU 0 idle.
            fill_idle(&c, &mut trial, &mut rng);
            if trial.is_running(JobId(1)) && !trial.is_running(JobId(0)) {
                wins += 1;
            }
        }
        assert!(wins >= 15, "short job won only {wins}/20 fills");
    }

    #[test]
    fn crossover_children_partition_parent_slots() {
        let fx = Fixture::new(4);
        let view = fx.view();
        let _c = ctx(&fx, &view);
        let mut a = Schedule::empty(8);
        let mut b = Schedule::empty(8);
        for g in 0..8u32 {
            a.assign(GpuId(g), JobId(u64::from(g % 2)), 32); // jobs 0, 1
            b.assign(GpuId(g), JobId(2 + u64::from(g % 2)), 64); // jobs 2, 3
        }
        let mut rng = DetRng::seed(5);
        let (c1, c2, _) = crossover(&a, &b, &mut rng);
        for g in 0..8u32 {
            let slots = [c1.slot(GpuId(g)), c2.slot(GpuId(g))];
            let parents = [a.slot(GpuId(g)), b.slot(GpuId(g))];
            // Each GPU: children hold exactly the two parent slots, in
            // either order.
            assert!(
                (slots[0] == parents[0] && slots[1] == parents[1])
                    || (slots[0] == parents[1] && slots[1] == parents[0]),
                "GPU {g}: slots not inherited"
            );
        }
        // With 8 GPUs, both children should differ from both parents with
        // overwhelming probability under seed 5.
        assert_ne!(c1, a);
        assert_ne!(c1, b);
    }

    #[test]
    fn crossover_is_deterministic_per_seed() {
        let mut a = Schedule::empty(4);
        let mut b = Schedule::empty(4);
        a.assign(GpuId(0), JobId(1), 32);
        b.assign(GpuId(1), JobId(2), 32);
        let (c1, c2, _) = crossover(&a, &b, &mut DetRng::seed(9));
        let (d1, d2, _) = crossover(&a, &b, &mut DetRng::seed(9));
        assert_eq!(c1, d1);
        assert_eq!(c2, d2);
    }

    #[test]
    fn mutation_rate_one_preempts_everything_rate_zero_nothing() {
        let mut fx = Fixture::new(2);
        fx.start_job(0, 3);
        fx.start_job(1, 3);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        s.assign(GpuId(0), JobId(0), 256);
        s.assign(GpuId(1), JobId(1), 256);

        let (kept, touched) = mutate(&c, &s, 0.0, &mut DetRng::seed(6));
        assert!(kept.is_running(JobId(0)) && kept.is_running(JobId(1)));
        // Dirty-set contract: every job whose slots changed is reported.
        for g in 0..8u32 {
            if s.slot(GpuId(g)) != kept.slot(GpuId(g)) {
                for slot in [s.slot(GpuId(g)), kept.slot(GpuId(g))]
                    .into_iter()
                    .flatten()
                {
                    assert!(touched.contains(&slot.job), "changed job not in dirty set");
                }
            }
        }

        // Rate 1: both evicted, then the fill step may re-admit them (it
        // considers all schedulable jobs) — but the *slots* will have been
        // rebuilt, so at minimum the operation ran; check evict-before-fill
        // by using empty betas to stop re-admission... instead check that
        // with no fill candidates the GPUs empty out. Use unknown limits:
        // simplest: verify the mutated schedule differs or jobs were
        // reassigned fresh at their limit.
        let (mutated, _) = mutate(&c, &s, 1.0, &mut DetRng::seed(6));
        for j in [JobId(0), JobId(1)] {
            if mutated.is_running(j) {
                assert!(mutated.global_batch(j) <= c.limit(j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "mutation rate")]
    fn invalid_mutation_rate_rejected() {
        let fx = Fixture::new(1);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let _ = mutate(&c, &Schedule::empty(8), 1.5, &mut DetRng::seed(1));
    }

    use ones_cluster::GpuId;
    use ones_simcore::DetRng;
    use ones_workload::JobId;
}
