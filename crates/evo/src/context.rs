//! Evolution context: the live state a generation is evaluated against.

use crate::cache::ThroughputCache;
use ones_cluster::{GpuId, Placement};
use ones_dlperf::ModelProfile;
use ones_schedcore::{ClusterView, JobSignature, JobStatus, Schedule};
use ones_stats::Beta;
use ones_workload::JobId;
use std::collections::BTreeMap;

/// Floor on the processed-sample count used in utilisation estimates, in
/// *epochs*: Eq 7's `Y_processed (1/ρ − 1)` degenerates to zero for jobs
/// that have not run yet, so fresh jobs are treated as having processed a
/// small fraction of an epoch.
pub const MIN_PROCESSED_EPOCHS: f64 = 0.1;

/// Everything one evolution generation needs, borrowed from the scheduler.
#[derive(Clone, Copy)]
pub struct EvoContext<'a> {
    /// Live cluster snapshot (telemetry, deployed schedule, perf model).
    pub view: &'a ClusterView<'a>,
    /// Per-job batch-size limits `R_j` maintained by the scaling policies
    /// (§3.3.2).
    pub limits: &'a BTreeMap<JobId, u32>,
    /// Per-job Beta progress predictions (Eq 6).
    pub betas: &'a BTreeMap<JobId, Beta>,
    /// Optional throughput memo table consulted by
    /// [`EvoContext::throughput_in`]. The memoised value is exact for a
    /// fixed view, so results are identical with or without it; the
    /// search owns one cache for its whole lifetime and invalidates
    /// per-job on view changes (see [`crate::cache`]).
    pub cache: Option<&'a ThroughputCache>,
}

impl<'a> EvoContext<'a> {
    /// An uncached context over borrowed scheduler state.
    #[must_use]
    pub fn new(
        view: &'a ClusterView<'a>,
        limits: &'a BTreeMap<JobId, u32>,
        betas: &'a BTreeMap<JobId, Beta>,
    ) -> Self {
        EvoContext {
            view,
            limits,
            betas,
            cache: None,
        }
    }

    /// The same context with throughput lookups memoised in `cache`.
    #[must_use]
    pub fn with_cache(&self, cache: &'a ThroughputCache) -> Self {
        EvoContext {
            cache: Some(cache),
            ..*self
        }
    }
}

impl EvoContext<'_> {
    /// Jobs that may appear in a schedule (not completed), in id order.
    #[must_use]
    pub fn schedulable(&self) -> Vec<&JobStatus> {
        self.view
            .jobs
            .values()
            .filter(|j| !j.is_completed())
            .collect()
    }

    /// Jobs that have never held a GPU (the *new* jobs the refresh
    /// operation places preferentially to avoid starvation).
    #[must_use]
    pub fn new_jobs(&self) -> Vec<&JobStatus> {
        self.schedulable()
            .into_iter()
            .filter(|j| j.first_start.is_none())
            .collect()
    }

    /// The batch-size limit `R_j`, defaulting to the submitted batch when
    /// the policy layer has not registered one.
    #[must_use]
    pub fn limit(&self, job: JobId) -> u32 {
        self.limits
            .get(&job)
            .copied()
            .unwrap_or_else(|| self.view.jobs.get(&job).map_or(1, |j| j.spec.submit_batch))
    }

    /// Model/dataset profile of a job.
    ///
    /// # Panics
    /// Panics if the job is unknown.
    #[must_use]
    pub fn profile(&self, job: JobId) -> ModelProfile {
        self.view.jobs[&job].spec.profile()
    }

    /// The Beta progress prediction for a job, with a weak default for
    /// jobs the predictor has not seen.
    #[must_use]
    pub fn beta(&self, job: JobId) -> Beta {
        self.betas
            .get(&job)
            .copied()
            .unwrap_or_else(|| Beta::new(1.0, 30.0))
    }

    /// GPUs per node of the cluster under evaluation — the parameter the
    /// placement-shape signatures fold.
    #[must_use]
    pub fn gpus_per_node(&self) -> u32 {
        self.view.spec.gpus_per_node
    }

    /// Throughput `X_j` of a job under a candidate schedule, samples/s.
    /// Zero if the job is not placed.
    ///
    /// When a [`ThroughputCache`] is installed the model is evaluated at
    /// most once per distinct `(job, placement shape, batches)`
    /// configuration; the cached value is the model's own output, so
    /// caching never changes a score.
    #[must_use]
    pub fn throughput_in(&self, schedule: &Schedule, job: JobId) -> f64 {
        let placement = schedule.placement(job);
        if placement.is_empty() {
            return 0.0;
        }
        let compute = || {
            let profile = self.profile(job);
            let batches = schedule.local_batches(job);
            self.view.perf.throughput(&profile, &batches, &placement)
        };
        match self.cache {
            Some(cache) => {
                let sig = schedule
                    .job_signature(job, self.gpus_per_node())
                    .expect("job is placed");
                cache.get_or_insert_with((job, sig.placement, sig.batches), compute)
            }
            None => compute(),
        }
    }

    /// Throughput `X_j` of a *hypothetical* assignment: `job` spread over
    /// `gpus` (in assignment order, as [`EvoContext::assign_evenly`] would
    /// place it) without materialising a trial schedule. Bit-identical to
    /// cloning the schedule, assigning, and calling
    /// [`EvoContext::throughput_in`] — the fill/scale-up search probes
    /// dozens of configurations per idle GPU, and the `O(total gpus)`
    /// clone per probe is what kept the derive phase from scaling past a
    /// few hundred GPUs.
    #[must_use]
    pub fn probe_throughput(&self, job: JobId, gpus: &[GpuId]) -> f64 {
        if gpus.is_empty() {
            return 0.0;
        }
        let profile = self.profile(job);
        // Replicate assign_evenly's split: target batch over |gpus|
        // workers, remainder to the first-listed.
        let c = gpus.len() as u32;
        let target = self.limit(job).min(profile.max_local_batch * c).max(c);
        let base = target / c;
        let rem = target % c;
        let mut pairs: Vec<(GpuId, u32)> = gpus
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, (base + u32::from((i as u32) < rem)).max(1)))
            .collect();
        // The model (and the batch-sequence hash) consume batches in
        // GPU-id order, exactly as a schedule would report them.
        pairs.sort_unstable_by_key(|&(g, _)| g);
        let placement: Placement = pairs.iter().map(|&(g, _)| g).collect();
        let batches: Vec<u32> = pairs.iter().map(|&(_, b)| b).collect();
        let compute = || self.view.perf.throughput(&profile, &batches, &placement);
        match self.cache {
            Some(cache) => {
                let spec = self.view.spec;
                let psig = JobSignature::placement_shape_hash(
                    placement.len() as u32,
                    placement.nodes_spanned(spec) as u32,
                    placement.max_runs_per_node(spec) as u32,
                );
                let bsig = JobSignature::batches_hash(batches.iter().copied());
                cache.get_or_insert_with((job, psig, bsig), compute)
            }
            None => compute(),
        }
    }

    /// Processed samples with the fresh-job floor applied.
    #[must_use]
    pub fn processed_samples(&self, job: JobId) -> f64 {
        let j = &self.view.jobs[&job];
        j.samples_processed
            .max(MIN_PROCESSED_EPOCHS * j.spec.dataset_size as f64)
    }

    /// Estimated remaining workload of a job in samples, given a sampled
    /// completion fraction ρ (Eq 7).
    #[must_use]
    pub fn remaining_workload(&self, job: JobId, rho: f64) -> f64 {
        ones_predictor::remaining_workload(self.processed_samples(job), rho)
    }

    /// Assigns `job` across `gpus` with a total batch of
    /// `min(R_j, per-GPU capacity × |gpus|)`, split evenly. Returns the
    /// resulting global batch (0 if nothing could be assigned).
    pub fn assign_evenly(&self, schedule: &mut Schedule, job: JobId, gpus: &[GpuId]) -> u32 {
        if gpus.is_empty() {
            return 0;
        }
        let profile = self.profile(job);
        let c = gpus.len() as u32;
        let target = self.limit(job).min(profile.max_local_batch * c).max(c); // at least one sample per worker
        let base = target / c;
        let rem = target % c;
        for (i, &g) in gpus.iter().enumerate() {
            let b = base + u32::from((i as u32) < rem);
            schedule.assign(g, job, b.max(1));
        }
        schedule.global_batch(job)
    }

    /// Caps every job in `schedule` at its limit `R_j`: if `B_j > R_j` the
    /// job keeps `⌊R_j·c_j/B_j⌋` GPUs (the refresh scale-down rule) and its
    /// batch is re-split to `R_j`; a job that would keep zero GPUs is
    /// evicted. Returns the jobs whose configuration changed, for
    /// delta-scoring dirty sets.
    pub fn enforce_limits(&self, schedule: &mut Schedule) -> Vec<JobId> {
        let running: Vec<(JobId, (u32, u32))> = schedule.running_jobs().into_iter().collect();
        let mut touched = Vec::new();
        for (job, (batch, gpus)) in running {
            let limit = self.limit(job);
            if batch <= limit {
                continue;
            }
            touched.push(job);
            let keep = (limit * gpus / batch) as usize;
            let placement = schedule.placement(job);
            schedule.evict(job);
            if keep == 0 {
                continue;
            }
            let kept: Vec<GpuId> = placement.gpus().iter().copied().take(keep).collect();
            self.assign_evenly(schedule, job, &kept);
        }
        touched
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for the evo test modules.

    use super::*;
    use ones_cluster::ClusterSpec;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
    use ones_schedcore::{JobPhase, JobStatus};
    use ones_simcore::SimTime;
    use ones_workload::JobSpec;

    /// A self-owned bundle from which an `EvoContext` can be borrowed.
    pub struct Fixture {
        pub spec: ClusterSpec,
        pub perf: PerfModel,
        pub jobs: BTreeMap<JobId, JobStatus>,
        pub deployed: Schedule,
        pub limits: BTreeMap<JobId, u32>,
        pub betas: BTreeMap<JobId, Beta>,
    }

    impl Fixture {
        /// `n_jobs` ResNet18/CIFAR10 jobs on a 2-node × 4-GPU cluster.
        /// Jobs with even ids are running-eligible; all start Waiting.
        pub fn new(n_jobs: u64) -> Fixture {
            let spec = ClusterSpec::new(2, 4);
            let perf = PerfModel::new(spec);
            let mut jobs = BTreeMap::new();
            let mut limits = BTreeMap::new();
            let mut betas = BTreeMap::new();
            for i in 0..n_jobs {
                let js = JobSpec {
                    id: JobId(i),
                    name: format!("j{i}"),
                    model: ModelKind::ResNet18,
                    dataset: DatasetKind::Cifar10,
                    dataset_size: 20_000,
                    submit_batch: 256,
                    max_safe_batch: 4096,
                    requested_gpus: 1,
                    arrival_secs: i as f64,
                    kill_after_secs: None,
                    convergence: ConvergenceModel {
                        reference_batch: 256,
                        ..ConvergenceModel::example()
                    },
                };
                jobs.insert(
                    JobId(i),
                    JobStatus::submitted(js, SimTime::from_secs(i as f64)),
                );
                limits.insert(JobId(i), 256);
                betas.insert(JobId(i), Beta::new(2.0, 20.0));
            }
            Fixture {
                spec,
                perf,
                jobs,
                deployed: Schedule::empty(8),
                limits,
                betas,
            }
        }

        /// Marks a job as running with some accumulated progress.
        pub fn start_job(&mut self, id: u64, epochs: u32) {
            let j = self.jobs.get_mut(&JobId(id)).unwrap();
            j.phase = JobPhase::Running;
            j.first_start = Some(SimTime::ZERO);
            j.epochs_done = epochs;
            j.samples_processed = f64::from(epochs) * j.spec.dataset_size as f64;
            j.exec_time = f64::from(epochs) * 10.0;
            j.throughput = 2000.0;
        }

        pub fn view(&self) -> ClusterView<'_> {
            ClusterView {
                now: SimTime::from_secs(100.0),
                spec: &self.spec,
                perf: &self.perf,
                jobs: &self.jobs,
                deployed: &self.deployed,
            }
        }
    }

    /// Borrows an `EvoContext` from a fixture and a view.
    pub fn ctx<'a>(fx: &'a Fixture, view: &'a ClusterView<'a>) -> EvoContext<'a> {
        EvoContext::new(view, &fx.limits, &fx.betas)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn schedulable_excludes_completed() {
        let mut fx = Fixture::new(3);
        fx.jobs.get_mut(&JobId(2)).unwrap().phase = ones_schedcore::JobPhase::Completed;
        let view = fx.view();
        let c = ctx(&fx, &view);
        assert_eq!(c.schedulable().len(), 2);
        assert_eq!(c.new_jobs().len(), 2);
    }

    #[test]
    fn new_jobs_excludes_previously_started() {
        let mut fx = Fixture::new(3);
        fx.start_job(0, 2);
        let view = fx.view();
        let c = ctx(&fx, &view);
        assert_eq!(c.new_jobs().len(), 2);
    }

    #[test]
    fn limit_defaults_to_submitted_batch() {
        let mut fx = Fixture::new(2);
        fx.limits.remove(&JobId(1));
        let view = fx.view();
        let c = ctx(&fx, &view);
        assert_eq!(c.limit(JobId(1)), 256);
        assert_eq!(c.limit(JobId(0)), 256);
    }

    #[test]
    fn assign_evenly_respects_limit_and_memory() {
        let fx = Fixture::new(1);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        let got = c.assign_evenly(&mut s, JobId(0), &[GpuId(0), GpuId(1), GpuId(2)]);
        assert_eq!(got, 256); // limit R = 256
        assert_eq!(s.gpu_count(JobId(0)), 3);
        let batches = s.local_batches(JobId(0));
        assert_eq!(batches.iter().sum::<u32>(), 256);
        assert!(batches.iter().all(|&b| (85..=86).contains(&b)));
    }

    #[test]
    fn enforce_limits_scales_down_over_budget_jobs() {
        let mut fx = Fixture::new(1);
        fx.limits.insert(JobId(0), 128);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        // 4 GPUs × 128 = 512 > R = 128 -> keep ⌊128·4/512⌋ = 1 GPU at B=128.
        for g in 0..4 {
            s.assign(GpuId(g), JobId(0), 128);
        }
        c.enforce_limits(&mut s);
        assert_eq!(s.gpu_count(JobId(0)), 1);
        assert_eq!(s.global_batch(JobId(0)), 128);
    }

    #[test]
    fn enforce_limits_evicts_when_nothing_fits() {
        let mut fx = Fixture::new(1);
        fx.limits.insert(JobId(0), 16);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let mut s = Schedule::empty(8);
        for g in 0..8 {
            s.assign(GpuId(g), JobId(0), 64); // B = 512, R = 16 -> keep 0
        }
        c.enforce_limits(&mut s);
        assert!(!s.is_running(JobId(0)));
    }

    #[test]
    fn throughput_zero_for_unplaced() {
        let fx = Fixture::new(1);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let s = Schedule::empty(8);
        assert_eq!(c.throughput_in(&s, JobId(0)), 0.0);
    }

    #[test]
    fn cached_throughput_matches_uncached() {
        let mut fx = Fixture::new(2);
        fx.start_job(0, 3);
        let view = fx.view();
        let c = ctx(&fx, &view);
        let cache = crate::cache::ThroughputCache::new();
        let cached = c.with_cache(&cache);
        let mut s = Schedule::empty(8);
        s.assign(GpuId(0), JobId(0), 128);
        s.assign(GpuId(1), JobId(0), 128);
        s.assign(GpuId(4), JobId(1), 64);
        for job in [JobId(0), JobId(1)] {
            let plain = c.throughput_in(&s, job);
            assert!(plain > 0.0);
            assert_eq!(cached.throughput_in(&s, job), plain); // miss: computes
            assert_eq!(cached.throughput_in(&s, job), plain); // hit: memoised
        }
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        // Unplaced jobs bypass the cache entirely.
        assert_eq!(cached.throughput_in(&Schedule::empty(8), JobId(0)), 0.0);
        assert_eq!(cache.misses() + cache.hits(), 4);
    }

    #[test]
    fn probe_throughput_matches_trial_schedule() {
        // probe_throughput must be bit-identical to materialising the
        // trial schedule it describes — the fill search compares its
        // results against schedule-derived throughputs.
        let mut fx = Fixture::new(2);
        fx.start_job(0, 3);
        let view = fx.view();
        let cache = crate::cache::ThroughputCache::new();
        let c = ctx(&fx, &view).with_cache(&cache);
        let plain = ctx(&fx, &view);
        for gpus in [
            vec![GpuId(0)],
            vec![GpuId(1), GpuId(2), GpuId(0)], // assignment order ≠ id order
            vec![GpuId(4), GpuId(2)],           // cross-node
            (0..8).map(GpuId).collect::<Vec<_>>(),
        ] {
            let probe = c.probe_throughput(JobId(0), &gpus);
            let mut trial = Schedule::empty(8);
            plain.assign_evenly(&mut trial, JobId(0), &gpus);
            let direct = plain.throughput_in(&trial, JobId(0));
            assert_eq!(probe.to_bits(), direct.to_bits(), "gpus={gpus:?}");
            // And the probe's cache entry serves the schedule-keyed
            // lookup for the same configuration (shared signature space).
            let hits = cache.hits();
            assert_eq!(c.throughput_in(&trial, JobId(0)).to_bits(), probe.to_bits());
            assert_eq!(cache.hits(), hits + 1, "schedule lookup should hit");
        }
        assert_eq!(c.probe_throughput(JobId(0), &[]), 0.0);
    }

    #[test]
    fn fresh_job_workload_floor_applies() {
        let fx = Fixture::new(1);
        let view = fx.view();
        let c = ctx(&fx, &view);
        // Never ran: floor = 0.1 epochs of 20k samples = 2000.
        assert!((c.processed_samples(JobId(0)) - 2000.0).abs() < 1e-9);
        assert!(c.remaining_workload(JobId(0), 0.5) > 0.0);
    }
}
