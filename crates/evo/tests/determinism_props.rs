//! Property-based determinism tests for the hot-loop accelerations:
//! the generation-scoped throughput cache and parallel candidate
//! derivation are pure optimisations, so for *any* live state and seed
//! they must leave scores and selected schedules bit-identical.

use ones_cluster::{ClusterSpec, GpuId};
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
use ones_evo::{sample_rhos, EvoConfig, EvoContext, EvolutionarySearch, ThroughputCache};
use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
use ones_simcore::{DetRng, SimTime};
use ones_stats::Beta;
use ones_workload::{JobId, JobSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

const GPUS: u32 = 8;

struct Fixture {
    spec: ClusterSpec,
    perf: PerfModel,
    jobs: BTreeMap<JobId, JobStatus>,
    deployed: Schedule,
    limits: BTreeMap<JobId, u32>,
    betas: BTreeMap<JobId, Beta>,
}

fn fixture(n_jobs: u64, running_mask: u64, epochs: &[u32]) -> Fixture {
    let spec = ClusterSpec::new(2, 4);
    let mut jobs = BTreeMap::new();
    let mut limits = BTreeMap::new();
    let mut betas = BTreeMap::new();
    for i in 0..n_jobs {
        let js = JobSpec {
            id: JobId(i),
            name: format!("j{i}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 1,
            arrival_secs: i as f64,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut st = JobStatus::submitted(js, SimTime::from_secs(i as f64));
        if running_mask & (1 << i) != 0 {
            let e = epochs[(i as usize) % epochs.len()];
            st.phase = JobPhase::Running;
            st.first_start = Some(SimTime::from_secs(i as f64));
            st.epochs_done = e;
            st.samples_processed = f64::from(e) * 20_000.0;
            st.exec_time = f64::from(e) * 8.0;
        }
        limits.insert(JobId(i), 256 << (i % 4));
        betas.insert(
            JobId(i),
            Beta::new(1.0 + (i % 7) as f64, 3.0 + (i % 11) as f64),
        );
        jobs.insert(JobId(i), st);
    }
    Fixture {
        spec,
        perf: PerfModel::new(spec),
        jobs,
        deployed: Schedule::empty(GPUS),
        limits,
        betas,
    }
}

/// A random (possibly illegal w.r.t. limits) genome over the fixture jobs.
fn genome(slots: &[Option<(u64, u32)>]) -> Schedule {
    let mut s = Schedule::empty(GPUS);
    for (i, slot) in slots.iter().enumerate() {
        if let Some((job, batch)) = slot {
            s.assign(GpuId(i as u32), JobId(*job), (*batch).max(1));
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scoring through a shared [`ThroughputCache`] returns exactly the
    /// scores uncached evaluation produces, for arbitrary candidate pools
    /// — the cache key (job + placement/batch signature) never aliases
    /// distinct configurations.
    #[test]
    fn cached_scoring_matches_uncached(
        pool in proptest::collection::vec(
            proptest::collection::vec(
                proptest::option::of((0u64..6, 1u32..2048)), GPUS as usize),
            1..12),
        running_mask in 0u64..64,
        seed in 0u64..1000,
    ) {
        let fx = fixture(6, running_mask, &[1, 4, 9]);
        let view = ClusterView {
            now: SimTime::from_secs(500.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        let cache = ThroughputCache::new();
        let cached_ctx = ctx.with_cache(&cache);
        let candidates: Vec<Schedule> = pool.iter().map(|s| genome(s)).collect();
        let rhos = sample_rhos(&ctx, &mut DetRng::seed(seed));

        let plain = ones_evo::scoring::score_all(&ctx, &candidates, &rhos);
        // Score twice through the cache: the first pass populates it, the
        // second is served mostly by hits — both must match bit-for-bit.
        let first = ones_evo::scoring::score_all(&cached_ctx, &candidates, &rhos);
        let second = ones_evo::scoring::score_all(&cached_ctx, &candidates, &rhos);
        prop_assert_eq!(&plain, &first);
        prop_assert_eq!(&plain, &second);
    }

    /// A full generation is bit-identical across all four feature
    /// combinations (cache × parallel derivation), for arbitrary live
    /// state and seeds.
    #[test]
    fn generation_invariant_under_cache_and_parallelism(
        running_mask in 0u64..64,
        seed in 0u64..500,
    ) {
        let fx = fixture(6, running_mask, &[1, 2, 8, 20]);
        let view = ClusterView {
            now: SimTime::from_secs(300.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);

        let mut searches: Vec<EvolutionarySearch> = [
            (false, false),
            (false, true),
            (true, false),
            (true, true),
        ]
        .iter()
        .map(|&(use_cache, parallel_derive)| {
            let mut cfg = EvoConfig::for_cluster(GPUS);
            cfg.use_cache = use_cache;
            cfg.parallel_derive = parallel_derive;
            EvolutionarySearch::new(cfg, DetRng::seed(seed))
        })
        .collect();

        for g in 0..2 {
            let reference = searches[0].generation(&ctx);
            for (v, s) in searches.iter_mut().enumerate().skip(1) {
                let best = s.generation(&ctx);
                prop_assert_eq!(
                    &reference, &best,
                    "S_* diverged for variant {} at generation {}", v, g
                );
            }
            for (v, s) in searches.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    searches[0].population(), s.population(),
                    "population diverged for variant {} at generation {}", v, g
                );
            }
        }
    }
}
