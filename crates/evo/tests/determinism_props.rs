//! Property-based determinism tests for the hot-loop accelerations:
//! the search-scoped throughput cache (with per-job invalidation),
//! delta scoring over per-op dirty sets, and parallel candidate
//! derivation are pure optimisations, so for *any* live state and seed
//! they must leave scores and selected schedules bit-identical.

use ones_cluster::{ClusterSpec, GpuId};
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
use ones_evo::{
    ops, sample_rhos, EvoConfig, EvoContext, EvolutionarySearch, ScoreCard, ThroughputCache,
};
use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
use ones_simcore::{DetRng, SimTime};
use ones_stats::Beta;
use ones_workload::{JobId, JobSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

const GPUS: u32 = 8;

struct Fixture {
    spec: ClusterSpec,
    perf: PerfModel,
    jobs: BTreeMap<JobId, JobStatus>,
    deployed: Schedule,
    limits: BTreeMap<JobId, u32>,
    betas: BTreeMap<JobId, Beta>,
}

fn fixture(n_jobs: u64, running_mask: u64, epochs: &[u32]) -> Fixture {
    let spec = ClusterSpec::new(2, 4);
    let mut jobs = BTreeMap::new();
    let mut limits = BTreeMap::new();
    let mut betas = BTreeMap::new();
    for i in 0..n_jobs {
        let js = JobSpec {
            id: JobId(i),
            name: format!("j{i}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 1,
            arrival_secs: i as f64,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut st = JobStatus::submitted(js, SimTime::from_secs(i as f64));
        if running_mask & (1 << i) != 0 {
            let e = epochs[(i as usize) % epochs.len()];
            st.phase = JobPhase::Running;
            st.first_start = Some(SimTime::from_secs(i as f64));
            st.epochs_done = e;
            st.samples_processed = f64::from(e) * 20_000.0;
            st.exec_time = f64::from(e) * 8.0;
        }
        limits.insert(JobId(i), 256 << (i % 4));
        betas.insert(
            JobId(i),
            Beta::new(1.0 + (i % 7) as f64, 3.0 + (i % 11) as f64),
        );
        jobs.insert(JobId(i), st);
    }
    Fixture {
        spec,
        perf: PerfModel::new(spec),
        jobs,
        deployed: Schedule::empty(GPUS),
        limits,
        betas,
    }
}

/// A random (possibly illegal w.r.t. limits) genome over the fixture jobs.
fn genome(slots: &[Option<(u64, u32)>]) -> Schedule {
    let mut s = Schedule::empty(GPUS);
    for (i, slot) in slots.iter().enumerate() {
        if let Some((job, batch)) = slot {
            s.assign(GpuId(i as u32), JobId(*job), (*batch).max(1));
        }
    }
    s
}

/// Asserts a delta-derived card is bit-identical to a from-scratch one,
/// entry by entry (jobs, signatures, and the `u` factors' exact bits).
fn assert_card_matches_full(
    ctx: &EvoContext<'_>,
    child: &Schedule,
    derived: &ScoreCard,
) -> Result<(), TestCaseError> {
    let full = ScoreCard::build(ctx, child);
    prop_assert_eq!(derived.len(), full.len(), "card covers wrong job set");
    for (d, f) in derived.entries().iter().zip(full.entries()) {
        prop_assert_eq!(d.job, f.job);
        prop_assert_eq!(d.placement, f.placement, "{}: placement hash", d.job);
        prop_assert_eq!(d.batches, f.batches, "{}: batches hash", d.job);
        prop_assert_eq!(d.gpus, f.gpus, "{}: gpu count", d.job);
        prop_assert_eq!(
            d.u.to_bits(),
            f.u.to_bits(),
            "{}: u factor diverged ({} vs {})",
            d.job,
            d.u,
            f.u
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scoring through a shared [`ThroughputCache`] returns exactly the
    /// scores uncached evaluation produces, for arbitrary candidate pools
    /// — the cache key (job + placement/batch signature) never aliases
    /// distinct configurations.
    #[test]
    fn cached_scoring_matches_uncached(
        pool in proptest::collection::vec(
            proptest::collection::vec(
                proptest::option::of((0u64..6, 1u32..2048)), GPUS as usize),
            1..12),
        running_mask in 0u64..64,
        seed in 0u64..1000,
    ) {
        let fx = fixture(6, running_mask, &[1, 4, 9]);
        let view = ClusterView {
            now: SimTime::from_secs(500.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        let cache = ThroughputCache::new();
        let cached_ctx = ctx.with_cache(&cache);
        let candidates: Vec<Schedule> = pool.iter().map(|s| genome(s)).collect();
        let rhos = sample_rhos(&ctx, &mut DetRng::seed(seed));

        let plain = ones_evo::scoring::score_all(&ctx, &candidates, &rhos);
        // Score twice through the cache: the first pass populates it, the
        // second is served mostly by hits — both must match bit-for-bit.
        let first = ones_evo::scoring::score_all(&cached_ctx, &candidates, &rhos);
        let second = ones_evo::scoring::score_all(&cached_ctx, &candidates, &rhos);
        prop_assert_eq!(&plain, &first);
        prop_assert_eq!(&plain, &second);
    }

    /// A full generation is bit-identical across all four feature
    /// combinations (cache × parallel derivation), for arbitrary live
    /// state and seeds.
    #[test]
    fn generation_invariant_under_cache_and_parallelism(
        running_mask in 0u64..64,
        seed in 0u64..500,
    ) {
        let fx = fixture(6, running_mask, &[1, 2, 8, 20]);
        let view = ClusterView {
            now: SimTime::from_secs(300.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);

        let mut searches: Vec<EvolutionarySearch> = [
            (false, false),
            (false, true),
            (true, false),
            (true, true),
        ]
        .iter()
        .map(|&(use_cache, parallel_derive)| {
            let mut cfg = EvoConfig::for_cluster(GPUS);
            cfg.use_cache = use_cache;
            cfg.parallel_derive = parallel_derive;
            EvolutionarySearch::new(cfg, DetRng::seed(seed))
        })
        .collect();

        for g in 0..2 {
            let reference = searches[0].generation(&ctx);
            for (v, s) in searches.iter_mut().enumerate().skip(1) {
                let best = s.generation(&ctx);
                prop_assert_eq!(
                    &reference, &best,
                    "S_* diverged for variant {} at generation {}", v, g
                );
            }
            for (v, s) in searches.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    searches[0].population(), s.population(),
                    "population diverged for variant {} at generation {}", v, g
                );
            }
        }
    }

    /// Delta-derived score cards are bit-identical to full rebuilds for
    /// every op kind (refresh, crossover — both children —, mutation,
    /// direct fill, and the reorder layout fast path), for arbitrary
    /// genomes and live state.
    #[test]
    fn delta_cards_match_full_rescore_for_every_op(
        a_slots in proptest::collection::vec(
            proptest::option::of((0u64..6, 1u32..2048)), GPUS as usize),
        b_slots in proptest::collection::vec(
            proptest::option::of((0u64..6, 1u32..2048)), GPUS as usize),
        running_mask in 0u64..64,
        rate in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let fx = fixture(6, running_mask, &[1, 3, 9]);
        let view = ClusterView {
            now: SimTime::from_secs(500.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        let cache = ThroughputCache::new();
        let ctx = ctx.with_cache(&cache);
        let a = genome(&a_slots);
        let b = genome(&b_slots);
        let card_a = ScoreCard::build(&ctx, &a);
        let card_b = ScoreCard::build(&ctx, &b);
        let no_dirty = ones_schedcore::DirtySet::new();
        let mut rng = DetRng::seed(seed);

        // refresh, then the reorder layout path on its output.
        let (r, rdirty) = ops::refresh(&ctx, &a, &mut rng);
        let derived = ScoreCard::derive(&ctx, &r, &card_a, &rdirty, None);
        assert_card_matches_full(&ctx, &r, &derived)?;
        let (packed, layout) = r.reordered_with_layout();
        let derived_packed = ScoreCard::derive(&ctx, &packed, &derived, &no_dirty, Some(&layout));
        assert_card_matches_full(&ctx, &packed, &derived_packed)?;

        // crossover: one dirty set serves both children's derivations.
        let (c1, c2, xdirty) = ops::crossover(&a, &b, &mut rng);
        let d1 = ScoreCard::derive(&ctx, &c1, &card_a, &xdirty, None);
        assert_card_matches_full(&ctx, &c1, &d1)?;
        let d2 = ScoreCard::derive(&ctx, &c2, &card_b, &xdirty, None);
        assert_card_matches_full(&ctx, &c2, &d2)?;

        // mutate (preempt + refill), then reorder on top — the search's
        // real derive pipeline for a mutant.
        let (m, mdirty) = ops::mutate(&ctx, &a, rate, &mut rng);
        let dm = ScoreCard::derive(&ctx, &m, &card_a, &mdirty, None);
        assert_card_matches_full(&ctx, &m, &dm)?;
        let (mp, mlayout) = m.reordered_with_layout();
        let dmp = ScoreCard::derive(&ctx, &mp, &dm, &no_dirty, Some(&mlayout));
        assert_card_matches_full(&ctx, &mp, &dmp)?;

        // fill_idle applied in place.
        let mut f = a.clone();
        let fdirty = ops::fill_idle(&ctx, &mut f, &mut rng);
        let df = ScoreCard::derive(&ctx, &f, &card_a, &fdirty, None);
        assert_card_matches_full(&ctx, &f, &df)?;
    }

    /// A persistent delta-scored search whose cross-generation cache is
    /// invalidated per job event stays bit-identical to a plain search
    /// (no cache, no delta scoring) over a replay trace with kills,
    /// arrivals and epoch ends mutating the live state between
    /// generations.
    #[test]
    fn persistent_cache_with_invalidation_matches_plain_search(
        kills in proptest::collection::vec(0u64..6, 1..4),
        seed in 0u64..500,
    ) {
        let mut fx = fixture(6, 0b111, &[1, 2, 8]);
        let delta_cfg = EvoConfig::for_cluster(GPUS);
        prop_assert!(delta_cfg.delta_score && delta_cfg.use_cache);
        let mut plain_cfg = delta_cfg;
        plain_cfg.use_cache = false;
        plain_cfg.delta_score = false;
        plain_cfg.parallel_derive = false;
        let mut delta = EvolutionarySearch::new(delta_cfg, DetRng::seed(seed));
        let mut plain = EvolutionarySearch::new(plain_cfg, DetRng::seed(seed));

        for (step, &k) in kills.iter().enumerate() {
            {
                let view = ClusterView {
                    now: SimTime::from_secs(100.0 * (step as f64 + 1.0)),
                    spec: &fx.spec,
                    perf: &fx.perf,
                    jobs: &fx.jobs,
                    deployed: &fx.deployed,
                };
                let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
                let b_delta = delta.generation(&ctx);
                let b_plain = plain.generation(&ctx);
                prop_assert_eq!(&b_delta, &b_plain, "S_* diverged at step {}", step);
                prop_assert_eq!(
                    delta.population(), plain.population(),
                    "population diverged at step {}", step
                );
            }

            // Kill job k (trace kill / completion).
            let killed = JobId(k);
            fx.jobs.get_mut(&killed).unwrap().phase = JobPhase::Completed;
            delta.invalidate_job(killed);
            // Every surviving running job ends an epoch.
            let epoch_ended: Vec<JobId> = fx
                .jobs
                .iter_mut()
                .filter(|(_, st)| st.is_running())
                .map(|(&id, st)| {
                    st.epochs_done += 1;
                    st.samples_processed += 20_000.0;
                    st.exec_time += 8.0;
                    id
                })
                .collect();
            for id in epoch_ended {
                delta.invalidate_job(id);
            }
            // A new job arrives.
            let new_id = JobId(100 + step as u64);
            let js = JobSpec {
                id: new_id,
                name: format!("arrival{step}"),
                model: ModelKind::ResNet18,
                dataset: DatasetKind::Cifar10,
                dataset_size: 20_000,
                submit_batch: 256,
                max_safe_batch: 4096,
                requested_gpus: 1,
                arrival_secs: 100.0 * (step as f64 + 1.0),
                kill_after_secs: None,
                convergence: ConvergenceModel {
                    reference_batch: 256,
                    ..ConvergenceModel::example()
                },
            };
            fx.jobs.insert(
                new_id,
                JobStatus::submitted(js, SimTime::from_secs(100.0 * (step as f64 + 1.0))),
            );
            fx.limits.insert(new_id, 256);
            fx.betas.insert(new_id, Beta::new(1.0, 3.0));
            delta.invalidate_job(new_id);
        }

        // One final generation over the fully mutated state.
        let view = ClusterView {
            now: SimTime::from_secs(1_000.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        prop_assert_eq!(delta.generation(&ctx), plain.generation(&ctx));
        prop_assert_eq!(delta.population(), plain.population());
        // The persistent cache must actually have been reused across
        // generations (warm hits) for the test to mean anything.
        prop_assert!(
            delta.perf_counters().cache_hits_last_gen > 0,
            "final generation never hit the warm cache"
        );
    }
}
