//! Property-based tests for the evolution operations: whatever random
//! genomes and live state they are given, the operators must emit legal
//! schedules (memory limits, batch limits, no phantom jobs) — illegal
//! candidates would be rejected by the simulator's deploy validation and
//! crash the scheduler.

use ones_cluster::{ClusterSpec, GpuId};
use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
use ones_evo::{ops, EvoConfig, EvoContext, EvolutionarySearch};
use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
use ones_simcore::{DetRng, SimTime};
use ones_stats::Beta;
use ones_workload::{JobId, JobSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

const GPUS: u32 = 8;

struct Fixture {
    spec: ClusterSpec,
    perf: PerfModel,
    jobs: BTreeMap<JobId, JobStatus>,
    deployed: Schedule,
    limits: BTreeMap<JobId, u32>,
    betas: BTreeMap<JobId, Beta>,
}

fn fixture(n_jobs: u64, running_mask: u64, epochs: &[u32]) -> Fixture {
    let spec = ClusterSpec::new(2, 4);
    let mut jobs = BTreeMap::new();
    let mut limits = BTreeMap::new();
    let mut betas = BTreeMap::new();
    for i in 0..n_jobs {
        let js = JobSpec {
            id: JobId(i),
            name: format!("j{i}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 1,
            arrival_secs: i as f64,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut st = JobStatus::submitted(js, SimTime::from_secs(i as f64));
        if running_mask & (1 << i) != 0 {
            let e = epochs[(i as usize) % epochs.len()];
            st.phase = JobPhase::Running;
            st.first_start = Some(SimTime::from_secs(i as f64));
            st.epochs_done = e;
            st.samples_processed = f64::from(e) * 20_000.0;
            st.exec_time = f64::from(e) * 8.0;
        }
        limits.insert(JobId(i), 256 << (i % 4));
        betas.insert(
            JobId(i),
            Beta::new(1.0 + (i % 7) as f64, 3.0 + (i % 11) as f64),
        );
        jobs.insert(JobId(i), st);
    }
    Fixture {
        spec,
        perf: PerfModel::new(spec),
        jobs,
        deployed: Schedule::empty(GPUS),
        limits,
        betas,
    }
}

/// A random (possibly illegal w.r.t. limits) genome over the fixture jobs.
fn genome(slots: &[Option<(u64, u32)>]) -> Schedule {
    let mut s = Schedule::empty(GPUS);
    for (i, slot) in slots.iter().enumerate() {
        if let Some((job, batch)) = slot {
            s.assign(GpuId(i as u32), JobId(*job), (*batch).max(1));
        }
    }
    s
}

fn assert_legal(fx: &Fixture, s: &Schedule) -> Result<(), TestCaseError> {
    s.validate(&fx.spec, |j| {
        fx.jobs
            .get(&j)
            .map_or(0, |st| st.spec.profile().max_local_batch)
    })
    .map_err(TestCaseError::fail)?;
    for (job, (batch, _)) in s.running_jobs() {
        prop_assert!(fx.jobs.contains_key(&job), "phantom job {job}");
        prop_assert!(
            batch <= *fx.limits.get(&job).unwrap_or(&u32::MAX),
            "{job} over its limit"
        );
        prop_assert!(
            !fx.jobs[&job].is_completed(),
            "{job} is completed but scheduled"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// refresh() always emits a legal schedule, whatever stale genome it
    /// starts from.
    #[test]
    fn refresh_always_legal(
        slots in proptest::collection::vec(
            proptest::option::of((0u64..6, 1u32..4096)), GPUS as usize),
        running_mask in 0u64..64,
        seed in 0u64..1000,
    ) {
        let fx = fixture(6, running_mask, &[1, 3, 9]);
        let view = ClusterView {
            now: SimTime::from_secs(500.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        let stale = genome(&slots);
        let mut rng = DetRng::seed(seed);
        let (refreshed, _) = ops::refresh(&ctx, &stale, &mut rng);
        assert_legal(&fx, &refreshed)?;
    }

    /// crossover children partition their parents' slots exactly.
    #[test]
    fn crossover_partitions_parents(
        a_slots in proptest::collection::vec(
            proptest::option::of((0u64..6, 1u32..512)), GPUS as usize),
        b_slots in proptest::collection::vec(
            proptest::option::of((0u64..6, 1u32..512)), GPUS as usize),
        seed in 0u64..1000,
    ) {
        let a = genome(&a_slots);
        let b = genome(&b_slots);
        let mut rng = DetRng::seed(seed);
        let (c1, c2, dirty) = ops::crossover(&a, &b, &mut rng);
        for g in 0..GPUS {
            let gpu = GpuId(g);
            let child = [c1.slot(gpu), c2.slot(gpu)];
            let parent = [a.slot(gpu), b.slot(gpu)];
            let direct = child[0] == parent[0] && child[1] == parent[1];
            let swapped = child[0] == parent[1] && child[1] == parent[0];
            prop_assert!(direct || swapped, "gpu {g}: slots invented or lost");
            // Dirty-set contract: any slot that changed relative to the
            // same-side parent names only dirty jobs.
            if child[0] != parent[0] {
                for slot in [child[0], parent[0], child[1], parent[1]].into_iter().flatten() {
                    prop_assert!(dirty.contains(&slot.job), "gpu {g}: changed job not dirty");
                }
            }
        }
    }

    /// mutate() emits legal schedules at any rate.
    #[test]
    fn mutate_always_legal(
        slots in proptest::collection::vec(
            proptest::option::of((0u64..6, 1u32..256)), GPUS as usize),
        rate in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let fx = fixture(6, 0b111111, &[2, 5]);
        let view = ClusterView {
            now: SimTime::from_secs(500.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        let mut rng = DetRng::seed(seed);
        let (mutated, _) = ops::mutate(&ctx, &genome(&slots), rate, &mut rng);
        // Mutation fills via resume/scale-up which respect limits; the
        // input genome itself may be over-limit, so only check structure +
        // no phantom/completed jobs here plus memory validity.
        mutated
            .validate(&fx.spec, |j| {
                fx.jobs.get(&j).map_or(0, |st| st.spec.profile().max_local_batch)
            })
            .map_err(TestCaseError::fail)?;
    }

    /// A full generation emits only legal members, for arbitrary live
    /// state.
    #[test]
    fn generation_population_always_legal(
        running_mask in 0u64..64,
        seed in 0u64..500,
    ) {
        let fx = fixture(6, running_mask, &[1, 2, 8, 20]);
        let view = ClusterView {
            now: SimTime::from_secs(300.0),
            spec: &fx.spec,
            perf: &fx.perf,
            jobs: &fx.jobs,
            deployed: &fx.deployed,
        };
        let ctx = EvoContext::new(&view, &fx.limits, &fx.betas);
        let mut search = EvolutionarySearch::new(EvoConfig::for_cluster(GPUS), DetRng::seed(seed));
        let best = search.generation(&ctx);
        assert_legal(&fx, &best)?;
        for member in search.population() {
            assert_legal(&fx, member)?;
        }
    }
}
