//! Model-checked interleavings of the throughput cache's two protocols:
//! the racing-compute accounting and the invalidation-stamp discard.
//!
//! Compiled only under `RUSTFLAGS="--cfg ones_loom"`; run via
//! `RUN_LOOM=1 scripts/ci.sh` or directly with
//! `RUSTFLAGS="--cfg ones_loom" cargo test -p ones-evo --test loom_cache`.
//! Every assertion executes inside the model, i.e. once per explored
//! interleaving — a counterexample panics with the failing schedule.
#![cfg(ones_loom)]

use ones_evo::cache::ThroughputCache;
use ones_sync::atomic::{AtomicU64, Ordering};
use ones_sync::model::{model_with, thread, Options};
use ones_sync::Arc;
use ones_workload::JobId;

fn opts(preemption_bound: u32) -> Options {
    Options {
        preemption_bound,
        ..Options::default()
    }
}

/// Two threads race `get_or_insert_with` on one key of a single-shard
/// cache. In *every* interleaving: exactly one insert lands, the loser is
/// served the landed value, and the counters balance exactly —
/// `hits + misses == lookups`, with any duplicated model evaluation in
/// `duplicate_computes` rather than inflating `misses`.
#[test]
fn racing_computes_account_exactly() {
    let iterations = model_with(opts(2), || {
        let cache = Arc::new(ThroughputCache::with_shards(1));
        let key = (JobId(1), 10, 20);

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let v = cache.get_or_insert_with(key, || 42.5);
                    assert_eq!(v, 42.5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let (hits, misses) = (cache.hits(), cache.misses());
        assert_eq!(hits + misses, 2, "hits + misses == lookups, exactly");
        assert_eq!(misses, 1, "exactly one insert lands per key");
        assert_eq!(hits, 1, "the second lookup is served, however it raced");
        assert!(cache.duplicate_computes() <= 1);
        assert_eq!(cache.len(), 1);
    });
    assert!(
        iterations >= 10,
        "expected a real interleaving space, explored only {iterations}"
    );
}

/// A compute can straddle `invalidate_job`: it reads the pre-update
/// ground truth but finishes after the invalidation. The stamp protocol
/// must discard its insert, so no interleaving leaves the stale value in
/// the table — the cache either ends empty or holds the new truth.
#[test]
fn invalidation_stamp_blocks_stale_republish() {
    let iterations = model_with(opts(2), || {
        let cache = Arc::new(ThroughputCache::with_shards(1));
        // Ground truth the cached values are computed from; bumped by the
        // invalidator to 1 before the invalidation, so any 0.0 left in
        // the table afterwards is a stale republish.
        let truth = Arc::new(AtomicU64::new(0));
        let key = (JobId(7), 1, 2);

        let reader = {
            let (cache, truth) = (Arc::clone(&cache), Arc::clone(&truth));
            thread::spawn(move || {
                cache.get_or_insert_with(key, || truth.load(Ordering::SeqCst) as f64)
            })
        };
        let invalidator = {
            let (cache, truth) = (Arc::clone(&cache), Arc::clone(&truth));
            thread::spawn(move || {
                truth.store(1, Ordering::SeqCst);
                cache.invalidate_job(JobId(7));
            })
        };
        let served = reader.join().unwrap();
        invalidator.join().unwrap();

        // The racer was served *some* consistent evaluation…
        assert!(served == 0.0 || served == 1.0);
        // …but whatever survived in the table must be the new truth: a
        // fresh lookup may recompute (cache empty) or hit, never see 0.0.
        let fresh = cache.get_or_insert_with(key, || truth.load(Ordering::SeqCst) as f64);
        assert_eq!(fresh, 1.0, "stale pre-invalidation value republished");
        assert_eq!(
            cache.hits() + cache.misses(),
            2,
            "accounting stays exact across the invalidation race"
        );
    });
    assert!(
        iterations >= 10,
        "expected a real interleaving space, explored only {iterations}"
    );
}
