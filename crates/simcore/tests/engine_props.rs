//! Property-based tests for the discrete-event primitives: the queue's
//! ordering contract and the RNG's determinism/independence guarantees
//! must hold for arbitrary inputs — a simulation built on a queue that
//! ever pops out of order silently corrupts every experiment downstream.

use ones_simcore::{DetRng, EventQueue, SimTime};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pops come out sorted by time, FIFO within equal times, and every
    /// pushed event comes back exactly once.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u32..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((at, payload)) = q.pop() {
            popped.push((at, payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t1, (_, i1)), (t2, (_, i2))) = (&w[0], &w[1]);
            prop_assert!(t1 <= t2, "time order violated");
            if t1 == t2 {
                prop_assert!(i1 < i2, "FIFO violated for simultaneous events");
            }
        }
        // Every payload returned exactly once.
        let mut ids: Vec<usize> = popped.iter().map(|(_, (_, i))| *i).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    }

    /// retain() keeps exactly the matching events and preserves their
    /// relative order.
    #[test]
    fn queue_retain_is_a_filter(times in proptest::collection::vec(0u32..100, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), i);
        }
        q.retain(|&i| i % 3 != 0);
        let kept: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert!(kept.iter().all(|i| i % 3 != 0));
        let expected = times.iter().enumerate().filter(|(i, _)| i % 3 != 0).count();
        prop_assert_eq!(kept.len(), expected);
    }

    /// Same seed ⇒ identical stream; forks keyed by label are mutually
    /// independent of fork order and parent consumption.
    #[test]
    fn rng_fork_laws(seed in any::<u64>(), label in "[a-z]{1,12}", burn in 0usize..50) {
        let mut parent_a = DetRng::seed(seed);
        let parent_b = DetRng::seed(seed);
        for _ in 0..burn {
            let _ = parent_a.next_u64(); // consume parent state
        }
        let mut fa = parent_a.fork(&label);
        let mut fb = parent_b.fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// Uniform and exponential samples respect their supports for any
    /// seed.
    #[test]
    fn rng_sample_supports(seed in any::<u64>(), rate in 0.001f64..10.0) {
        let mut r = DetRng::seed(seed);
        for _ in 0..100 {
            let u = r.uniform();
            prop_assert!((0.0..1.0).contains(&u));
            let e = r.exponential(rate);
            prop_assert!(e >= 0.0 && e.is_finite());
        }
    }

    /// Shuffle is a permutation for any input.
    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), n in 0usize..200) {
        let mut r = DetRng::seed(seed);
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
