//! Structured simulation trace log.
//!
//! The simulator appends a [`TraceEvent`] for every externally observable
//! state transition (job arrival, start, preemption, scaling, completion…).
//! Tests and experiment harnesses query the log to compute metrics and to
//! assert causal invariants (e.g. a job never completes before it starts).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One observable state transition in a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Subsystem-defined category, e.g. `"job"`, `"sched"`, `"scale"`.
    pub kind: String,
    /// Entity the transition concerns (typically a job id).
    pub subject: u64,
    /// Human-readable detail.
    pub detail: String,
}

/// An append-only, time-ordered log of trace events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    /// Panics (in debug builds) if `at` precedes the last recorded event —
    /// the simulator only ever appends in time order.
    pub fn record(&mut self, at: SimTime, kind: &str, subject: u64, detail: impl Into<String>) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.at <= at),
            "trace events must be appended in time order"
        );
        self.events.push(TraceEvent {
            at,
            kind: kind.to_string(),
            subject,
            detail: detail.into(),
        });
    }

    /// All events, in time order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one category.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events concerning one subject.
    pub fn of_subject(&self, subject: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.subject == subject)
    }

    /// First event of a category for a subject, if any.
    #[must_use]
    pub fn first(&self, kind: &str, subject: u64) -> Option<&TraceEvent> {
        self.events
            .iter()
            .find(|e| e.kind == kind && e.subject == subject)
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(t(0.0), "job", 1, "arrive");
        log.record(t(1.0), "job", 2, "arrive");
        log.record(t(2.0), "sched", 0, "update");
        log.record(t(3.0), "job", 1, "complete");

        assert_eq!(log.len(), 4);
        assert_eq!(log.of_kind("job").count(), 3);
        assert_eq!(log.of_subject(1).count(), 2);
        assert_eq!(log.first("job", 2).unwrap().at, t(1.0));
        assert!(log.first("scale", 1).is_none());
    }

    #[test]
    fn empty_log_reports_empty() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        assert_eq!(log.events().len(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_append_panics_in_debug() {
        let mut log = TraceLog::new();
        log.record(t(5.0), "job", 1, "arrive");
        log.record(t(4.0), "job", 1, "start");
    }
}
