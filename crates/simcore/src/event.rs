//! Deterministic timed event queue.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! pending event. Determinism requires a *total* order even between events
//! scheduled for the same instant; [`EventQueue`] breaks ties by insertion
//! sequence number, so two runs that schedule the same events in the same
//! order always pop them in the same order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion sequence, used as a FIFO tie-breaker.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// # Example
/// ```
/// use ones_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (1.0, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event); a
    /// discrete-event simulation must never travel backwards.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at:?}, clock already at {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Schedules `payload` at `delay` seconds after the current clock.
    pub fn push_after(&mut self, delay: f64, payload: E) {
        let at = self.now + delay;
        self.push(at, payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Timestamp of the next pending event, if any, without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event that fails the predicate. The clock is
    /// unaffected. Used to cancel stale timers (e.g. an epoch-completion
    /// event for a job that was just preempted).
    pub fn retain(&mut self, mut keep: impl FnMut(&E) -> bool) {
        let drained: Vec<_> = std::mem::take(&mut self.heap).into_vec();
        self.heap = drained.into_iter().filter(|ev| keep(&ev.payload)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.5), ());
        q.push(SimTime::from_secs(4.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(1.5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4.0));
    }

    #[test]
    fn push_after_is_relative_to_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), "a");
        q.pop();
        q.push_after(2.5, "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12.5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), ());
        q.pop();
        q.push(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn retain_cancels_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(f64::from(i)), i);
        }
        q.retain(|&i| i % 2 == 0);
        assert_eq!(q.len(), 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn retain_preserves_fifo_among_kept() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..6 {
            q.push(t, i);
        }
        q.retain(|&i| i != 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
