//! Virtual simulation time.
//!
//! [`SimTime`] wraps an `f64` number of seconds since the start of the
//! simulation. Unlike a raw `f64` it is totally ordered (construction rejects
//! NaN), supports saturating arithmetic at zero, and implements `Eq`/`Ord` so
//! it can key a priority queue.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
///
/// `SimTime` is `Copy` and cheap; prefer passing it by value. All arithmetic
/// that could produce a negative time saturates at [`SimTime::ZERO`].
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative — simulation time is a point on
    /// the non-negative real line by construction.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Elapsed time from `earlier` to `self`, saturating at zero if
    /// `earlier` is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction guarantees no NaN, so partial_cmp is total here.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    /// Elapsed seconds between two times, saturating at zero.
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.saturating_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn arithmetic_adds_seconds() {
        let mut t = SimTime::from_secs(10.0);
        t += 5.0;
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!(t - SimTime::from_secs(12.0), 3.0);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!(a - b, 0.0);
        assert_eq!(a.saturating_since(b), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats_with_three_decimals() {
        assert_eq!(SimTime::from_secs(1.23456).to_string(), "1.235");
    }
}
