//! # ones-simcore — discrete-event simulation engine
//!
//! Foundation crate of the ONES reproduction. It provides the three
//! primitives every other crate builds on:
//!
//! * [`SimTime`] — a totally-ordered virtual timestamp in seconds,
//! * [`EventQueue`] — a deterministic priority queue of timed events with
//!   FIFO tie-breaking for simultaneous events,
//! * [`DetRng`] — a seedable, forkable random-number generator so that every
//!   experiment is exactly reproducible from a single `--seed`.
//!
//! The engine is intentionally generic over the event payload type: the
//! `ones-simulator` crate instantiates it with cluster/job lifecycle events,
//! while unit tests here use simple scalar payloads.

pub mod event;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::DetRng;
pub use time::SimTime;
pub use trace::{TraceEvent, TraceLog};
