//! Deterministic, forkable randomness.
//!
//! Every stochastic component of the reproduction (workload arrivals,
//! evolutionary operators, Algorithm 1 sampling, convergence noise) draws
//! from a [`DetRng`]. A single experiment seed fans out into independent
//! named streams via [`DetRng::fork`], so adding a new consumer of
//! randomness in one subsystem does not perturb the stream seen by another —
//! a property the per-figure experiment harnesses rely on.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG with labelled sub-stream forking.
///
/// Internally this is rand's [`StdRng`] (ChaCha12), which is documented to be
/// reproducible for a fixed seed across platforms and releases within the
/// same rand major version.
///
/// # Example
/// ```
/// use ones_simcore::DetRng;
/// use rand::RngCore;
///
/// let mut a = DetRng::seed(42).fork("arrivals");
/// let mut b = DetRng::seed(42).fork("arrivals");
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut c = DetRng::seed(42).fork("mutation");
/// assert_ne!(DetRng::seed(42).fork("arrivals").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    seed: u64,
}

impl DetRng {
    /// Creates the root stream for an experiment seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream (or its root) was created from.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// Forking is a pure function of `(root seed, label)`: it does not
    /// consume state from `self`, so the order in which subsystems fork
    /// their streams is irrelevant.
    #[must_use]
    pub fn fork(&self, label: &str) -> DetRng {
        let sub = splitmix_combine(self.seed, fnv1a(label.as_bytes()));
        DetRng {
            inner: StdRng::seed_from_u64(sub),
            seed: sub,
        }
    }

    /// Derives an independent sub-stream identified by an index (e.g. a
    /// repetition number in a seed sweep).
    #[must_use]
    pub fn fork_idx(&self, label: &str, idx: u64) -> DetRng {
        let sub = splitmix_combine(splitmix_combine(self.seed, fnv1a(label.as_bytes())), idx);
        DetRng {
            inner: StdRng::seed_from_u64(sub),
            seed: sub,
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Exponentially distributed sample with the given `rate` (events per
    /// second) — inter-arrival times of a Poisson process.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.uniform(); // in (0, 1], avoids ln(0)
        -u.ln() / rate
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash of a byte string — stable across runs (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64-style combiner used to mix a parent seed with a label hash.
fn splitmix_combine(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_state() {
        let root = DetRng::seed(123);
        let mut used = DetRng::seed(123);
        let _ = used.next_u64(); // consume parent state
        let mut f1 = root.fork("x");
        let mut f2 = used.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn forks_with_different_labels_diverge() {
        let root = DetRng::seed(1);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_idx_distinguishes_repetitions() {
        let root = DetRng::seed(1);
        let mut a = root.fork_idx("rep", 0);
        let mut b = root.fork_idx("rep", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = DetRng::seed(99);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = DetRng::seed(5);
        let rate = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / f64::from(n);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean} far from 1/rate=4");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = DetRng::seed(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = DetRng::seed(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.choose(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(r.choose::<u32>(&[]).is_none());
    }

    #[test]
    fn chance_frequency_tracks_probability() {
        let mut r = DetRng::seed(17);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }
}
