//! Gandiva-style time-slicing scheduler (Xiao et al., OSDI '18 — §5
//! related work; implemented as an extension baseline).
//!
//! Gandiva treats GPUs as a time-shared resource: when demand exceeds
//! capacity, jobs of the same size class round-robin over the GPUs on a
//! fixed quantum, suspended and resumed through host memory in about a
//! second (far cheaper than checkpoint migration). It is *introspective* —
//! it continuously packs jobs for locality — but it neither predicts job
//! lengths nor adapts sizes or batches.
//!
//! The implementation rotates a cursor over the incomplete jobs each
//! quantum and allocates gangs in rotated order with sticky placement, so
//! every job periodically gets its turn regardless of length (fairness
//! rather than JCT-optimality — exactly Gandiva's design point).

use crate::common::{allocate_sticky, effective_request};
use ones_schedcore::{ClusterView, JobStatus, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_simcore::SimTime;
use ones_sync::LazyLock;
use serde::{Deserialize, Serialize};

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.gandiva.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.gandiva.deployments_proposed"));
static ROTATIONS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.gandiva.rotations"));

/// Gandiva tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GandivaConfig {
    /// Time-slice quantum, seconds (Gandiva uses minute-scale slices).
    pub quantum: f64,
}

impl Default for GandivaConfig {
    fn default() -> Self {
        GandivaConfig { quantum: 60.0 }
    }
}

/// The Gandiva scheduler.
#[derive(Debug)]
pub struct Gandiva {
    config: GandivaConfig,
    /// Round-robin cursor advanced each quantum.
    cursor: usize,
}

impl Gandiva {
    /// Creates the scheduler with a 60-second quantum.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(GandivaConfig::default())
    }

    /// Creates the scheduler with an explicit quantum.
    #[must_use]
    pub fn with_config(config: GandivaConfig) -> Self {
        assert!(config.quantum > 0.0, "quantum must be positive");
        Gandiva { config, cursor: 0 }
    }

    fn plan(&self, view: &ClusterView<'_>) -> Schedule {
        let mut jobs: Vec<&JobStatus> = view.jobs.values().filter(|j| !j.is_completed()).collect();
        jobs.sort_by_key(|j| j.id());
        if !jobs.is_empty() {
            let offset = self.cursor % jobs.len();
            jobs.rotate_left(offset);
        }
        let wants: Vec<(ones_workload::JobId, u32)> = jobs
            .iter()
            .map(|j| (j.id(), effective_request(view, j.id())))
            .collect();
        allocate_sticky(view, &wants)
    }
}

impl Default for Gandiva {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Gandiva {
    fn name(&self) -> &'static str {
        "Gandiva"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::SuspendResume
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("Gandiva", event, view);
        ROUNDS.inc();
        if matches!(event, SchedEvent::Tick) {
            // A quantum elapsed: rotate priorities so suspended jobs get
            // their turn.
            self.cursor = self.cursor.wrapping_add(1);
            ROTATIONS.inc();
        }
        let schedule = self.plan(view);
        let out = (&schedule != view.deployed).then_some(schedule);
        if out.is_some() {
            DEPLOYMENTS_PROPOSED.inc();
        }
        out
    }

    fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        Some(now + self.config.quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;
    use ones_workload::JobId;

    #[test]
    fn admits_jobs_up_to_capacity() {
        let mut h = Harness::new(1, 4);
        let mut g = Gandiva::new();
        let a = h.submit(0, 2);
        let b = h.submit(1, 2);
        let out = g.on_event(SchedEvent::JobArrived(b), &h.view()).unwrap();
        assert!(out.is_running(a) && out.is_running(b));
        assert_eq!(out.idle_count(), 0);
    }

    #[test]
    fn rotation_time_shares_an_oversubscribed_cluster() {
        let mut h = Harness::new(1, 4);
        let mut g = Gandiva::new();
        // Three 4-GPU jobs on a 4-GPU cluster: only one runs per quantum.
        let ids: Vec<JobId> = (0..3).map(|i| h.submit(i, 4)).collect();
        let out = g
            .on_event(SchedEvent::JobArrived(ids[2]), &h.view())
            .unwrap();
        h.deploy(out);
        let mut seen: Vec<JobId> = vec![];
        for id in &ids {
            if h.deployed.is_running(*id) {
                seen.push(*id);
            }
        }
        assert_eq!(seen.len(), 1, "exactly one gang fits");
        // Grant the running job its epoch so the quantum may preempt it,
        // then rotate through several quanta: every job must run at least
        // once.
        let mut ran: std::collections::BTreeSet<JobId> = seen.into_iter().collect();
        for round in 0..6 {
            for id in &ids {
                if h.deployed.is_running(*id) {
                    h.jobs.get_mut(id).unwrap().epochs_in_current_schedule = 1;
                }
            }
            h.now = 60.0 * f64::from(round + 1);
            if let Some(next) = g.on_event(SchedEvent::Tick, &h.view()) {
                h.deploy(next);
            }
            for id in &ids {
                if h.deployed.is_running(*id) {
                    ran.insert(*id);
                }
            }
        }
        assert_eq!(ran.len(), 3, "rotation starved a job: {ran:?}");
    }

    #[test]
    fn identity_and_quantum() {
        let g = Gandiva::new();
        assert_eq!(g.name(), "Gandiva");
        assert_eq!(g.mechanism(), ScalingMechanism::SuspendResume);
        assert!(!g.scales_batch_sizes());
        assert_eq!(
            g.next_wakeup(SimTime::from_secs(100.0)).unwrap(),
            SimTime::from_secs(160.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_rejected() {
        let _ = Gandiva::with_config(GandivaConfig { quantum: 0.0 });
    }
}
