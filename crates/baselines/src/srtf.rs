//! Oracle SRTF: shortest remaining processing time first with ground-truth
//! remaining times.
//!
//! **This scheduler cheats.** It reads the simulator-only convergence model
//! inside each job's spec to compute the true remaining time — something no
//! real scheduler can do. It exists purely as an ablation upper-ish bound
//! for fixed-size scheduling: how much of ONES's win comes from prediction
//! quality versus from batch-size elasticity.

use crate::common::effective_request;
use ones_dlperf::ConvergenceState;
use ones_schedcore::{ClusterView, JobStatus, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_sync::LazyLock;

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.srtf.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.srtf.deployments_proposed"));

/// Preemptive oracle shortest-remaining-time-first gang scheduler.
#[derive(Debug, Default)]
pub struct SrtfOracle;

impl SrtfOracle {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        SrtfOracle
    }

    /// Ground-truth remaining seconds of a job at its submitted batch on
    /// its requested GPUs (oracle access to the convergence model).
    fn true_remaining_secs(view: &ClusterView<'_>, job: &JobStatus) -> f64 {
        // Reconstruct the convergence state from processed epochs. Jobs run
        // at their submitted batch under every fixed-batch scheduler, so
        // the reconstruction is exact.
        let mut conv = ConvergenceState::new(job.spec.convergence);
        for _ in 0..job.epochs_done {
            conv.advance_epoch(job.spec.submit_batch, true);
        }
        let remaining_epochs = conv.remaining_epochs_at(job.spec.submit_batch);
        let c = effective_request(view, job.id());
        let placement = ones_cluster::Placement::contiguous(0, c);
        let profile = job.spec.profile();
        let batches: Vec<u32> = {
            let base = job.spec.submit_batch / c;
            let rem = job.spec.submit_batch % c;
            (0..c).map(|i| base + u32::from(i < rem)).collect()
        };
        let epoch_time =
            view.perf
                .epoch_time(&profile, job.spec.dataset_size, &batches, &placement);
        remaining_epochs * epoch_time
    }
}

impl Scheduler for SrtfOracle {
    fn name(&self) -> &'static str {
        "SRTF-oracle"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::CheckpointRestart
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("SRTF-oracle", event, view);
        ROUNDS.inc();
        if matches!(event, SchedEvent::Tick) {
            return None;
        }
        // Rebuild the whole assignment from scratch in remaining-time
        // order (preemptive SRTF), gang per job, backfilling past jobs
        // that do not fit.
        let mut order: Vec<&JobStatus> = view.jobs.values().filter(|j| !j.is_completed()).collect();
        order.sort_by(|a, b| {
            Self::true_remaining_secs(view, a).total_cmp(&Self::true_remaining_secs(view, b))
        });
        let wants: Vec<(ones_workload::JobId, u32)> = order
            .iter()
            .map(|j| (j.id(), effective_request(view, j.id())))
            .collect();
        let schedule = crate::common::allocate_sticky(view, &wants);
        let out = (&schedule != view.deployed).then_some(schedule);
        if out.is_some() {
            DEPLOYMENTS_PROPOSED.inc();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;

    #[test]
    fn shorter_job_preempts_longer() {
        let mut h = Harness::new(1, 4);
        let mut s = SrtfOracle::new();
        // Job 0 needs the whole cluster and is long.
        let a = h.submit(0, 4);
        let out = s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        assert!(h.deployed.is_running(a));
        h.jobs.get_mut(&a).unwrap().epochs_in_current_schedule = 1;
        // Job 1 is nearly done (few epochs left): oracle must preempt 0.
        let b = h.submit(1, 4);
        h.deploy(h.deployed.clone());
        {
            let j = h.jobs.get_mut(&b).unwrap();
            j.epochs_done = 38; // close to convergence for example() model
            j.samples_processed = 38.0 * 20_000.0;
        }
        let out = s.on_event(SchedEvent::JobArrived(b), &h.view()).unwrap();
        assert!(out.is_running(b), "short job must run");
        assert!(!out.is_running(a), "long job must be preempted");
    }

    #[test]
    fn fills_cluster_with_backfill() {
        let mut h = Harness::new(1, 4);
        let mut s = SrtfOracle::new();
        let a = h.submit(0, 2);
        let b = h.submit(1, 4); // much longer job: sorts last under SRTF
        h.jobs.get_mut(&b).unwrap().spec.dataset_size = 400_000;
        let c = h.submit(2, 2);
        let out = s.on_event(SchedEvent::JobArrived(c), &h.view()).unwrap();
        assert!(out.is_running(a) && out.is_running(c));
        assert!(!out.is_running(b), "long 4-GPU job must wait");
        assert_eq!(out.idle_count(), 0);
    }

    #[test]
    fn no_change_returns_none() {
        let mut h = Harness::new(1, 4);
        let mut s = SrtfOracle::new();
        let a = h.submit(0, 1);
        let out = s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        // Same state, same plan: no redeployment.
        assert!(s.on_event(SchedEvent::EpochEnded(a), &h.view()).is_none());
    }
}
