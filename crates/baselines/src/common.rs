//! Shared helpers for fixed-batch schedulers.
//!
//! Every baseline runs each job at its submitted global batch `B₀`, split
//! evenly over however many GPUs the scheduler grants. These helpers
//! implement gang placement (prefer contiguous GPU ranges for locality)
//! and the batch split, shared by all five baselines.

use ones_cluster::GpuId;
use ones_schedcore::{ClusterView, SchedEvent, Schedule};
use ones_workload::JobId;

/// Opens the per-round wall span every baseline scheduler records, using
/// the same `scheduling_round` taxonomy as `ones::scheduler` (event kind
/// from [`SchedEvent::kind`], virtual time in `vt`) plus a `scheduler`
/// tag, so cross-scheduler Perfetto traces compare like-for-like.
#[must_use]
pub fn round_span(
    scheduler: &'static str,
    event: SchedEvent,
    view: &ClusterView<'_>,
) -> ones_obs::ScopedSpan {
    ones_obs::span!("baselines", "scheduling_round")
        .with_arg("scheduler", scheduler)
        .with_arg("event", event.kind())
        .with_arg("vt", view.now.as_secs())
}

/// Picks `count` GPUs from the idle set of `schedule`, preferring a
/// contiguous id range (same-node locality), else falling back to the
/// lowest ids. Returns `None` when fewer than `count` GPUs are idle
/// (gang scheduling: all-or-nothing).
#[must_use]
pub fn pick_gang(schedule: &Schedule, count: u32) -> Option<Vec<GpuId>> {
    let idle = schedule.idle_gpus();
    if (idle.len() as u32) < count {
        return None;
    }
    let c = count as usize;
    // Look for a window of consecutive ids.
    for w in idle.windows(c) {
        if w.last().unwrap().0 - w.first().unwrap().0 == count - 1 {
            return Some(w.to_vec());
        }
    }
    Some(idle.into_iter().take(c).collect())
}

/// Assigns `job` its submitted batch split evenly over `gpus`.
///
/// Returns false (leaving the schedule untouched) if the batch cannot be
/// split that way (more workers than samples, or per-worker share over the
/// memory limit — the latter cannot happen for Table 2 workloads).
pub fn assign_fixed_batch(
    view: &ClusterView<'_>,
    schedule: &mut Schedule,
    job: JobId,
    gpus: &[GpuId],
) -> bool {
    let Some(status) = view.jobs.get(&job) else {
        return false;
    };
    let batch = status.spec.submit_batch;
    let c = gpus.len() as u32;
    if c == 0 || batch < c {
        return false;
    }
    let max_local = status.spec.profile().max_local_batch;
    let base = batch / c;
    let rem = batch % c;
    if base + u32::from(rem > 0) > max_local {
        return false;
    }
    for (i, &g) in gpus.iter().enumerate() {
        schedule.assign(g, job, base + u32::from((i as u32) < rem));
    }
    true
}

/// The GPU count a fixed-size scheduler uses for a job: the user request,
/// capped so the per-worker share stays ≥ 1 sample.
#[must_use]
pub fn effective_request(view: &ClusterView<'_>, job: JobId) -> u32 {
    view.jobs
        .get(&job)
        .map_or(1, |j| j.spec.requested_gpus.min(j.spec.submit_batch).max(1))
}

/// Sticky priority allocation: decides which jobs run by scanning
/// `order` (highest priority first, gang all-or-nothing with backfill),
/// then builds the schedule so that **jobs already running with the same
/// GPU count keep their exact placement** — a preemptive scheduler that
/// reshuffled every worker on every event would pay a checkpoint-restart
/// per job per event, which no real system does.
///
/// Running jobs that have not yet completed an epoch under their current
/// allocation are protected from preemption (a minimum service quantum;
/// without it, starvation promotions make preemption-happy schedulers
/// thrash: each preemption costs a checkpoint restart and resets the
/// victim's epoch, so no job ever finishes an epoch).
///
/// `order` holds `(job, wanted GPU count)` pairs.
#[must_use]
pub fn allocate_sticky(view: &ClusterView<'_>, order: &[(JobId, u32)]) -> Schedule {
    let total = view.spec.total_gpus();
    // Pass 0: the minimum-quantum set keeps its capacity unconditionally.
    let locked: Vec<JobId> = view
        .running_jobs()
        .iter()
        .filter(|j| j.epochs_in_current_schedule == 0)
        .map(|j| j.id())
        .collect();
    let mut remaining = total;
    let mut admitted: Vec<(JobId, u32)> = Vec::new();
    for &job in &locked {
        let have = view.deployed.gpu_count(job);
        if have > 0 && have <= remaining {
            admitted.push((job, have));
            remaining -= have;
        }
    }
    // Pass 1: admission by capacity, in priority order, backfilling.
    for &(job, want) in order {
        if locked.contains(&job) {
            continue;
        }
        if want <= remaining && want > 0 {
            admitted.push((job, want));
            remaining -= want;
        }
    }
    // Pass 2: sticky placements for admitted jobs already running at the
    // same size.
    let mut schedule = Schedule::empty(total);
    let mut moved: Vec<(JobId, u32)> = Vec::new();
    for &(job, want) in &admitted {
        if view.deployed.gpu_count(job) == want {
            for (i, slot) in view.deployed.slots().iter().enumerate() {
                if let Some(s) = slot.filter(|s| s.job == job) {
                    schedule.assign(ones_cluster::GpuId(i as u32), s.job, s.local_batch);
                }
            }
        } else {
            moved.push((job, want));
        }
    }
    // Pass 3: place moved/new jobs into the free GPUs.
    for (job, want) in moved {
        if let Some(gang) = pick_gang(&schedule, want) {
            assign_fixed_batch(view, &mut schedule, job, &gang);
        }
    }
    schedule
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Fixture shared by the baseline test modules.

    use ones_cluster::ClusterSpec;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
    use ones_schedcore::{ClusterView, JobPhase, JobStatus, Schedule};
    use ones_simcore::SimTime;
    use ones_workload::{JobId, JobSpec};
    use std::collections::BTreeMap;

    pub struct Harness {
        pub spec: ClusterSpec,
        pub perf: PerfModel,
        pub jobs: BTreeMap<JobId, JobStatus>,
        pub deployed: Schedule,
        pub now: f64,
    }

    impl Harness {
        pub fn new(nodes: u32, gpus_per_node: u32) -> Self {
            let spec = ClusterSpec::new(nodes, gpus_per_node);
            Harness {
                spec,
                perf: PerfModel::new(spec),
                jobs: BTreeMap::new(),
                deployed: Schedule::empty(spec.total_gpus()),
                now: 0.0,
            }
        }

        pub fn submit(&mut self, id: u64, requested: u32) -> JobId {
            let jid = JobId(id);
            let spec = JobSpec {
                id: jid,
                name: format!("j{id}"),
                model: ModelKind::ResNet18,
                dataset: DatasetKind::Cifar10,
                dataset_size: 20_000,
                submit_batch: 256,
                max_safe_batch: 4096,
                requested_gpus: requested,
                arrival_secs: self.now,
                kill_after_secs: None,
                convergence: ConvergenceModel {
                    reference_batch: 256,
                    ..ConvergenceModel::example()
                },
            };
            self.jobs.insert(
                jid,
                JobStatus::submitted(spec, SimTime::from_secs(self.now)),
            );
            jid
        }

        pub fn view(&self) -> ClusterView<'_> {
            ClusterView {
                now: SimTime::from_secs(self.now),
                spec: &self.spec,
                perf: &self.perf,
                jobs: &self.jobs,
                deployed: &self.deployed,
            }
        }

        pub fn deploy(&mut self, s: Schedule) {
            for job in self.jobs.values_mut() {
                let id = job.spec.id;
                if s.is_running(id) {
                    job.phase = JobPhase::Running;
                    job.first_start.get_or_insert(SimTime::from_secs(self.now));
                    job.current_batch = s.global_batch(id);
                    job.current_gpus = s.gpu_count(id);
                } else if job.phase == JobPhase::Running {
                    job.phase = JobPhase::Waiting;
                    job.current_batch = 0;
                    job.current_gpus = 0;
                }
            }
            self.deployed = s;
        }

        pub fn complete(&mut self, id: u64) {
            self.deployed.evict(JobId(id));
            let j = self.jobs.get_mut(&JobId(id)).unwrap();
            j.phase = JobPhase::Completed;
            j.completion = Some(SimTime::from_secs(self.now));
            j.current_batch = 0;
            j.current_gpus = 0;
        }

        pub fn add_service(&mut self, id: u64, gpu_seconds: f64, epochs: u32) {
            let j = self.jobs.get_mut(&JobId(id)).unwrap();
            j.gpu_service += gpu_seconds;
            j.exec_time += gpu_seconds / f64::from(j.current_gpus.max(1));
            j.epochs_done += epochs;
            j.samples_processed += f64::from(epochs) * j.spec.dataset_size as f64;
            let conv = j.spec.convergence;
            j.current_loss = conv.loss_at(f64::from(j.epochs_done));
            j.current_accuracy = conv.accuracy_at(f64::from(j.epochs_done));
            j.throughput = 3000.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Harness;
    use super::*;

    #[test]
    fn gang_prefers_contiguous_ranges() {
        let h = {
            let mut h = Harness::new(2, 4);
            h.submit(0, 2);
            h
        };
        let mut s = Schedule::empty(8);
        // Occupy GPUs 1 and 2, leaving 0, 3..7 idle.
        s.assign(GpuId(1), JobId(9), 1);
        s.assign(GpuId(2), JobId(9), 1);
        let gang = pick_gang(&s, 3).unwrap();
        assert_eq!(gang, vec![GpuId(3), GpuId(4), GpuId(5)]);
        drop(h);
    }

    #[test]
    fn gang_fails_when_insufficient() {
        let s = Schedule::empty(4);
        assert!(pick_gang(&s, 5).is_none());
        assert_eq!(pick_gang(&s, 4).unwrap().len(), 4);
    }

    #[test]
    fn gang_falls_back_to_scattered() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(1), JobId(9), 1);
        // Idle: 0, 2, 3 -> no 3-window of consecutive ids incl 0.. (2,3 is
        // only 2 wide). Fallback takes the lowest ids.
        let gang = pick_gang(&s, 3).unwrap();
        assert_eq!(gang, vec![GpuId(0), GpuId(2), GpuId(3)]);
    }

    #[test]
    fn fixed_batch_split_is_even() {
        let mut h = Harness::new(2, 4);
        let j = h.submit(0, 3);
        let view = h.view();
        let mut s = Schedule::empty(8);
        assert!(assign_fixed_batch(
            &view,
            &mut s,
            j,
            &[GpuId(0), GpuId(1), GpuId(2)]
        ));
        assert_eq!(s.global_batch(j), 256);
        let b = s.local_batches(j);
        assert_eq!(b, vec![86, 85, 85]);
    }

    #[test]
    fn fixed_batch_rejects_bad_splits() {
        let mut h = Harness::new(2, 4);
        let j = h.submit(0, 1);
        let view = h.view();
        let mut s = Schedule::empty(8);
        assert!(!assign_fixed_batch(&view, &mut s, j, &[]));
        assert!(!assign_fixed_batch(&view, &mut s, JobId(77), &[GpuId(0)]));
        // More workers than samples in the batch.
        let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
        let mut h2 = Harness::new(2, 4);
        let j2 = h2.submit(1, 8);
        h2.jobs.get_mut(&j2).unwrap().spec.submit_batch = 4;
        let view2 = h2.view();
        assert!(!assign_fixed_batch(&view2, &mut s, j2, &gpus));
    }

    #[test]
    fn effective_request_caps_at_batch() {
        let mut h = Harness::new(2, 4);
        let j = h.submit(0, 8);
        h.jobs.get_mut(&j).unwrap().spec.submit_batch = 4;
        let view = h.view();
        assert_eq!(effective_request(&view, j), 4);
        assert_eq!(effective_request(&view, JobId(42)), 1);
    }
}
