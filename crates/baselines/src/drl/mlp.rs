//! A minimal multi-layer perceptron policy network with manual
//! backpropagation, sufficient for REINFORCE over a small discrete action
//! space. No autodiff dependency: the network is two dense layers with a
//! tanh hidden activation and a softmax head, and the only gradient we
//! ever need is `∇_θ log π(a|s)`, whose output-layer error is the familiar
//! `onehot(a) − π`.

use ones_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// A 2-layer tanh MLP with a softmax policy head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    w1: Vec<Vec<f64>>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>, // output × hidden
    b2: Vec<f64>,
}

impl Mlp {
    /// Creates a network with small deterministic random weights.
    #[must_use]
    pub fn new(inputs: usize, hidden: usize, outputs: usize, rng: &mut DetRng) -> Self {
        assert!(inputs > 0 && hidden > 0 && outputs > 0);
        let mut init = |rows: usize, cols: usize| -> Vec<Vec<f64>> {
            (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| rng.normal(0.0, 1.0 / (cols as f64).sqrt()))
                        .collect()
                })
                .collect()
        };
        let w1 = init(hidden, inputs);
        let w2 = init(outputs, hidden);
        Mlp {
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; outputs],
        }
    }

    /// Number of actions.
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.b2.len()
    }

    /// Forward pass: returns `(hidden activations, action probabilities)`.
    ///
    /// # Panics
    /// Panics on an input-width mismatch.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.w1[0].len(), "input width mismatch");
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(row, b)| (row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + b).tanh())
            .collect();
        let logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(row, b)| row.iter().zip(&hidden).map(|(w, h)| w * h).sum::<f64>() + b)
            .collect();
        (hidden, softmax(&logits))
    }

    /// Action probabilities only.
    #[must_use]
    pub fn policy(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x).1
    }

    /// One REINFORCE ascent step on `advantage · log π(action | x)`.
    pub fn reinforce_step(&mut self, x: &[f64], action: usize, advantage: f64, lr: f64) {
        assert!(action < self.num_actions(), "action out of range");
        let (hidden, probs) = self.forward(x);
        // dL/dlogit_k = advantage · (1[k = a] − π_k)  (ascent direction).
        let dlogits: Vec<f64> = probs
            .iter()
            .enumerate()
            .map(|(k, p)| advantage * (f64::from(u8::from(k == action)) - p))
            .collect();
        // Output layer.
        for (k, row) in self.w2.iter_mut().enumerate() {
            for (w, h) in row.iter_mut().zip(&hidden) {
                *w += lr * dlogits[k] * h;
            }
            self.b2[k] += lr * dlogits[k];
        }
        // Hidden layer: dL/dh_j = Σ_k dlogit_k · w2[k][j]; tanh' = 1 − h².
        // (w2 already updated is a negligible off-by-one for these step
        // sizes, but use the updated weights consistently.)
        let dhidden: Vec<f64> = (0..hidden.len())
            .map(|j| {
                let upstream: f64 = (0..self.num_actions())
                    .map(|k| dlogits[k] * self.w2[k][j])
                    .sum();
                upstream * (1.0 - hidden[j] * hidden[j])
            })
            .collect();
        for (j, row) in self.w1.iter_mut().enumerate() {
            for (w, v) in row.iter_mut().zip(x) {
                *w += lr * dhidden[j] * v;
            }
            self.b1[j] += lr * dhidden[j];
        }
    }
}

/// Numerically stable softmax.
#[must_use]
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Mlp {
        Mlp::new(4, 8, 3, &mut DetRng::seed(7))
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        // Stability under large logits.
        let q = softmax(&[1000.0, 1001.0]);
        assert!(q.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn forward_produces_valid_policy() {
        let n = net();
        let (h, p) = n.forward(&[0.5, -0.2, 0.1, 0.9]);
        assert_eq!(h.len(), 8);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(h.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn positive_advantage_raises_action_probability() {
        let mut n = net();
        let x = [0.3, 0.7, -0.5, 0.2];
        let before = n.policy(&x)[1];
        for _ in 0..50 {
            n.reinforce_step(&x, 1, 1.0, 0.05);
        }
        let after = n.policy(&x)[1];
        assert!(after > before, "p(a=1) should rise: {before} -> {after}");
        assert!(after > 0.8, "should approach determinism, got {after}");
    }

    #[test]
    fn negative_advantage_lowers_action_probability() {
        let mut n = net();
        let x = [0.3, 0.7, -0.5, 0.2];
        let before = n.policy(&x)[0];
        for _ in 0..50 {
            n.reinforce_step(&x, 0, -1.0, 0.05);
        }
        assert!(n.policy(&x)[0] < before);
    }

    #[test]
    fn learns_a_contextual_policy() {
        // Reward action 0 in state A and action 2 in state B; the policy
        // must separate them.
        let mut n = net();
        let sa = [1.0, 0.0, 0.0, 0.0];
        let sb = [0.0, 0.0, 0.0, 1.0];
        for _ in 0..300 {
            n.reinforce_step(&sa, 0, 1.0, 0.03);
            n.reinforce_step(&sb, 2, 1.0, 0.03);
        }
        assert!(
            n.policy(&sa)[0] > 0.7,
            "state A policy: {:?}",
            n.policy(&sa)
        );
        assert!(
            n.policy(&sb)[2] > 0.7,
            "state B policy: {:?}",
            n.policy(&sb)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Mlp::new(3, 5, 2, &mut DetRng::seed(1));
        let b = Mlp::new(3, 5, 2, &mut DetRng::seed(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_rejected() {
        let n = net();
        let _ = n.forward(&[1.0]);
    }
}
