//! DRL baseline: an experience-driven policy-gradient scheduler in the
//! style of Chic (Gong et al., reference 8 of the paper — the paper's DRL baseline, adapted to
//! all-reduce training as §4.1 describes).
//!
//! The agent decides *one job at a time* ("only one job can be rescheduled
//! at each time"): whenever a job arrives or completes, the head of the
//! waiting queue is offered to the policy network, which picks a GPU count
//! from {1, 2, 4, 8}. Jobs are **never preempted** (Table 3) — once
//! started they run to completion at the chosen size and their submitted
//! batch. If the chosen gang does not fit, the job keeps waiting for the
//! next completion.
//!
//! The policy is a small MLP trained online with REINFORCE: on each job
//! completion the (state, action) pair recorded at its start receives a
//! reward of −log(JCT), advantage-normalised by a running baseline. This
//! mirrors Chic's experience-driven formulation without requiring an
//! offline trace corpus.

pub mod mlp;

use crate::common::{assign_fixed_batch, pick_gang};
use mlp::Mlp;
use ones_schedcore::{ClusterView, JobStatus, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_simcore::DetRng;
use ones_sync::LazyLock;
use ones_workload::JobId;
use std::collections::BTreeMap;

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.drl.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.drl.deployments_proposed"));

/// GPU-count actions available to the policy.
pub const ACTIONS: [u32; 4] = [1, 2, 4, 8];

/// DRL agent tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrlConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// REINFORCE learning rate.
    pub learning_rate: f64,
    /// Exponential-decay factor of the reward baseline.
    pub baseline_decay: f64,
}

impl Default for DrlConfig {
    fn default() -> Self {
        DrlConfig {
            hidden: 16,
            learning_rate: 0.01,
            baseline_decay: 0.9,
        }
    }
}

/// The DRL scheduler.
pub struct DrlScheduler {
    config: DrlConfig,
    policy: Mlp,
    rng: DetRng,
    /// (state, action index) recorded when each running job started.
    decisions: BTreeMap<JobId, (Vec<f64>, usize)>,
    /// Running reward baseline.
    baseline: f64,
    baseline_initialised: bool,
}

impl DrlScheduler {
    /// Creates the agent; all randomness forks from `rng`.
    #[must_use]
    pub fn new(config: DrlConfig, rng: &DetRng) -> Self {
        let mut net_rng = rng.fork("drl-init");
        DrlScheduler {
            config,
            policy: Mlp::new(6, config.hidden, ACTIONS.len(), &mut net_rng),
            rng: rng.fork("drl-actions"),
            decisions: BTreeMap::new(),
            baseline: 0.0,
            baseline_initialised: false,
        }
    }

    /// State features for one candidate job in the current cluster.
    fn features(view: &ClusterView<'_>, job: &JobStatus) -> Vec<f64> {
        let total = f64::from(view.spec.total_gpus());
        let idle = f64::from(view.deployed.idle_count());
        let waiting = view.waiting_jobs().len() as f64;
        vec![
            f64::from(job.spec.requested_gpus) / 8.0,
            (job.spec.dataset_size as f64).ln() / 12.0,
            (job.spec.profile().params as f64).ln() / 20.0,
            idle / total,
            (waiting / 10.0).min(2.0),
            f64::from(job.spec.submit_batch) / 1024.0,
        ]
    }

    /// Samples an action index from the policy.
    fn act(&mut self, features: &[f64], max_gpus: u32) -> usize {
        let mut probs = self.policy.policy(features);
        // Mask actions larger than the cluster (they could never run).
        for (i, &a) in ACTIONS.iter().enumerate() {
            if a > max_gpus {
                probs[i] = 0.0;
            }
        }
        let sum: f64 = probs.iter().sum();
        if sum <= 0.0 {
            return 0;
        }
        let u = self.rng.uniform() * sum;
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// REINFORCE update from a completed job's JCT.
    fn learn(&mut self, job: JobId, jct: f64) {
        let Some((state, action)) = self.decisions.remove(&job) else {
            return;
        };
        let reward = -(jct.max(1.0)).ln();
        if !self.baseline_initialised {
            self.baseline = reward;
            self.baseline_initialised = true;
        }
        let advantage = reward - self.baseline;
        self.baseline = self.config.baseline_decay * self.baseline
            + (1.0 - self.config.baseline_decay) * reward;
        self.policy
            .reinforce_step(&state, action, advantage, self.config.learning_rate);
    }

    /// Pending decisions (exposed for tests).
    #[must_use]
    pub fn pending_decisions(&self) -> usize {
        self.decisions.len()
    }
}

impl Scheduler for DrlScheduler {
    fn name(&self) -> &'static str {
        "DRL"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::CheckpointRestart
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("DRL", event, view);
        ROUNDS.inc();
        if let SchedEvent::JobCompleted(id) = event {
            if let Some(jct) = view.jobs.get(&id).and_then(JobStatus::jct) {
                self.learn(id, jct);
            }
        }
        if matches!(event, SchedEvent::EpochEnded(_) | SchedEvent::Tick) {
            return None;
        }
        // Offer waiting jobs (FIFO) to the policy, starting each one whose
        // chosen gang fits; stop at the first that does not (no
        // preemption, one decision at a time — but completions can free
        // several gangs at once, so loop).
        let mut schedule = view.deployed.clone();
        let mut changed = false;
        let mut waiting: Vec<&JobStatus> = view.waiting_jobs();
        waiting.sort_by_key(|j| j.arrival);
        for job in waiting {
            let feats = Self::features(view, job);
            let action = self.act(&feats, view.spec.total_gpus());
            let want = ACTIONS[action].min(job.spec.submit_batch);
            match pick_gang(&schedule, want) {
                Some(gang) if assign_fixed_batch(view, &mut schedule, job.id(), &gang) => {
                    self.decisions.insert(job.id(), (feats, action));
                    changed = true;
                }
                _ => break,
            }
        }
        if changed {
            DEPLOYMENTS_PROPOSED.inc();
        }
        changed.then_some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;
    use ones_simcore::SimTime;

    fn agent() -> DrlScheduler {
        DrlScheduler::new(DrlConfig::default(), &DetRng::seed(3))
    }

    #[test]
    fn starts_jobs_with_policy_chosen_sizes() {
        let mut h = Harness::new(2, 4);
        let mut d = agent();
        let a = h.submit(0, 2);
        let out = d.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        let c = out.gpu_count(a);
        assert!(ACTIONS.contains(&c), "size {c} not an action");
        assert_eq!(d.pending_decisions(), 1);
    }

    #[test]
    fn never_preempts_running_jobs() {
        let mut h = Harness::new(1, 4);
        let mut d = agent();
        let a = h.submit(0, 4);
        let out = d.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out.clone());
        let placed = out.placement(a);
        // New arrivals must not move job a's workers.
        let b = h.submit(1, 1);
        if let Some(next) = d.on_event(SchedEvent::JobArrived(b), &h.view()) {
            assert_eq!(next.placement(a), placed, "DRL must not preempt");
        }
    }

    #[test]
    fn completion_triggers_learning() {
        let mut h = Harness::new(1, 4);
        let mut d = agent();
        let a = h.submit(0, 1);
        let out = d.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        assert_eq!(d.pending_decisions(), 1);
        h.now = 300.0;
        h.complete(0);
        let _ = d.on_event(SchedEvent::JobCompleted(a), &h.view());
        assert_eq!(d.pending_decisions(), 0, "decision consumed by learning");
    }

    #[test]
    fn queue_drains_on_completion() {
        let mut h = Harness::new(1, 4);
        let mut d = agent();
        // Fill the cluster so the next job has to wait.
        let a = h.submit(0, 4);
        let mut out = None;
        for _ in 0..4 {
            // The policy may pick sizes < 4; keep admitting until full or
            // no change.
            match d.on_event(SchedEvent::JobArrived(a), &h.view()) {
                Some(s) => {
                    out = Some(s.clone());
                    h.deploy(s);
                }
                None => break,
            }
        }
        assert!(out.is_some());
        let b = h.submit(1, 2);
        let before_idle = h.deployed.idle_count();
        let res = d.on_event(SchedEvent::JobArrived(b), &h.view());
        if before_idle == 0 {
            assert!(res.is_none(), "no room -> job must wait");
        }
        // Completion frees the gang; the waiting job starts.
        h.now = 100.0;
        h.complete(0);
        let next = d.on_event(SchedEvent::JobCompleted(a), &h.view());
        if let Some(s) = next {
            assert!(s.is_running(b));
        }
    }

    #[test]
    fn rewards_shift_the_policy() {
        let mut d = agent();
        let mut h = Harness::new(2, 4);
        let a = h.submit(0, 2);
        let feats = DrlScheduler::features(&h.view(), &h.jobs[&a]);
        let before = d.policy.policy(&feats);
        // Simulate: action 3 (8 GPUs) earned terrible JCTs repeatedly.
        for i in 0..30 {
            d.decisions.insert(JobId(100 + i), (feats.clone(), 3));
            d.learn(JobId(100 + i), 10_000.0);
            d.decisions.insert(JobId(200 + i), (feats.clone(), 0));
            d.learn(JobId(200 + i), 10.0);
        }
        let after = d.policy.policy(&feats);
        assert!(
            after[3] < before[3] && after[0] > before[0],
            "policy should avoid the bad action: {before:?} -> {after:?}"
        );
        let _ = SimTime::ZERO;
    }
}
