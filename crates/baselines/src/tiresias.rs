//! Tiresias: discretised two-dimensional attained-service scheduling
//! (Gu et al., NSDI '19 — baseline of §4.1).
//!
//! Tiresias assumes job durations are unknowable and prioritises by
//! *attained service* — the product of GPU count and executed time
//! (GPU·seconds) — discretised into a multi-level feedback queue: a job
//! starts in the highest-priority queue and is demoted as its attained
//! service crosses each queue's threshold (discretised 2D-LAS). Within a
//! queue, jobs run FIFO by arrival. Preemption is allowed; job size is
//! fixed at the user request (Table 3: no elastic size, no elastic batch).
//!
//! The paper's optional STARVELIMIT promotion is included: a job preempted
//! for longer than `starve_limit × its executed time` is promoted back to
//! the highest queue.

use crate::common::effective_request;
use ones_schedcore::{ClusterView, JobStatus, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_simcore::SimTime;
use ones_sync::LazyLock;
use serde::{Deserialize, Serialize};

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.tiresias.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.tiresias.deployments_proposed"));
static STARVATION_PROMOTIONS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.tiresias.starvation_promotions"));

/// Tiresias tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiresiasConfig {
    /// Attained-service thresholds (GPU·seconds) separating the queues:
    /// a job with service ≥ `thresholds[i]` lives below queue `i`.
    pub thresholds: Vec<f64>,
    /// Re-evaluation period for demotions between job events, seconds.
    pub reschedule_period: f64,
    /// STARVELIMIT: promote a job waiting longer than this multiple of its
    /// executed time back to the top queue. 0 disables promotion.
    pub starve_limit: f64,
}

impl Default for TiresiasConfig {
    fn default() -> Self {
        TiresiasConfig {
            // Our trace's jobs attain 10²–10⁵ GPU·s; two cuts give three
            // queues with meaningful occupancy, mirroring the paper's
            // discretised 2D-LAS with K = 3.
            thresholds: vec![1_000.0, 10_000.0],
            reschedule_period: 60.0,
            starve_limit: 8.0,
        }
    }
}

/// The Tiresias scheduler.
#[derive(Debug)]
pub struct Tiresias {
    config: TiresiasConfig,
}

impl Tiresias {
    /// Creates the scheduler with default thresholds.
    #[must_use]
    pub fn new() -> Self {
        Tiresias {
            config: TiresiasConfig::default(),
        }
    }

    /// Creates the scheduler with explicit configuration.
    #[must_use]
    pub fn with_config(config: TiresiasConfig) -> Self {
        assert!(
            config.thresholds.windows(2).all(|w| w[0] < w[1]),
            "queue thresholds must be strictly increasing"
        );
        Tiresias { config }
    }

    /// Whether the STARVELIMIT promotion applies to `job` right now.
    fn is_starved(&self, job: &JobStatus, now: SimTime) -> bool {
        self.config.starve_limit > 0.0
            && job.is_waiting()
            && job.exec_time > 0.0
            && job.queueing_time(now) > self.config.starve_limit * job.exec_time
    }

    /// Queue index of a job (0 = highest priority).
    #[must_use]
    pub fn queue_of(&self, job: &JobStatus, now: SimTime) -> usize {
        if self.is_starved(job, now) {
            return 0; // starvation promotion
        }
        self.config
            .thresholds
            .iter()
            .take_while(|&&t| job.gpu_service >= t)
            .count()
    }
}

impl Default for Tiresias {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Tiresias {
    fn name(&self) -> &'static str {
        "Tiresias"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::CheckpointRestart
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("Tiresias", event, view);
        ROUNDS.inc();
        // Rank all incomplete jobs: (queue level, arrival) — MLFQ with
        // per-queue FIFO.
        let mut order: Vec<&JobStatus> = view.jobs.values().filter(|j| !j.is_completed()).collect();
        if ones_obs::counters_enabled() {
            let starved = order
                .iter()
                .filter(|j| self.is_starved(j, view.now))
                .count();
            STARVATION_PROMOTIONS.add(starved as u64);
        }
        order.sort_by(|a, b| {
            self.queue_of(a, view.now)
                .cmp(&self.queue_of(b, view.now))
                .then(a.arrival.cmp(&b.arrival))
        });
        // Allocate gangs in priority order with backfill; keep running
        // jobs that stay admitted in place (no gratuitous migration).
        let wants: Vec<(ones_workload::JobId, u32)> = order
            .iter()
            .map(|j| (j.id(), effective_request(view, j.id())))
            .collect();
        let schedule = crate::common::allocate_sticky(view, &wants);
        let out = (&schedule != view.deployed).then_some(schedule);
        if out.is_some() {
            DEPLOYMENTS_PROPOSED.inc();
        }
        out
    }

    fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        Some(now + self.config.reschedule_period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;

    #[test]
    fn fresh_jobs_outrank_heavily_serviced_ones() {
        let mut h = Harness::new(1, 4);
        let mut t = Tiresias::new();
        // Job 0 has consumed lots of GPU·s; it drops to a lower queue.
        let a = h.submit(0, 4);
        let out = t.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        h.add_service(0, 20_000.0, 5);
        h.jobs.get_mut(&a).unwrap().epochs_in_current_schedule = 5;
        // A fresh arrival preempts it (queue 0 vs queue 2).
        let b = h.submit(1, 4);
        let out = t.on_event(SchedEvent::JobArrived(b), &h.view()).unwrap();
        assert!(out.is_running(b));
        assert!(!out.is_running(a));
    }

    #[test]
    fn within_queue_order_is_fifo() {
        let mut h = Harness::new(1, 4);
        let mut t = Tiresias::new();
        let a = h.submit(0, 4);
        h.now = 10.0;
        let b = h.submit(1, 4);
        // Both in queue 0 (no service yet): earlier arrival wins the gang.
        let out = t.on_event(SchedEvent::JobArrived(b), &h.view()).unwrap();
        assert!(out.is_running(a));
        assert!(!out.is_running(b));
    }

    #[test]
    fn queue_levels_follow_thresholds() {
        let h = {
            let mut h = Harness::new(1, 4);
            h.submit(0, 1);
            h
        };
        let t = Tiresias::new();
        let mut job = h.jobs.values().next().unwrap().clone();
        assert_eq!(t.queue_of(&job, h.view().now), 0);
        job.gpu_service = 1_500.0;
        assert_eq!(t.queue_of(&job, h.view().now), 1);
        job.gpu_service = 50_000.0;
        assert_eq!(t.queue_of(&job, h.view().now), 2);
    }

    #[test]
    fn starvation_promotes_back_to_top() {
        let mut h = Harness::new(1, 4);
        let t = Tiresias::new();
        let a = h.submit(0, 1);
        {
            let j = h.jobs.get_mut(&a).unwrap();
            j.gpu_service = 50_000.0; // bottom queue by service
            j.exec_time = 10.0;
        }
        // Not starving yet at t = 50 (waited 50 s < 8 × 10 s... wait 50 <
        // 80): still bottom queue.
        h.now = 50.0;
        assert_eq!(t.queue_of(&h.jobs[&a], h.view().now), 2);
        // After waiting 8 × exec_time, promoted to queue 0.
        h.now = 200.0;
        assert_eq!(t.queue_of(&h.jobs[&a], h.view().now), 0);
    }

    #[test]
    fn backfills_around_blocked_gangs() {
        let mut h = Harness::new(1, 4);
        let mut t = Tiresias::new();
        let a = h.submit(0, 2);
        let _b = h.submit(1, 4); // blocked: only 2 idle after a
        let c = h.submit(2, 2);
        let out = t.on_event(SchedEvent::JobArrived(c), &h.view()).unwrap();
        assert!(out.is_running(a));
        assert!(out.is_running(c), "backfill must place the small job");
        assert_eq!(out.idle_count(), 0);
    }

    #[test]
    fn periodic_wakeups_requested() {
        let t = Tiresias::new();
        let w = t.next_wakeup(SimTime::from_secs(100.0)).unwrap();
        assert_eq!(w, SimTime::from_secs(160.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_thresholds_rejected() {
        let _ = Tiresias::with_config(TiresiasConfig {
            thresholds: vec![10.0, 5.0],
            ..TiresiasConfig::default()
        });
    }
}
