//! SLAQ-style quality-driven scheduler (Zhang et al., SoCC '17 — §5
//! related work; implemented as an extension baseline).
//!
//! SLAQ allocates resources to maximise the aggregate *quality improvement*
//! across jobs: each interval it estimates how much each job's loss would
//! drop per added worker (from an online fit of its recent loss curve) and
//! greedily gives GPUs to the steepest improvers. Young jobs — whose loss
//! falls fastest — therefore soak up resources, while converged-ish jobs
//! are starved down to a minimum share. Fixed batch size, elastic worker
//! count, checkpoint-based re-configuration.

use crate::common::assign_fixed_batch;
use ones_cluster::GpuId;
use ones_schedcore::{ClusterView, JobStatus, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_simcore::SimTime;
use ones_sync::LazyLock;
use ones_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.slaq.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.slaq.deployments_proposed"));
static PLAN_ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.slaq.plan_rounds"));

/// SLAQ tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaqConfig {
    /// Re-planning interval, seconds (SLAQ re-plans on a short loop).
    pub interval: f64,
    /// Loss-improvement assumed for jobs with fewer than 2 observations
    /// (keeps fresh jobs attractive).
    pub cold_start_gradient: f64,
}

impl Default for SlaqConfig {
    fn default() -> Self {
        SlaqConfig {
            interval: 120.0,
            cold_start_gradient: 0.1,
        }
    }
}

/// The SLAQ scheduler.
#[derive(Debug)]
pub struct Slaq {
    config: SlaqConfig,
    /// Recent (epoch, loss) observations per job.
    loss_history: BTreeMap<JobId, Vec<(f64, f64)>>,
    next_tick: Option<SimTime>,
}

impl Slaq {
    /// Creates the scheduler with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(SlaqConfig::default())
    }

    /// Creates the scheduler with explicit configuration.
    #[must_use]
    pub fn with_config(config: SlaqConfig) -> Self {
        assert!(config.interval > 0.0, "interval must be positive");
        Slaq {
            config,
            loss_history: BTreeMap::new(),
            next_tick: None,
        }
    }

    /// Estimated loss improvement per epoch for a job, from its recent
    /// history (the steeper, the more attractive).
    #[must_use]
    pub fn quality_gradient(&self, job: &JobStatus) -> f64 {
        let Some(history) = self.loss_history.get(&job.id()) else {
            return self.config.cold_start_gradient;
        };
        if history.len() < 2 {
            return self.config.cold_start_gradient;
        }
        // Slope over the last few observations, clamped non-negative.
        let tail = &history[history.len().saturating_sub(5)..];
        let first = tail.first().expect("non-empty");
        let last = tail.last().expect("non-empty");
        let depochs = (last.0 - first.0).max(1e-9);
        ((first.1 - last.1) / depochs).max(0.0)
    }

    fn plan(&self, view: &ClusterView<'_>) -> Schedule {
        PLAN_ROUNDS.inc();
        // Rank jobs by quality gradient, then allocate greedily: one GPU
        // each first (fairness floor), then extra GPUs to the steepest
        // improvers up to their request.
        let mut jobs: Vec<&JobStatus> = view.jobs.values().filter(|j| !j.is_completed()).collect();
        jobs.sort_by(|a, b| {
            self.quality_gradient(b)
                .total_cmp(&self.quality_gradient(a))
        });
        let total = view.spec.total_gpus();
        let mut alloc: Vec<(JobId, u32)> = Vec::new();
        let mut free = total;
        for j in &jobs {
            if free == 0 {
                break;
            }
            alloc.push((j.id(), 1));
            free -= 1;
        }
        // Second pass: top up the steepest improvers toward their request.
        for j in &jobs {
            if free == 0 {
                break;
            }
            if let Some(entry) = alloc.iter_mut().find(|(id, _)| *id == j.id()) {
                let want = j.spec.requested_gpus.min(j.spec.submit_batch);
                let extra = want.saturating_sub(entry.1).min(free);
                entry.1 += extra;
                free -= extra;
            }
        }
        // Pack contiguously in allocation order.
        let mut schedule = Schedule::empty(total);
        let mut next_gpu = 0u32;
        for (job, count) in alloc {
            if count == 0 {
                continue;
            }
            let gpus: Vec<GpuId> = (next_gpu..next_gpu + count).map(GpuId).collect();
            if assign_fixed_batch(view, &mut schedule, job, &gpus) {
                next_gpu += count;
            }
        }
        schedule.aligned_with(view.deployed)
    }
}

impl Default for Slaq {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Slaq {
    fn name(&self) -> &'static str {
        "SLAQ"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::CheckpointRestart
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("SLAQ", event, view);
        ROUNDS.inc();
        if self.next_tick.is_none() {
            self.next_tick = Some(view.now + self.config.interval);
        }
        let replan = match event {
            SchedEvent::EpochEnded(id) => {
                if let Some(job) = view.jobs.get(&id) {
                    let h = self.loss_history.entry(id).or_default();
                    h.push((f64::from(job.epochs_done), job.current_loss));
                    if h.len() > 32 {
                        h.remove(0);
                    }
                }
                false
            }
            SchedEvent::JobCompleted(id) => {
                self.loss_history.remove(&id);
                true
            }
            SchedEvent::JobArrived(_) => true,
            SchedEvent::Tick => {
                self.next_tick = Some(view.now + self.config.interval);
                true
            }
        };
        if !replan {
            return None;
        }
        let schedule = self.plan(view);
        let out = (&schedule != view.deployed).then_some(schedule);
        if out.is_some() {
            DEPLOYMENTS_PROPOSED.inc();
        }
        out
    }

    fn next_wakeup(&self, _now: SimTime) -> Option<SimTime> {
        self.next_tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;

    #[test]
    fn fresh_jobs_get_admitted_immediately() {
        let mut h = Harness::new(1, 4);
        let mut s = Slaq::new();
        let a = h.submit(0, 2);
        let out = s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        assert!(out.is_running(a));
    }

    #[test]
    fn steep_improvers_outrank_plateaued_jobs() {
        let mut h = Harness::new(1, 4);
        let mut s = Slaq::new();
        let a = h.submit(0, 4);
        let b = h.submit(1, 4);
        // Job a plateaued (flat loss), job b improving fast.
        s.loss_history
            .insert(a, vec![(1.0, 1.0), (2.0, 0.99), (3.0, 0.985)]);
        s.loss_history
            .insert(b, vec![(1.0, 2.0), (2.0, 1.2), (3.0, 0.6)]);
        assert!(s.quality_gradient(&h.jobs[&b]) > s.quality_gradient(&h.jobs[&a]));
        // Fairness floor gives both one GPU; the improver takes the rest.
        h.jobs.get_mut(&a).unwrap().epochs_in_current_schedule = 1;
        let out = s.on_event(SchedEvent::Tick, &h.view()).unwrap();
        assert!(out.is_running(b));
        assert!(
            out.gpu_count(b) > out.gpu_count(a),
            "improver got {} GPUs vs plateaued {}",
            out.gpu_count(b),
            out.gpu_count(a)
        );
    }

    #[test]
    fn history_is_bounded() {
        let mut h = Harness::new(1, 4);
        let mut s = Slaq::new();
        let a = h.submit(0, 1);
        h.deploy(s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap());
        for e in 1..=50 {
            h.add_service(0, 5.0, 1);
            let _ = s.on_event(SchedEvent::EpochEnded(a), &h.view());
            assert!(s.loss_history[&a].len() <= 32, "unbounded at epoch {e}");
        }
    }

    #[test]
    fn identity() {
        let s = Slaq::new();
        assert_eq!(s.name(), "SLAQ");
        assert_eq!(s.mechanism(), ScalingMechanism::CheckpointRestart);
        assert!(!s.scales_batch_sizes());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = Slaq::with_config(SlaqConfig {
            interval: 0.0,
            ..SlaqConfig::default()
        });
    }
}
