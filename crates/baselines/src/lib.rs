//! # ones-baselines — the comparison schedulers of §4.1
//!
//! Faithful re-implementations of the schedulers ONES is evaluated against
//! (Table 3), plus two reference policies used for ablations:
//!
//! | Scheduler | Strategy | Preemption | Elastic size | Elastic batch |
//! |-----------|----------|------------|--------------|---------------|
//! | [`tiresias::Tiresias`] | greedy (discretised 2D-LAS MLFQ) | yes | no | no |
//! | [`optimus::Optimus`]   | greedy (marginal-gain, 10-min interval) | yes | yes | no |
//! | [`drl::DrlScheduler`]  | learned (REINFORCE policy) | no | yes | no |
//! | [`fifo::Fifo`]         | FIFO gang scheduling | no | no | no |
//! | [`gandiva::Gandiva`]   | time-slicing round-robin (suspend/resume) | yes | no | no |
//! | [`slaq::Slaq`]         | quality-driven greedy (loss-gradient ranking) | yes | yes | no |
//! | [`srtf::SrtfOracle`]   | oracle SRTF (ground-truth remaining time) | yes | no | no |
//!
//! All baselines run jobs at their *submitted* batch size (no linear LR
//! re-scaling is ever needed) and re-configure via checkpoint restart —
//! the two properties whose absence ONES exploits.

pub mod common;
pub mod drl;
pub mod fifo;
pub mod gandiva;
pub mod optimus;
pub mod slaq;
pub mod srtf;
pub mod tiresias;

pub use drl::DrlScheduler;
pub use fifo::Fifo;
pub use gandiva::Gandiva;
pub use optimus::Optimus;
pub use slaq::Slaq;
pub use srtf::SrtfOracle;
pub use tiresias::Tiresias;
