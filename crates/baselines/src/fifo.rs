//! FIFO gang scheduler.
//!
//! The simplest reference policy: jobs start in arrival order, each with
//! its requested GPU count, whenever a gang of idle GPUs is available; no
//! preemption, no elasticity. Used by ablation benches as the
//! no-intelligence floor.

use crate::common::{assign_fixed_batch, effective_request, pick_gang};
use ones_schedcore::{ClusterView, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_sync::LazyLock;

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.fifo.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.fifo.deployments_proposed"));

/// First-in-first-out gang scheduler.
#[derive(Debug, Default)]
pub struct Fifo;

impl Fifo {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Fifo
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::CheckpointRestart
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("FIFO", event, view);
        ROUNDS.inc();
        // Only react when the set of runnable jobs or free GPUs changes.
        if matches!(event, SchedEvent::EpochEnded(_)) {
            return None;
        }
        let mut schedule = view.deployed.clone();
        let mut changed = false;
        // Strict FIFO: stop at the first job whose gang does not fit.
        let mut waiting = view.waiting_jobs();
        waiting.sort_by_key(|j| j.arrival);
        for job in waiting {
            let want = effective_request(view, job.id());
            match pick_gang(&schedule, want) {
                Some(gang) => {
                    if assign_fixed_batch(view, &mut schedule, job.id(), &gang) {
                        changed = true;
                    }
                }
                None => break,
            }
        }
        if changed {
            DEPLOYMENTS_PROPOSED.inc();
        }
        changed.then_some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;
    use ones_workload::JobId;

    #[test]
    fn starts_jobs_in_arrival_order() {
        let mut h = Harness::new(1, 4);
        let mut f = Fifo::new();
        let a = h.submit(0, 2);
        let s = f.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(s);
        assert_eq!(h.deployed.gpu_count(a), 2);
        let b = h.submit(1, 2);
        let s = f.on_event(SchedEvent::JobArrived(b), &h.view()).unwrap();
        h.deploy(s);
        assert_eq!(h.deployed.gpu_count(b), 2);
    }

    #[test]
    fn head_of_line_blocking_is_strict() {
        let mut h = Harness::new(1, 4);
        let mut f = Fifo::new();
        let a = h.submit(0, 4);
        let s = f.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(s);
        // Big job 1 (needs 4) can't fit; small job 2 behind it must NOT
        // jump the queue under strict FIFO.
        let b = h.submit(1, 4);
        assert!(f.on_event(SchedEvent::JobArrived(b), &h.view()).is_none());
        let c = h.submit(2, 1);
        assert!(f.on_event(SchedEvent::JobArrived(c), &h.view()).is_none());
        // When the head job completes, both pending jobs start.
        h.complete(0);
        let s = f
            .on_event(SchedEvent::JobCompleted(a), &h.view())
            .expect("completion frees the gang");
        assert!(s.is_running(b));
        // b takes 4 GPUs on a 4-GPU cluster; c still waits.
        assert!(!s.is_running(c));
    }

    #[test]
    fn epoch_events_are_ignored() {
        let mut h = Harness::new(1, 4);
        let mut f = Fifo::new();
        let a = h.submit(0, 1);
        let s = f.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(s);
        assert!(f.on_event(SchedEvent::EpochEnded(a), &h.view()).is_none());
    }

    #[test]
    fn identity() {
        let f = Fifo::new();
        assert_eq!(f.name(), "FIFO");
        assert_eq!(f.mechanism(), ScalingMechanism::CheckpointRestart);
        assert!(!f.scales_batch_sizes());
        let _ = JobId(0);
    }
}
