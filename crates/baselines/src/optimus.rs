//! Optimus: periodic greedy marginal-gain scheduling with loss-curve
//! prediction (Peng et al., EuroSys '18 — baseline of §4.1).
//!
//! Optimus re-plans on a fixed interval (10 minutes in its paper and in
//! §4.2's experiments; jobs arriving between rounds wait, which is exactly
//! the queueing weakness ONES's online search removes). At each round it:
//!
//! 1. fits each job's loss curve `l(k) = 1/(a·k + b) + c` on the epochs
//!    observed so far and extrapolates the epochs remaining to
//!    convergence;
//! 2. converts remaining epochs into remaining time via a resource–speed
//!    model (here: the shared throughput model, standing in for Optimus's
//!    fitted speed curves);
//! 3. allocates GPUs greedily: repeatedly grant one more GPU to the job
//!    with the greatest marginal reduction in estimated remaining time,
//!    starting from one GPU per job (its fairness floor), until the
//!    cluster is full or no job benefits.
//!
//! Job size is elastic; batch size is not (Table 3): each job always runs
//! its submitted global batch.

use crate::common::assign_fixed_batch;
use ones_cluster::GpuId;
use ones_schedcore::{ClusterView, JobStatus, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_simcore::SimTime;
use ones_stats::LinearRegression;
use ones_sync::LazyLock;
use ones_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.optimus.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.optimus.deployments_proposed"));
static PLAN_ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.optimus.plan_rounds"));
static LOSS_POINTS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("baselines.optimus.loss_points"));

/// Optimus tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimusConfig {
    /// Re-planning interval, seconds (the Optimus paper uses 10 minutes).
    pub interval: f64,
    /// Remaining-epoch estimate used before a job has enough history to
    /// fit its loss curve.
    pub default_remaining_epochs: f64,
    /// Convergence threshold: a job is predicted done when its loss is
    /// within this fraction of the fitted asymptote-to-initial range.
    pub loss_margin: f64,
}

impl Default for OptimusConfig {
    fn default() -> Self {
        OptimusConfig {
            interval: 600.0,
            default_remaining_epochs: 25.0,
            loss_margin: 0.05,
        }
    }
}

/// The Optimus scheduler.
#[derive(Debug)]
pub struct Optimus {
    config: OptimusConfig,
    /// Per-job (epoch, loss) observations.
    loss_history: BTreeMap<JobId, Vec<(f64, f64)>>,
    /// Next planning round.
    next_tick: Option<SimTime>,
}

impl Optimus {
    /// Creates the scheduler with the paper's 10-minute interval.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(OptimusConfig::default())
    }

    /// Creates the scheduler with explicit configuration.
    #[must_use]
    pub fn with_config(config: OptimusConfig) -> Self {
        assert!(config.interval > 0.0, "interval must be positive");
        Optimus {
            config,
            loss_history: BTreeMap::new(),
            next_tick: None,
        }
    }

    /// Fits `l(k) = 1/(a·k + b) + c` and returns the epochs still needed
    /// until the loss is within `loss_margin` of the asymptote. Falls back
    /// to the configured default when the fit is impossible.
    #[must_use]
    pub fn remaining_epochs(&self, job: &JobStatus) -> f64 {
        let Some(history) = self.loss_history.get(&job.id()) else {
            return self.config.default_remaining_epochs;
        };
        if history.len() < 3 {
            return self.config.default_remaining_epochs;
        }
        let min_loss = history.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let mut best: Option<(f64, f64, f64, f64)> = None; // (sse, a, b, c)
        for step in 0..20 {
            let c = min_loss * 0.95 * f64::from(step) / 20.0;
            // Linearise: y = 1/(l − c) = a·k + b.
            let pts: Vec<(f64, f64)> = history
                .iter()
                .filter(|(_, l)| *l > c + 1e-9)
                .map(|&(k, l)| (k, 1.0 / (l - c)))
                .collect();
            if pts.len() < 3 {
                continue;
            }
            let xs: Vec<Vec<f64>> = pts.iter().map(|p| vec![p.0]).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let Some(fit) = LinearRegression::fit(&xs, &ys, 1e-9) else {
                continue;
            };
            let (a, b) = (fit.weights()[0], fit.intercept());
            if a <= 0.0 {
                continue; // loss must be decreasing
            }
            let sse: f64 = history
                .iter()
                .map(|&(k, l)| {
                    let pred = 1.0 / (a * k + b).max(1e-9) + c;
                    (pred - l).powi(2)
                })
                .sum();
            if best.is_none_or(|(s, ..)| sse < s) {
                best = Some((sse, a, b, c));
            }
        }
        let Some((_, a, b, c)) = best else {
            return self.config.default_remaining_epochs;
        };
        // Converged when l = c + margin · (l₀ − c).
        let l0 = history.first().expect("non-empty history").1;
        let target = c + self.config.loss_margin * (l0 - c).max(1e-9);
        let k_conv = (1.0 / (target - c) - b) / a;
        let k_now = history.last().expect("non-empty history").0;
        (k_conv - k_now).max(1.0)
    }

    /// Estimated remaining processing time of `job` on `c` GPUs, seconds.
    fn remaining_time(&self, view: &ClusterView<'_>, job: &JobStatus, c: u32) -> f64 {
        if c == 0 {
            return f64::INFINITY;
        }
        let batch = job.spec.submit_batch;
        if batch < c {
            return f64::INFINITY;
        }
        let profile = job.spec.profile();
        let base = batch / c;
        if base + u32::from(!batch.is_multiple_of(c)) > profile.max_local_batch {
            return f64::INFINITY;
        }
        let batches: Vec<u32> = (0..c).map(|i| base + u32::from(i < batch % c)).collect();
        // Speed model over a representative contiguous placement.
        let placement = ones_cluster::Placement::contiguous(0, c);
        let x = view.perf.throughput(&profile, &batches, &placement);
        let remaining_samples = self.remaining_epochs(job) * job.spec.dataset_size as f64;
        remaining_samples / x
    }

    /// The greedy marginal-gain allocation (counts per job).
    fn plan(&self, view: &ClusterView<'_>) -> BTreeMap<JobId, u32> {
        let jobs: Vec<&JobStatus> = view.jobs.values().filter(|j| !j.is_completed()).collect();
        let mut alloc: BTreeMap<JobId, u32> = BTreeMap::new();
        let mut free = view.spec.total_gpus();
        // Fairness floor: one worker each while GPUs remain, in arrival
        // order.
        let mut by_arrival = jobs.clone();
        by_arrival.sort_by_key(|j| j.arrival);
        for job in &by_arrival {
            if free == 0 {
                break;
            }
            alloc.insert(job.id(), 1);
            free -= 1;
        }
        // Greedy: grant one more GPU to the largest marginal gain.
        while free > 0 {
            let mut best: Option<(f64, JobId)> = None;
            for job in &jobs {
                let Some(&c) = alloc.get(&job.id()) else {
                    continue;
                };
                let gain =
                    self.remaining_time(view, job, c) - self.remaining_time(view, job, c + 1);
                if gain.is_finite() && gain > 0.0 && best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, job.id()));
                }
            }
            match best {
                Some((_, id)) => {
                    *alloc.get_mut(&id).expect("allocated above") += 1;
                    free -= 1;
                }
                None => break,
            }
        }
        alloc
    }
}

impl Default for Optimus {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Optimus {
    fn name(&self) -> &'static str {
        "Optimus"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::CheckpointRestart
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = crate::common::round_span("Optimus", event, view);
        ROUNDS.inc();
        // Arm the periodic timer on the first event ever seen.
        if self.next_tick.is_none() {
            self.next_tick = Some(view.now + self.config.interval);
        }
        match event {
            SchedEvent::EpochEnded(id) => {
                if let Some(job) = view.jobs.get(&id) {
                    self.loss_history
                        .entry(id)
                        .or_default()
                        .push((f64::from(job.epochs_done), job.current_loss));
                    LOSS_POINTS.inc();
                }
                None
            }
            SchedEvent::JobCompleted(id) => {
                self.loss_history.remove(&id);
                None // GPUs stay idle until the next round (§2.1's critique)
            }
            SchedEvent::JobArrived(_) => None, // arrivals wait for the round
            SchedEvent::Tick => {
                self.next_tick = Some(view.now + self.config.interval);
                PLAN_ROUNDS.inc();
                let alloc = self.plan(view);
                // Pack jobs contiguously in id order.
                let mut schedule = Schedule::empty(view.spec.total_gpus());
                let mut next_gpu = 0u32;
                for (job, count) in &alloc {
                    if *count == 0 {
                        continue;
                    }
                    let gpus: Vec<GpuId> = (next_gpu..next_gpu + count).map(GpuId).collect();
                    if assign_fixed_batch(view, &mut schedule, *job, &gpus) {
                        next_gpu += count;
                    }
                }
                // Jobs whose worker count is unchanged keep their GPUs —
                // Optimus only migrates what it resizes.
                let schedule = schedule.aligned_with(view.deployed);
                let out = (&schedule != view.deployed).then_some(schedule);
                if out.is_some() {
                    DEPLOYMENTS_PROPOSED.inc();
                }
                out
            }
        }
    }

    fn next_wakeup(&self, _now: SimTime) -> Option<SimTime> {
        self.next_tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::Harness;

    #[test]
    fn arrivals_wait_for_the_next_round() {
        let mut h = Harness::new(1, 4);
        let mut o = Optimus::new();
        let a = h.submit(0, 2);
        assert!(o.on_event(SchedEvent::JobArrived(a), &h.view()).is_none());
        // Timer armed 600 s after the first event.
        assert_eq!(
            o.next_wakeup(h.view().now).unwrap(),
            SimTime::from_secs(600.0)
        );
        // At the tick, the job is scheduled.
        h.now = 600.0;
        let out = o.on_event(SchedEvent::Tick, &h.view()).unwrap();
        assert!(out.is_running(a));
    }

    #[test]
    fn greedy_fills_the_whole_cluster_for_one_job_only_if_it_helps() {
        let mut h = Harness::new(2, 4);
        let mut o = Optimus::new();
        let a = h.submit(0, 1);
        let _ = o.on_event(SchedEvent::JobArrived(a), &h.view());
        h.now = 600.0;
        let out = o.on_event(SchedEvent::Tick, &h.view()).unwrap();
        let c = out.gpu_count(a);
        // ResNet18/CIFAR10 at B=256: communication makes huge worker
        // counts counterproductive — Optimus must stop early.
        assert!(c >= 1, "fairness floor");
        assert!(
            c < 8,
            "greedy must stop when marginal gain vanishes, got {c}"
        );
    }

    #[test]
    fn allocation_respects_marginal_gains_across_jobs() {
        let mut h = Harness::new(2, 4);
        let mut o = Optimus::new();
        for i in 0..4 {
            let j = h.submit(i, 1);
            let _ = o.on_event(SchedEvent::JobArrived(j), &h.view());
        }
        h.now = 600.0;
        let out = o.on_event(SchedEvent::Tick, &h.view()).unwrap();
        // Everyone gets the fairness floor.
        for i in 0..4 {
            assert!(
                out.gpu_count(ones_workload::JobId(i)) >= 1,
                "job {i} starved"
            );
        }
    }

    #[test]
    fn loss_fit_predicts_fewer_epochs_for_faster_jobs() {
        let mut h = Harness::new(1, 4);
        let mut o = Optimus::new();
        let a = h.submit(0, 1);
        let out = {
            let _ = o.on_event(SchedEvent::JobArrived(a), &h.view());
            h.now = 600.0;
            o.on_event(SchedEvent::Tick, &h.view()).unwrap()
        };
        h.deploy(out);
        // Feed epochs: loss falls on the simulator's curve.
        for e in 1..=12 {
            h.add_service(0, 10.0, 1);
            let _ = o.on_event(SchedEvent::EpochEnded(a), &h.view());
            assert_eq!(o.loss_history[&a].len(), e);
        }
        let jr = o.remaining_epochs(&h.jobs[&a]);
        assert!(jr.is_finite() && jr >= 1.0);
        // With far more progress the estimate must shrink.
        let mut h2 = Harness::new(1, 4);
        let b = h2.submit(1, 1);
        let mut o2 = Optimus::new();
        let _ = o2.on_event(SchedEvent::JobArrived(b), &h2.view());
        let out2 = {
            h2.now = 600.0;
            o2.on_event(SchedEvent::Tick, &h2.view()).unwrap()
        };
        h2.deploy(out2);
        for _ in 0..30 {
            h2.add_service(1, 10.0, 1);
            let _ = o2.on_event(SchedEvent::EpochEnded(b), &h2.view());
        }
        let jr2 = o2.remaining_epochs(&h2.jobs[&b]);
        assert!(
            jr2 < jr + 5.0,
            "estimate should not grow with progress: {jr} -> {jr2}"
        );
    }

    #[test]
    fn completions_leave_gpus_idle_until_next_round() {
        let mut h = Harness::new(1, 4);
        let mut o = Optimus::new();
        let a = h.submit(0, 2);
        let _ = o.on_event(SchedEvent::JobArrived(a), &h.view());
        h.now = 600.0;
        let out = o.on_event(SchedEvent::Tick, &h.view()).unwrap();
        h.deploy(out);
        h.now = 700.0;
        h.complete(0);
        assert!(
            o.on_event(SchedEvent::JobCompleted(a), &h.view()).is_none(),
            "Optimus must not react between rounds"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = Optimus::with_config(OptimusConfig {
            interval: 0.0,
            ..OptimusConfig::default()
        });
    }
}
