//! Ring all-reduce cost model.
//!
//! Data-parallel training synchronises gradients once per step with an
//! all-reduce over the job's workers (the paper uses NCCL, §1). We model the
//! standard ring algorithm under the α–β cost model:
//!
//! ```text
//! T = 2 (n − 1) · α_link  +  2 (n − 1)/n · bytes / B_eff
//! ```
//!
//! where `n` is the worker count, `α_link` the per-hop latency of the
//! slowest link in the ring, and `B_eff` the per-flow bandwidth of the
//! bottleneck link. When the ring crosses nodes, the bottleneck is the
//! inter-node fabric; if one node's workers form `k` disjoint runs in the
//! ring, its NIC carries `k` concurrent flows and per-flow bandwidth drops
//! by `k` — this is what makes the *reorder* operation profitable.

use crate::placement::Placement;
use crate::topology::ClusterSpec;
use ones_sync::LazyLock;
use serde::{Deserialize, Serialize};

// Model-evaluation counters (DESIGN.md §5). Handles are interned once;
// each evaluation pays a single gated relaxed-atomic increment, cheap
// enough for the evolutionary scoring hot loop that calls these models
// thousands of times per generation.
static RING_EVALS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("cluster.allreduce.ring_evals"));
static TREE_EVALS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("cluster.allreduce.tree_evals"));
static BROADCAST_EVALS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("cluster.allreduce.broadcast_evals"));
// Predicted-time distributions. Observing on every evaluation would cost a
// mutex lock in the throughput-model hot loop (millions of evals per search
// round), so these are gated on the Full level — the same gate as spans —
// keeping the default-level overhead inside the <5% observability budget
// (DESIGN.md §5).
static RING_TIME_US: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("cluster.allreduce.ring_time_us"));
static TREE_TIME_US: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("cluster.allreduce.tree_time_us"));
static BROADCAST_TIME_US: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("cluster.allreduce.broadcast_time_us"));

/// All-reduce cost model bound to a cluster fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllReduceModel {
    spec: ClusterSpec,
}

impl AllReduceModel {
    /// Binds the model to a cluster.
    #[must_use]
    pub fn new(spec: ClusterSpec) -> Self {
        AllReduceModel { spec }
    }

    /// The underlying cluster spec.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Time in seconds for one ring all-reduce of `bytes` gradient bytes
    /// over `placement`. Returns 0 for 0 or 1 workers (no synchronisation).
    #[must_use]
    pub fn time(&self, placement: &Placement, bytes: f64) -> f64 {
        allreduce_time(&self.spec, placement, bytes)
    }

    /// Time for a parameter broadcast of `bytes` from one worker to the
    /// rest (used when new workers join during elastic scaling, §3.3.1):
    /// modelled as a pipelined chain transfer.
    #[must_use]
    pub fn broadcast_time(&self, placement: &Placement, bytes: f64) -> f64 {
        BROADCAST_EVALS.inc();
        let n = placement.len();
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let (lat, bw) = bottleneck(&self.spec, placement);
        // Pipelined ring broadcast: latency per hop + full payload once
        // through the bottleneck.
        let t = (n - 1) as f64 * lat + bytes / bw;
        if ones_obs::spans_enabled() {
            BROADCAST_TIME_US.observe(t * 1e6);
        }
        t
    }
}

impl AllReduceModel {
    /// Time for a binary-tree all-reduce (reduce up + broadcast down) of
    /// `bytes` over `placement`. Trees pay `O(log n)` latency hops but move
    /// the full payload at every level, so they beat rings only for small
    /// messages or very large worker counts where the ring's `2(n−1)`
    /// latency terms dominate.
    #[must_use]
    pub fn tree_time(&self, placement: &Placement, bytes: f64) -> f64 {
        tree_allreduce_time(&self.spec, placement, bytes)
    }

    /// The cheaper of ring and tree for this transfer — what NCCL's
    /// algorithm selection approximates.
    #[must_use]
    pub fn best_time(&self, placement: &Placement, bytes: f64) -> f64 {
        self.time(placement, bytes)
            .min(self.tree_time(placement, bytes))
    }
}

/// Free-function form of [`AllReduceModel::tree_time`].
#[must_use]
pub fn tree_allreduce_time(spec: &ClusterSpec, placement: &Placement, bytes: f64) -> f64 {
    assert!(bytes >= 0.0, "negative message size");
    TREE_EVALS.inc();
    let n = placement.len();
    if n <= 1 || bytes == 0.0 {
        return 0.0;
    }
    let levels = (n as f64).log2().ceil().max(1.0);
    let (lat, bw) = bottleneck(spec, placement);
    // Reduce + broadcast: 2·levels hops, each carrying the full payload.
    let t = 2.0 * levels * (lat + bytes / bw);
    if ones_obs::spans_enabled() {
        TREE_TIME_US.observe(t * 1e6);
    }
    t
}

/// Bottleneck `(latency, per-flow bandwidth)` of a ring over `placement`.
fn bottleneck(spec: &ClusterSpec, placement: &Placement) -> (f64, f64) {
    let ic = spec.interconnect;
    if placement.nodes_spanned(spec) <= 1 {
        (ic.intra_node_lat, ic.intra_node_bw)
    } else {
        let runs = placement.max_runs_per_node(spec).max(1) as f64;
        (ic.inter_node_lat, ic.inter_node_bw / runs)
    }
}

/// Free-function form of [`AllReduceModel::time`].
///
/// # Example
/// ```
/// use ones_cluster::{allreduce_time, ClusterSpec, Placement};
///
/// let spec = ClusterSpec::longhorn();
/// let single = Placement::contiguous(0, 1);
/// let four = Placement::contiguous(0, 4);
/// let grad_bytes = 100.0e6; // ~25M-parameter model in f32
/// assert_eq!(allreduce_time(&spec, &single, grad_bytes), 0.0);
/// assert!(allreduce_time(&spec, &four, grad_bytes) > 0.0);
/// ```
#[must_use]
pub fn allreduce_time(spec: &ClusterSpec, placement: &Placement, bytes: f64) -> f64 {
    assert!(bytes >= 0.0, "negative message size");
    RING_EVALS.inc();
    let n = placement.len();
    if n <= 1 || bytes == 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    let (lat, bw) = bottleneck(spec, placement);
    let t = 2.0 * (nf - 1.0) * lat + 2.0 * (nf - 1.0) / nf * bytes / bw;
    if ones_obs::spans_enabled() {
        RING_TIME_US.observe(t * 1e6);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GpuId;

    fn spec() -> ClusterSpec {
        ClusterSpec::new(4, 4)
    }

    fn p(ids: &[u32]) -> Placement {
        Placement::new(ids.iter().map(|&i| GpuId(i)).collect())
    }

    const MB100: f64 = 100.0e6;

    #[test]
    fn single_worker_costs_nothing() {
        assert_eq!(allreduce_time(&spec(), &p(&[0]), MB100), 0.0);
        assert_eq!(allreduce_time(&spec(), &Placement::empty(), MB100), 0.0);
        assert_eq!(allreduce_time(&spec(), &p(&[0, 1]), 0.0), 0.0);
    }

    #[test]
    fn cost_grows_with_workers() {
        let s = spec();
        let t2 = allreduce_time(&s, &p(&[0, 1]), MB100);
        let t4 = allreduce_time(&s, &p(&[0, 1, 2, 3]), MB100);
        assert!(t4 > t2, "t4={t4}, t2={t2}");
    }

    #[test]
    fn bandwidth_term_saturates() {
        // 2(n-1)/n -> 2, so cost at large n is bounded by ~2·bytes/bw + latency.
        let s = ClusterSpec::new(1, 64);
        let t8 = allreduce_time(&s, &Placement::contiguous(0, 8), MB100);
        let t64 = allreduce_time(&s, &Placement::contiguous(0, 64), MB100);
        assert!(t64 < 2.0 * t8, "saturation violated: t8={t8}, t64={t64}");
    }

    #[test]
    fn crossing_nodes_is_slower() {
        let s = spec();
        let intra = allreduce_time(&s, &p(&[0, 1, 2, 3]), MB100);
        let inter = allreduce_time(&s, &p(&[0, 1, 2, 4]), MB100);
        assert!(
            inter > 2.0 * intra,
            "inter-node all-reduce should be much slower: intra={intra}, inter={inter}"
        );
    }

    #[test]
    fn fragmented_placement_is_slower_than_packed() {
        let s = spec();
        // 8 workers over 2 nodes: packed (0-7) vs interleaved (even ids).
        let packed = p(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let interleaved = p(&[0, 2, 4, 6, 8, 10, 12, 14]);
        let t_packed = allreduce_time(&s, &packed, MB100);
        let t_inter = allreduce_time(&s, &interleaved, MB100);
        assert!(
            t_inter > t_packed,
            "reorder should pay off: packed={t_packed}, interleaved={t_inter}"
        );
    }

    #[test]
    fn cost_scales_linearly_in_bytes_at_fixed_n() {
        let s = spec();
        let pl = p(&[0, 1, 2, 3]);
        let t1 = allreduce_time(&s, &pl, MB100);
        let t2 = allreduce_time(&s, &pl, 2.0 * MB100);
        // Latency terms are tiny compared to 100 MB payloads.
        assert!((t2 / t1 - 2.0).abs() < 0.05, "ratio {}", t2 / t1);
    }

    #[test]
    fn broadcast_cheaper_than_allreduce_at_scale() {
        let s = spec();
        let m = AllReduceModel::new(s);
        let pl = p(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let bcast = m.broadcast_time(&pl, MB100);
        let ar = m.time(&pl, MB100);
        assert!(bcast > 0.0);
        assert!(bcast < ar, "bcast={bcast}, allreduce={ar}");
        assert_eq!(m.broadcast_time(&p(&[0]), MB100), 0.0);
    }

    #[test]
    fn model_accessors() {
        let m = AllReduceModel::new(spec());
        assert_eq!(m.spec().total_gpus(), 16);
    }

    #[test]
    fn tree_beats_ring_for_tiny_messages_at_scale() {
        // 64 workers, 4 KiB message: ring pays 2·63 latency hops, tree
        // only 2·6.
        let s = ClusterSpec::new(16, 4);
        let m = AllReduceModel::new(s);
        let pl = Placement::contiguous(0, 64);
        let tiny = 4096.0;
        assert!(m.tree_time(&pl, tiny) < m.time(&pl, tiny));
        assert_eq!(m.best_time(&pl, tiny), m.tree_time(&pl, tiny));
    }

    #[test]
    fn ring_beats_tree_for_large_messages() {
        // The ring pipelines the payload (2(n−1)/n·bytes ≈ 2·bytes total);
        // the tree re-sends the full payload at every level.
        let s = spec();
        let m = AllReduceModel::new(s);
        let pl = p(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(m.time(&pl, MB100) < m.tree_time(&pl, MB100));
        assert_eq!(m.best_time(&pl, MB100), m.time(&pl, MB100));
    }

    #[test]
    fn tree_time_degenerate_cases() {
        let m = AllReduceModel::new(spec());
        assert_eq!(m.tree_time(&p(&[0]), MB100), 0.0);
        assert_eq!(m.tree_time(&p(&[0, 1]), 0.0), 0.0);
        assert!(m.tree_time(&p(&[0, 1]), MB100) > 0.0);
    }
}
