//! Worker placement and locality metrics.
//!
//! A [`Placement`] is the set of GPUs a job's workers occupy. Its locality
//! determines communication cost: a ring all-reduce over workers scattered
//! across many nodes crosses the (slow, shared) inter-node fabric more
//! often. The evolutionary *reorder* operation (§3.2.2, Figure 10) exists
//! precisely to pack each job's workers contiguously; the metrics here
//! ([`Placement::nodes_spanned`], [`Placement::max_runs_per_node`]) quantify
//! what it improves.

use crate::topology::{ClusterSpec, GpuId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sorted, duplicate-free set of GPUs assigned to one job.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Placement {
    gpus: Vec<GpuId>,
}

impl Placement {
    /// Builds a placement from arbitrary GPU ids (sorted and deduplicated).
    #[must_use]
    pub fn new(mut gpus: Vec<GpuId>) -> Self {
        gpus.sort_unstable();
        gpus.dedup();
        Placement { gpus }
    }

    /// The empty placement (job not running).
    #[must_use]
    pub fn empty() -> Self {
        Placement::default()
    }

    /// A contiguous placement starting at GPU `first` with `count` workers.
    #[must_use]
    pub fn contiguous(first: u32, count: u32) -> Self {
        Placement {
            gpus: (first..first + count).map(GpuId).collect(),
        }
    }

    /// The GPUs, sorted ascending.
    #[must_use]
    pub fn gpus(&self) -> &[GpuId] {
        &self.gpus
    }

    /// Number of workers `c_j`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether the job holds no GPUs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Whether the placement contains a GPU.
    #[must_use]
    pub fn contains(&self, gpu: GpuId) -> bool {
        self.gpus.binary_search(&gpu).is_ok()
    }

    /// Number of distinct nodes the workers span.
    #[must_use]
    pub fn nodes_spanned(&self, spec: &ClusterSpec) -> usize {
        let mut nodes: Vec<NodeId> = self.gpus.iter().map(|&g| spec.node_of(g)).collect();
        nodes.dedup();
        nodes.len()
    }

    /// Per-node worker counts.
    #[must_use]
    pub fn workers_per_node(&self, spec: &ClusterSpec) -> BTreeMap<NodeId, usize> {
        let mut map = BTreeMap::new();
        for &g in &self.gpus {
            *map.entry(spec.node_of(g)).or_insert(0) += 1;
        }
        map
    }

    /// Number of *contiguous runs* of this placement's GPUs on the node
    /// where that count is highest.
    ///
    /// In a ring all-reduce ordered by GPU id, every run boundary is a pair
    /// of ring links that traverses the node's NIC. A node whose workers
    /// form `k` disjoint runs therefore pushes `k` concurrent flows through
    /// one NIC, dividing per-flow bandwidth by `k`. Packing workers
    /// contiguously (the *reorder* operation) brings this to 1.
    #[must_use]
    pub fn max_runs_per_node(&self, spec: &ClusterSpec) -> usize {
        let mut runs: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut prev: Option<GpuId> = None;
        for &g in &self.gpus {
            let node = spec.node_of(g);
            let contiguous_same_node =
                prev.is_some_and(|p| p.0 + 1 == g.0 && spec.node_of(p) == node);
            if !contiguous_same_node {
                *runs.entry(node).or_insert(0) += 1;
            } else {
                runs.entry(node).or_insert(0);
            }
            prev = Some(g);
        }
        runs.values().copied().max().unwrap_or(0)
    }

    /// Locality score in (0, 1]: 1 for a single-node contiguous placement,
    /// decreasing with fragmentation. Used by tests and diagnostics.
    #[must_use]
    pub fn locality_score(&self, spec: &ClusterSpec) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let runs = self.max_runs_per_node(spec).max(1);
        let span = self.nodes_spanned(spec);
        let min_span = self.len().div_ceil(spec.gpus_per_node as usize);
        (min_span as f64 / span as f64) / runs as f64
    }

    /// Union with another placement.
    #[must_use]
    pub fn union(&self, other: &Placement) -> Placement {
        let mut gpus = self.gpus.clone();
        gpus.extend_from_slice(&other.gpus);
        Placement::new(gpus)
    }
}

impl FromIterator<GpuId> for Placement {
    fn from_iter<T: IntoIterator<Item = GpuId>>(iter: T) -> Self {
        Placement::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::new(4, 4) // 16 GPUs
    }

    fn p(ids: &[u32]) -> Placement {
        Placement::new(ids.iter().map(|&i| GpuId(i)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let pl = p(&[3, 1, 3, 2]);
        assert_eq!(pl.gpus(), &[GpuId(1), GpuId(2), GpuId(3)]);
        assert_eq!(pl.len(), 3);
        assert!(pl.contains(GpuId(2)));
        assert!(!pl.contains(GpuId(0)));
    }

    #[test]
    fn contiguous_constructor() {
        let pl = Placement::contiguous(4, 3);
        assert_eq!(pl.gpus(), &[GpuId(4), GpuId(5), GpuId(6)]);
    }

    #[test]
    fn nodes_spanned_counts_distinct_nodes() {
        let s = spec();
        assert_eq!(p(&[0, 1, 2, 3]).nodes_spanned(&s), 1);
        assert_eq!(p(&[0, 4]).nodes_spanned(&s), 2);
        assert_eq!(p(&[0, 5, 10, 15]).nodes_spanned(&s), 4);
        assert_eq!(Placement::empty().nodes_spanned(&s), 0);
    }

    #[test]
    fn contiguous_single_node_has_one_run() {
        let s = spec();
        assert_eq!(p(&[0, 1, 2, 3]).max_runs_per_node(&s), 1);
        assert_eq!(p(&[4, 5]).max_runs_per_node(&s), 1);
    }

    #[test]
    fn scattered_workers_have_multiple_runs() {
        let s = spec();
        // GPUs 0 and 2 on node 0: two disjoint runs.
        assert_eq!(p(&[0, 2]).max_runs_per_node(&s), 2);
        // GPUs 0, 1 contiguous + 3: runs = 2 on node 0.
        assert_eq!(p(&[0, 1, 3]).max_runs_per_node(&s), 2);
    }

    #[test]
    fn runs_do_not_join_across_node_boundary() {
        let s = spec();
        // GPUs 3 and 4 are id-adjacent but on different nodes: one run each.
        assert_eq!(p(&[3, 4]).max_runs_per_node(&s), 1);
        assert_eq!(p(&[3, 4]).nodes_spanned(&s), 2);
    }

    #[test]
    fn locality_score_prefers_packed() {
        let s = spec();
        let packed = p(&[0, 1, 2, 3]);
        let spread = p(&[0, 4, 8, 12]);
        let fragmented = p(&[0, 2, 4, 6]);
        assert!(packed.locality_score(&s) > spread.locality_score(&s));
        assert!(packed.locality_score(&s) > fragmented.locality_score(&s));
        assert_eq!(packed.locality_score(&s), 1.0);
    }

    #[test]
    fn workers_per_node_counts() {
        let s = spec();
        let counts = p(&[0, 1, 4, 8, 9, 10]).workers_per_node(&s);
        assert_eq!(counts[&NodeId(0)], 2);
        assert_eq!(counts[&NodeId(1)], 1);
        assert_eq!(counts[&NodeId(2)], 3);
    }

    #[test]
    fn union_merges() {
        let a = p(&[0, 1]);
        let b = p(&[1, 2]);
        assert_eq!(a.union(&b).gpus(), &[GpuId(0), GpuId(1), GpuId(2)]);
    }

    #[test]
    fn from_iterator_collects() {
        let pl: Placement = (0..3).map(GpuId).collect();
        assert_eq!(pl.len(), 3);
    }
}
