//! Cluster shapes, device identifiers and link speeds.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single GPU device. GPUs are numbered densely from 0 in
/// node order: GPU `g` lives on node `g / gpus_per_node`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GpuId(pub u32);

/// Identifier of a server node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Link speeds of the cluster fabric.
///
/// Bandwidths are bytes/second of achievable payload throughput per flow;
/// latencies are one-way seconds per pipeline stage. Defaults approximate
/// Longhorn: NVLink 2.0 inside a node, EDR InfiniBand (100 Gb/s) between
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Achievable intra-node (NVLink) bandwidth per flow, bytes/s.
    pub intra_node_bw: f64,
    /// Achievable inter-node (InfiniBand) bandwidth per flow, bytes/s.
    pub inter_node_bw: f64,
    /// Intra-node hop latency, seconds.
    pub intra_node_lat: f64,
    /// Inter-node hop latency, seconds.
    pub inter_node_lat: f64,
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect {
            intra_node_bw: 60.0e9,   // NVLink 2.0 effective ~60 GB/s
            inter_node_bw: 10.0e9,   // EDR IB 100 Gb/s ≈ 12.5 GB/s raw, ~10 effective
            intra_node_lat: 5.0e-6,  // 5 µs
            inter_node_lat: 15.0e-6, // 15 µs incl. NIC traversal
        }
    }
}

/// Static description of a GPU cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of server nodes.
    pub nodes: u32,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Fabric link speeds.
    pub interconnect: Interconnect,
}

impl ClusterSpec {
    /// A cluster of `nodes` × `gpus_per_node` with default Longhorn-like
    /// links.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(nodes: u32, gpus_per_node: u32) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "cluster must be non-empty");
        ClusterSpec {
            nodes,
            gpus_per_node,
            interconnect: Interconnect::default(),
        }
    }

    /// The paper's testbed: 16 nodes × 4 V100 = 64 GPUs (§4.1).
    #[must_use]
    pub fn longhorn() -> Self {
        ClusterSpec::new(16, 4)
    }

    /// A Longhorn-like cluster truncated to `gpus` total GPUs (used by the
    /// §4.4 scalability sweep: 16, 32, 48, 64 GPUs).
    ///
    /// # Panics
    /// Panics unless `gpus` is a positive multiple of 4.
    #[must_use]
    pub fn longhorn_subset(gpus: u32) -> Self {
        assert!(
            gpus > 0 && gpus.is_multiple_of(4),
            "Longhorn subsets come in whole nodes"
        );
        ClusterSpec::new(gpus / 4, 4)
    }

    /// Total number of GPUs.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// The node hosting a GPU.
    ///
    /// # Panics
    /// Panics if the GPU id is out of range.
    #[must_use]
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        assert!(
            gpu.0 < self.total_gpus(),
            "GPU {gpu} out of range for a {}-GPU cluster",
            self.total_gpus()
        );
        NodeId(gpu.0 / self.gpus_per_node)
    }

    /// All GPU ids on a node.
    #[must_use]
    pub fn gpus_on(&self, node: NodeId) -> Vec<GpuId> {
        assert!(node.0 < self.nodes, "node {node} out of range");
        let base = node.0 * self.gpus_per_node;
        (base..base + self.gpus_per_node).map(GpuId).collect()
    }

    /// Iterator over all GPU ids.
    pub fn all_gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.total_gpus()).map(GpuId)
    }

    /// Whether two GPUs share a node.
    #[must_use]
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longhorn_is_sixteen_by_four() {
        let c = ClusterSpec::longhorn();
        assert_eq!(c.total_gpus(), 64);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.gpus_per_node, 4);
    }

    #[test]
    fn node_mapping_is_dense() {
        let c = ClusterSpec::new(3, 4);
        assert_eq!(c.node_of(GpuId(0)), NodeId(0));
        assert_eq!(c.node_of(GpuId(3)), NodeId(0));
        assert_eq!(c.node_of(GpuId(4)), NodeId(1));
        assert_eq!(c.node_of(GpuId(11)), NodeId(2));
    }

    #[test]
    fn gpus_on_node_are_contiguous() {
        let c = ClusterSpec::new(2, 4);
        assert_eq!(
            c.gpus_on(NodeId(1)),
            vec![GpuId(4), GpuId(5), GpuId(6), GpuId(7)]
        );
    }

    #[test]
    fn all_gpus_enumerates_everything() {
        let c = ClusterSpec::new(2, 3);
        let ids: Vec<u32> = c.all_gpus().map(|g| g.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn same_node_detects_locality() {
        let c = ClusterSpec::new(2, 2);
        assert!(c.same_node(GpuId(0), GpuId(1)));
        assert!(!c.same_node(GpuId(1), GpuId(2)));
    }

    #[test]
    fn subset_scales_in_whole_nodes() {
        for gpus in [16, 32, 48, 64] {
            let c = ClusterSpec::longhorn_subset(gpus);
            assert_eq!(c.total_gpus(), gpus);
            assert_eq!(c.gpus_per_node, 4);
        }
    }

    #[test]
    #[should_panic(expected = "whole nodes")]
    fn ragged_subset_rejected() {
        let _ = ClusterSpec::longhorn_subset(18);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gpu_rejected() {
        let c = ClusterSpec::new(1, 4);
        let _ = c.node_of(GpuId(4));
    }

    #[test]
    fn default_links_favour_intra_node() {
        let i = Interconnect::default();
        assert!(i.intra_node_bw > i.inter_node_bw);
        assert!(i.intra_node_lat < i.inter_node_lat);
    }
}
