//! # ones-cluster — GPU cluster topology and communication model
//!
//! Models the paper's testbed: TACC Longhorn, 16 nodes × 4 NVIDIA V100,
//! NVLink inside a node and Mellanox EDR InfiniBand between nodes (§4.1).
//! The substitution for real hardware (see DESIGN.md §1) is an analytic
//! model with three parts:
//!
//! * [`topology`] — node/GPU identifiers, cluster shapes, and the
//!   [`topology::ClusterSpec`] describing capacity and link speeds,
//! * [`placement`] — which GPUs a job's workers occupy, plus the locality
//!   metrics (nodes spanned, contiguous runs per node) that the *reorder*
//!   evolution operation improves,
//! * [`allreduce`] — an α–β (latency–bandwidth) ring all-reduce cost model
//!   that yields the sub-linear scaling of distributed training the
//!   scheduler must reason about.

pub mod allreduce;
pub mod placement;
pub mod topology;

pub use allreduce::{allreduce_time, AllReduceModel};
pub use placement::Placement;
pub use topology::{ClusterSpec, GpuId, Interconnect, NodeId};
