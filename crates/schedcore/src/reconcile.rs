//! Desired-vs-actual reconciliation of schedules (ROADMAP: typed
//! reconciliation loop).
//!
//! The evolutionary search produces a *desired* [`Schedule`]; the cluster
//! has an *actual* one. A [`Reconciler`] diffs the two into typed,
//! idempotent [`ScalingOp`]s — Kubernetes-controller style — instead of
//! mutating the deployed schedule imperatively inside the event loop.
//! Each operation is a [`ScalingPhase`] state machine
//!
//! ```text
//! Requested → Draining → Resizing → RebuildingNccl → Broadcasting → Done
//!                  \______________________↓______________________/
//!                                 Failed { retryable }
//! ```
//!
//! whose phase durations come from a [`PhasePlan`] (built by the scaling
//! cost model in `ones-sched`; this crate only defines the shape so the
//! dependency keeps pointing `ones → schedcore`). Zero-duration phases
//! pass through instantly — e.g. the broadcast phase only exists when new
//! workers joined, and a preemption has no phases at all.
//!
//! The contract the proptests pin down:
//!
//! * **Idempotence** — after [`Reconciler::reconcile`] commits a plan,
//!   planning the same desired schedule again yields no operations.
//! * **Convergence** — committing every planned op makes the actual
//!   schedule equal to the desired one for every changed job, while jobs
//!   whose `(placement set, global batch)` did not change keep their old
//!   slots verbatim (no spurious re-configuration, no epoch-counter
//!   reset).
//! * **Recovery** — a reconciler rebuilt from its serialised form plans
//!   exactly the ops the live one would; replaying them reaches the same
//!   fixpoint.

use crate::schedule::Schedule;
use ones_cluster::GpuId;
use ones_workload::JobId;
use serde::{DeError, Deserialize, Serialize, Value};

/// Durations of each phase of one scaling operation, seconds.
///
/// Built from the scaling cost model; the engine charges
/// [`PhasePlan::total`] as the job's re-configuration overhead and emits
/// one observability span per non-zero phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Draining the in-flight training step (and, for checkpointing
    /// mechanisms, writing the checkpoint).
    pub drain: f64,
    /// Resizing modules / restarting processes / reloading state.
    pub resize: f64,
    /// NCCL communicator (re)construction.
    pub nccl: f64,
    /// Parameter broadcast to joined workers (zero when none joined).
    pub broadcast: f64,
}

impl PhasePlan {
    /// The all-zero plan (preemptions: releasing GPUs is free).
    pub const ZERO: PhasePlan = PhasePlan {
        drain: 0.0,
        resize: 0.0,
        nccl: 0.0,
        broadcast: 0.0,
    };

    /// Total overhead of the operation, summed in fixed phase order.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.drain + self.resize + self.nccl + self.broadcast
    }

    /// Duration of one phase under this plan (zero for phases that do no
    /// timed work).
    #[must_use]
    pub fn duration_of(&self, phase: ScalingPhase) -> f64 {
        match phase {
            ScalingPhase::Draining => self.drain,
            ScalingPhase::Resizing => self.resize,
            ScalingPhase::RebuildingNccl => self.nccl,
            ScalingPhase::Broadcasting => self.broadcast,
            _ => 0.0,
        }
    }
}

/// Where one scaling operation stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingPhase {
    /// Planned, nothing executed yet.
    Requested,
    /// Pausing the in-flight training step.
    Draining,
    /// Resizing modules / restarting worker processes.
    Resizing,
    /// Rebuilding the NCCL communicator topology.
    RebuildingNccl,
    /// Broadcasting parameters to newly joined workers.
    Broadcasting,
    /// The operation took effect.
    Done,
    /// The operation aborted; `retryable` says whether re-requesting it
    /// can succeed.
    Failed {
        /// Whether a retry may succeed (transient failure).
        retryable: bool,
    },
}

impl ScalingPhase {
    /// Stable wire name (observability span/counter suffix).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ScalingPhase::Requested => "requested",
            ScalingPhase::Draining => "draining",
            ScalingPhase::Resizing => "resizing",
            ScalingPhase::RebuildingNccl => "rebuilding_nccl",
            ScalingPhase::Broadcasting => "broadcasting",
            ScalingPhase::Done => "done",
            ScalingPhase::Failed { .. } => "failed",
        }
    }

    /// Whether the state machine can advance no further.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, ScalingPhase::Done | ScalingPhase::Failed { .. })
    }
}

// The serde shim's derive cannot express struct-like enum variants
// (`Failed { retryable }`), so the impls are written by hand, following
// the derive's conventions: unit variants encode as their name, payload
// variants as a one-key object.
impl Serialize for ScalingPhase {
    fn to_value(&self) -> Value {
        match self {
            ScalingPhase::Failed { retryable } => {
                Value::Object(vec![(String::from("Failed"), Value::Bool(*retryable))])
            }
            unit => Value::Str(String::from(match unit {
                ScalingPhase::Requested => "Requested",
                ScalingPhase::Draining => "Draining",
                ScalingPhase::Resizing => "Resizing",
                ScalingPhase::RebuildingNccl => "RebuildingNccl",
                ScalingPhase::Broadcasting => "Broadcasting",
                ScalingPhase::Done => "Done",
                ScalingPhase::Failed { .. } => unreachable!(),
            })),
        }
    }
}

impl Deserialize for ScalingPhase {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Requested" => Ok(ScalingPhase::Requested),
                "Draining" => Ok(ScalingPhase::Draining),
                "Resizing" => Ok(ScalingPhase::Resizing),
                "RebuildingNccl" => Ok(ScalingPhase::RebuildingNccl),
                "Broadcasting" => Ok(ScalingPhase::Broadcasting),
                "Done" => Ok(ScalingPhase::Done),
                other => Err(DeError::custom(format!(
                    "unknown ScalingPhase variant {other:?}"
                ))),
            };
        }
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::custom("expected string or object for ScalingPhase"))?;
        match obj {
            [(key, payload)] if key == "Failed" => Ok(ScalingPhase::Failed {
                retryable: Deserialize::from_value(payload)?,
            }),
            _ => Err(DeError::custom("malformed ScalingPhase object")),
        }
    }
}

/// What a scaling operation does to its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Place a job that currently holds no GPUs.
    Start,
    /// Re-configure a running job to a new placement and/or batch split.
    Scale {
        /// Whether the new placement has more workers than the old one
        /// (joined workers must receive a parameter broadcast).
        workers_joined: bool,
    },
    /// Take every GPU away from a running job (back to waiting).
    Preempt,
}

impl OpKind {
    /// Stable wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Start => "start",
            OpKind::Scale { .. } => "scale",
            OpKind::Preempt => "preempt",
        }
    }
}

impl Serialize for OpKind {
    fn to_value(&self) -> Value {
        match self {
            OpKind::Start => Value::Str(String::from("Start")),
            OpKind::Preempt => Value::Str(String::from("Preempt")),
            OpKind::Scale { workers_joined } => {
                Value::Object(vec![(String::from("Scale"), Value::Bool(*workers_joined))])
            }
        }
    }
}

impl Deserialize for OpKind {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Start" => Ok(OpKind::Start),
                "Preempt" => Ok(OpKind::Preempt),
                other => Err(DeError::custom(format!("unknown OpKind variant {other:?}"))),
            };
        }
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::custom("expected string or object for OpKind"))?;
        match obj {
            [(key, payload)] if key == "Scale" => Ok(OpKind::Scale {
                workers_joined: Deserialize::from_value(payload)?,
            }),
            _ => Err(DeError::custom("malformed OpKind object")),
        }
    }
}

/// One GPU of an operation's target assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotAssign {
    /// GPU index.
    pub gpu: u32,
    /// Local batch on that GPU (≥ 1).
    pub local_batch: u32,
}

/// One typed, idempotent scheduling operation: bring one job from its
/// actual assignment to its desired one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingOp {
    /// The job this operation re-configures.
    pub job: JobId,
    /// What kind of change it is.
    pub kind: OpKind,
    /// The desired slots, in GPU order. Empty for preemptions.
    pub target: Vec<SlotAssign>,
    /// Current position in the state machine.
    pub phase: ScalingPhase,
}

impl ScalingOp {
    /// A start operation placing `job` on `target`.
    #[must_use]
    pub fn start(job: JobId, target: Vec<SlotAssign>) -> Self {
        ScalingOp {
            job,
            kind: OpKind::Start,
            target,
            phase: ScalingPhase::Requested,
        }
    }

    /// A scale operation moving `job` to `target`.
    #[must_use]
    pub fn scale(job: JobId, target: Vec<SlotAssign>, workers_joined: bool) -> Self {
        ScalingOp {
            job,
            kind: OpKind::Scale { workers_joined },
            target,
            phase: ScalingPhase::Requested,
        }
    }

    /// A preemption releasing every GPU `job` holds.
    #[must_use]
    pub fn preempt(job: JobId) -> Self {
        ScalingOp {
            job,
            kind: OpKind::Preempt,
            target: Vec::new(),
            phase: ScalingPhase::Requested,
        }
    }

    /// Desired global batch of the target assignment.
    #[must_use]
    pub fn global_batch(&self) -> u32 {
        self.target.iter().map(|a| a.local_batch).sum()
    }

    /// Advances to the next phase that does timed work under `plan`,
    /// returning it with its duration. Zero-duration phases are passed
    /// through instantly; once every work phase is exhausted the op lands
    /// on [`ScalingPhase::Done`] and `None` is returned. Terminal states
    /// never advance.
    pub fn advance(&mut self, plan: &PhasePlan) -> Option<(ScalingPhase, f64)> {
        loop {
            let next = match self.phase {
                ScalingPhase::Requested => ScalingPhase::Draining,
                ScalingPhase::Draining => ScalingPhase::Resizing,
                ScalingPhase::Resizing => ScalingPhase::RebuildingNccl,
                ScalingPhase::RebuildingNccl => ScalingPhase::Broadcasting,
                ScalingPhase::Broadcasting => ScalingPhase::Done,
                ScalingPhase::Done | ScalingPhase::Failed { .. } => return None,
            };
            self.phase = next;
            if next == ScalingPhase::Done {
                return None;
            }
            let duration = plan.duration_of(next);
            if duration > 0.0 {
                return Some((next, duration));
            }
        }
    }

    /// Aborts the operation.
    pub fn fail(&mut self, retryable: bool) {
        self.phase = ScalingPhase::Failed { retryable };
    }

    /// Re-requests a retryably failed operation; returns whether the
    /// retry was accepted (non-retryable failures and live ops refuse).
    pub fn retry(&mut self) -> bool {
        if self.phase == (ScalingPhase::Failed { retryable: true }) {
            self.phase = ScalingPhase::Requested;
            true
        } else {
            false
        }
    }

    /// Whether the operation has taken effect.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == ScalingPhase::Done
    }
}

/// Diffs `desired` against `actual` into the operations that reconcile
/// them, preemptions first (they free GPUs), then starts/scales in job-id
/// order — a deterministic plan for a deterministic engine.
///
/// A job whose *placement set* and *global batch* are unchanged gets no
/// operation at all: the actual schedule keeps its old slots (possibly a
/// different per-GPU batch split), no re-configuration cost is charged and
/// its epoch counters keep accruing. This is deliberately broader than
/// exact slot-vector equality — re-splitting the same global batch over
/// the same GPUs is not an observable change to the job.
#[must_use]
pub fn diff(desired: &Schedule, actual: &Schedule) -> Vec<ScalingOp> {
    let desired_jobs = desired.running_jobs();
    let actual_jobs = actual.running_jobs();
    let mut ops = Vec::new();
    for &job in actual_jobs.keys() {
        if !desired_jobs.contains_key(&job) {
            ops.push(ScalingOp::preempt(job));
        }
    }
    for (&job, &(batch, gpus)) in &desired_jobs {
        let target = target_of(desired, job);
        match actual_jobs.get(&job) {
            None => ops.push(ScalingOp::start(job, target)),
            Some(&(actual_batch, actual_gpus)) => {
                if batch == actual_batch && desired.placement(job) == actual.placement(job) {
                    continue;
                }
                ops.push(ScalingOp::scale(job, target, gpus > actual_gpus));
            }
        }
    }
    ops
}

fn target_of(schedule: &Schedule, job: JobId) -> Vec<SlotAssign> {
    schedule
        .slots()
        .iter()
        .enumerate()
        .filter_map(|(gpu, slot)| {
            slot.filter(|s| s.job == job).map(|s| SlotAssign {
                gpu: gpu as u32,
                local_batch: s.local_batch,
            })
        })
        .collect()
}

/// The reconciliation loop's persistent state: the actual schedule plus
/// any operations begun but not yet committed. Serialisable so `ones-d`
/// can persist it and a restarted daemon can resume in-flight work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reconciler {
    actual: Schedule,
    in_flight: Vec<ScalingOp>,
}

impl Reconciler {
    /// A reconciler over an empty cluster of `total_gpus` devices.
    #[must_use]
    pub fn new(total_gpus: u32) -> Self {
        Reconciler {
            actual: Schedule::empty(total_gpus),
            in_flight: Vec::new(),
        }
    }

    /// A reconciler adopting an existing actual schedule (recovery).
    #[must_use]
    pub fn from_actual(actual: Schedule) -> Self {
        Reconciler {
            actual,
            in_flight: Vec::new(),
        }
    }

    /// The actual (currently effective) schedule.
    #[must_use]
    pub fn actual(&self) -> &Schedule {
        &self.actual
    }

    /// Operations begun but not yet committed.
    #[must_use]
    pub fn in_flight(&self) -> &[ScalingOp] {
        &self.in_flight
    }

    /// Plans the operations that bring the actual schedule to `desired`.
    #[must_use]
    pub fn plan(&self, desired: &Schedule) -> Vec<ScalingOp> {
        diff(desired, &self.actual)
    }

    /// Records an operation as begun (persisted as in-flight until its
    /// [`Reconciler::commit`]). Re-beginning the same job's op replaces
    /// the stale entry.
    pub fn begin(&mut self, op: ScalingOp) {
        self.in_flight.retain(|f| f.job != op.job);
        self.in_flight.push(op);
    }

    /// Applies one operation's effect to the actual schedule and clears
    /// it from the in-flight set. Committing the same op twice is a
    /// no-op the second time: the slots it establishes are already there.
    pub fn commit(&mut self, op: &ScalingOp) {
        self.actual.evict(op.job);
        if !matches!(op.kind, OpKind::Preempt) {
            for assign in &op.target {
                self.actual
                    .assign(GpuId(assign.gpu), op.job, assign.local_batch);
            }
        }
        self.in_flight.retain(|f| f.job != op.job);
    }

    /// The cluster removed a job outside any deployment (completion,
    /// kill): drop its slots and any in-flight operation.
    pub fn observe_removed(&mut self, job: JobId) {
        self.actual.evict(job);
        self.in_flight.retain(|f| f.job != job);
    }

    /// Plans and immediately commits every operation, returning the plan
    /// (each op's phase driven straight to `Done`). Callers that need to
    /// interleave phase execution use [`Reconciler::plan`] /
    /// [`Reconciler::begin`] / [`Reconciler::commit`] directly.
    pub fn reconcile(&mut self, desired: &Schedule) -> Vec<ScalingOp> {
        let mut ops = self.plan(desired);
        for op in &mut ops {
            self.begin(op.clone());
            while op.advance(&PhasePlan::ZERO).is_some() {}
            self.commit(op);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(assigns: &[(u32, u64, u32)]) -> Schedule {
        let mut s = Schedule::empty(8);
        for &(gpu, job, batch) in assigns {
            s.assign(GpuId(gpu), JobId(job), batch);
        }
        s
    }

    #[test]
    fn empty_diff_for_identical_schedules() {
        let s = sched(&[(0, 1, 128), (1, 1, 128), (2, 2, 64)]);
        assert!(diff(&s, &s).is_empty());
    }

    #[test]
    fn same_placement_set_and_batch_is_a_noop() {
        // Same GPUs, same global batch, different split: no op.
        let actual = sched(&[(0, 1, 96), (1, 1, 160)]);
        let desired = sched(&[(0, 1, 128), (1, 1, 128)]);
        assert!(diff(&desired, &actual).is_empty());
        // ... but a different split over *different* GPUs is a scale.
        let moved = sched(&[(0, 1, 128), (2, 1, 128)]);
        let ops = diff(&moved, &actual);
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0].kind,
            OpKind::Scale {
                workers_joined: false
            }
        );
    }

    #[test]
    fn diff_orders_preempts_before_starts() {
        let actual = sched(&[(0, 1, 128)]);
        let desired = sched(&[(0, 2, 128)]);
        let ops = diff(&desired, &actual);
        assert_eq!(ops.len(), 2);
        assert_eq!((ops[0].job, ops[0].kind), (JobId(1), OpKind::Preempt));
        assert_eq!((ops[1].job, ops[1].kind), (JobId(2), OpKind::Start));
    }

    #[test]
    fn workers_joined_tracks_gpu_growth() {
        let actual = sched(&[(0, 1, 128)]);
        let grown = sched(&[(0, 1, 128), (1, 1, 128)]);
        let ops = diff(&grown, &actual);
        assert_eq!(
            ops[0].kind,
            OpKind::Scale {
                workers_joined: true
            }
        );
        let shrunk = diff(&actual, &grown);
        assert_eq!(
            shrunk[0].kind,
            OpKind::Scale {
                workers_joined: false
            }
        );
    }

    #[test]
    fn phase_machine_walks_in_order_and_skips_zero_phases() {
        let mut op = ScalingOp::scale(
            JobId(1),
            vec![SlotAssign {
                gpu: 0,
                local_batch: 128,
            }],
            false,
        );
        let plan = PhasePlan {
            drain: 0.25,
            resize: 0.15,
            nccl: 0.22,
            broadcast: 0.0, // no workers joined
        };
        let mut seen = Vec::new();
        while let Some((phase, dur)) = op.advance(&plan) {
            seen.push((phase, dur));
        }
        assert_eq!(
            seen,
            vec![
                (ScalingPhase::Draining, 0.25),
                (ScalingPhase::Resizing, 0.15),
                (ScalingPhase::RebuildingNccl, 0.22),
            ]
        );
        assert!(op.is_done());
        assert_eq!(seen.iter().map(|(_, d)| d).sum::<f64>(), plan.total());
    }

    #[test]
    fn failed_ops_only_retry_when_retryable() {
        let mut op = ScalingOp::preempt(JobId(3));
        op.fail(false);
        assert!(!op.retry());
        assert!(op.advance(&PhasePlan::ZERO).is_none());
        op.fail(true);
        assert!(op.retry());
        assert_eq!(op.phase, ScalingPhase::Requested);
    }

    #[test]
    fn reconcile_converges_and_is_idempotent() {
        let mut recon = Reconciler::new(8);
        let desired = sched(&[(0, 1, 128), (1, 1, 128), (2, 2, 64)]);
        let ops = recon.reconcile(&desired);
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(ScalingOp::is_done));
        assert_eq!(recon.actual(), &desired);
        assert!(recon.reconcile(&desired).is_empty());
        assert!(recon.in_flight().is_empty());
    }

    #[test]
    fn noop_jobs_keep_their_old_slots_through_reconcile() {
        let actual = sched(&[(0, 1, 96), (1, 1, 160)]);
        let mut recon = Reconciler::from_actual(actual.clone());
        // Job 1 unchanged (set + batch), job 2 starts on GPU 3.
        let desired = sched(&[(0, 1, 128), (1, 1, 128), (3, 2, 64)]);
        recon.reconcile(&desired);
        // Job 1's split survives; job 2 landed.
        assert_eq!(recon.actual().local_batches(JobId(1)), vec![96, 160]);
        assert_eq!(recon.actual().global_batch(JobId(2)), 64);
    }

    #[test]
    fn serde_round_trips_the_whole_reconciler() {
        let mut recon = Reconciler::from_actual(sched(&[(0, 1, 128)]));
        let mut op = ScalingOp::scale(
            JobId(1),
            vec![
                SlotAssign {
                    gpu: 0,
                    local_batch: 64,
                },
                SlotAssign {
                    gpu: 1,
                    local_batch: 64,
                },
            ],
            true,
        );
        op.advance(&PhasePlan {
            drain: 0.1,
            resize: 0.1,
            nccl: 0.1,
            broadcast: 0.1,
        });
        recon.begin(op);
        let json = serde_json::to_string(&recon).expect("serialise");
        let back: Reconciler = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, recon);
        // Failed{retryable} survives the round trip too.
        let mut failed = ScalingOp::preempt(JobId(2));
        failed.fail(true);
        let j = serde_json::to_string(&failed).expect("serialise");
        let b: ScalingOp = serde_json::from_str(&j).expect("deserialise");
        assert_eq!(b.phase, ScalingPhase::Failed { retryable: true });
    }
}
