//! # ones-schedcore — shared scheduler API
//!
//! Defines the contract between the cluster simulator and every scheduler
//! (ONES and the baselines):
//!
//! * [`schedule`] — the paper's schedule encoding `S : J × C → {b_j^i}`
//!   (Eq 1): one slot per GPU holding at most one `(job, local batch)`
//!   pair, enforcing the exclusive-GPU constraint (Eq 4) structurally.
//!   Global batch `B_j` and GPU count `c_j` are the derived sums of Eq 2.
//! * [`status`] — the runtime telemetry a scheduler may observe per job
//!   (epochs, samples processed, loss, accuracy, throughput, attained
//!   service), mirroring what workers upload at each epoch end (§3.1).
//! * [`scheduler`] — the [`scheduler::Scheduler`] trait: an event-driven
//!   interface where the scheduler receives arrivals / epoch ends /
//!   completions / timer ticks and may respond with a new desired
//!   [`schedule::Schedule`]; the simulator executes the diff with
//!   mechanism-dependent costs (elastic NCCL scaling vs checkpoint
//!   restart).
//! * [`reconcile`] — the desired-vs-actual loop: a scheduler's desired
//!   schedule is diffed against the cluster's actual one into typed,
//!   idempotent [`reconcile::ScalingOp`]s, each a
//!   [`reconcile::ScalingPhase`] state machine whose phase durations come
//!   from the scaling cost model. The simulator executes these ops
//!   instead of mutating the deployed schedule imperatively.

pub mod reconcile;
pub mod schedule;
pub mod scheduler;
pub mod status;

pub use reconcile::{OpKind, PhasePlan, Reconciler, ScalingOp, ScalingPhase, SlotAssign};
pub use schedule::{DirtySet, JobRun, JobSignature, Schedule, Slot};
pub use scheduler::{
    ClusterView, ScalingMechanism, SchedEvent, SchedTuning, Scheduler, SchedulerPerfCounters,
};
pub use status::{JobPhase, JobStatus};
