//! The schedule encoding `S : J × C → {b_j^i}` (paper Eq 1–2, Figure 1).
//!
//! A [`Schedule`] assigns every GPU at most one `(job, local batch)` pair —
//! the genome of the evolutionary search. Because a slot holds one job, the
//! paper's no-sharing constraint (Eq 4) holds by construction. The derived
//! quantities of Eq 2 — global batch `B_j = Σ_i b_j^i` and GPU count
//! `c_j = Σ_i min(1, b_j^i)` — are computed on demand.

use ones_cluster::{ClusterSpec, GpuId, Placement};
use ones_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// FNV-1a offset basis / prime, used for the per-job configuration
/// signatures ([`Schedule::job_signature`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One placed job's configuration signature within a schedule, gathered
/// by [`Schedule::job_signatures`]: FNV-1a folds of its GPU indices and
/// local batches (in GPU-id order) plus its GPU count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSignature {
    /// Hash of the job's GPU indices.
    pub placement: u64,
    /// Hash of the job's local batches, order-sensitive.
    pub batches: u64,
    /// GPUs the job holds (`c_j`).
    pub gpus: u32,
}

/// One GPU's assignment: a job and its local batch `b_j^i ≥ 1` on this GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// The job whose worker runs here.
    pub job: JobId,
    /// Local batch size on this GPU (always ≥ 1).
    pub local_batch: u32,
}

/// A complete assignment of the cluster's GPUs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    slots: Vec<Option<Slot>>,
}

impl Schedule {
    /// An empty schedule for a cluster with `total_gpus` devices.
    #[must_use]
    pub fn empty(total_gpus: u32) -> Self {
        Schedule {
            slots: vec![None; total_gpus as usize],
        }
    }

    /// Number of GPU slots (== cluster size).
    #[must_use]
    pub fn num_gpus(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The slot on one GPU.
    ///
    /// # Panics
    /// Panics if the GPU id is out of range.
    #[must_use]
    pub fn slot(&self, gpu: GpuId) -> Option<Slot> {
        self.slots[gpu.0 as usize]
    }

    /// Assigns a worker of `job` with `local_batch` samples to `gpu`,
    /// replacing any previous occupant.
    ///
    /// # Panics
    /// Panics if `local_batch` is zero (use [`Schedule::clear`] to free a
    /// GPU) or the GPU id is out of range.
    pub fn assign(&mut self, gpu: GpuId, job: JobId, local_batch: u32) {
        assert!(local_batch > 0, "a placed worker needs a positive batch");
        self.slots[gpu.0 as usize] = Some(Slot { job, local_batch });
    }

    /// Frees a GPU.
    pub fn clear(&mut self, gpu: GpuId) {
        self.slots[gpu.0 as usize] = None;
    }

    /// Removes every worker of `job`, returning how many GPUs were freed.
    pub fn evict(&mut self, job: JobId) -> usize {
        let mut freed = 0;
        for s in &mut self.slots {
            if s.is_some_and(|sl| sl.job == job) {
                *s = None;
                freed += 1;
            }
        }
        freed
    }

    /// Global batch `B_j = Σ_i b_j^i` (Eq 2). Zero if the job is not placed.
    #[must_use]
    pub fn global_batch(&self, job: JobId) -> u32 {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.job == job)
            .map(|s| s.local_batch)
            .sum()
    }

    /// GPU count `c_j = Σ_i min(1, b_j^i)` (Eq 2).
    #[must_use]
    pub fn gpu_count(&self, job: JobId) -> u32 {
        self.slots.iter().flatten().filter(|s| s.job == job).count() as u32
    }

    /// The set of GPUs hosting `job`.
    #[must_use]
    pub fn placement(&self, job: JobId) -> Placement {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.filter(|sl| sl.job == job).map(|_| GpuId(i as u32)))
            .collect()
    }

    /// Local batches of `job` in GPU-id order (alongside
    /// [`Schedule::placement`], this is what the throughput model consumes).
    #[must_use]
    pub fn local_batches(&self, job: JobId) -> Vec<u32> {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.job == job)
            .map(|s| s.local_batch)
            .collect()
    }

    /// All running jobs with their `(global batch, gpu count)`, sorted by id.
    #[must_use]
    pub fn running_jobs(&self) -> BTreeMap<JobId, (u32, u32)> {
        let mut map: BTreeMap<JobId, (u32, u32)> = BTreeMap::new();
        for s in self.slots.iter().flatten() {
            let e = map.entry(s.job).or_insert((0, 0));
            e.0 += s.local_batch;
            e.1 += 1;
        }
        map
    }

    /// Whether a job holds at least one GPU.
    #[must_use]
    pub fn is_running(&self, job: JobId) -> bool {
        self.slots.iter().flatten().any(|s| s.job == job)
    }

    /// GPUs with no worker.
    #[must_use]
    pub fn idle_gpus(&self) -> Vec<GpuId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Number of idle GPUs.
    #[must_use]
    pub fn idle_count(&self) -> u32 {
        self.slots.iter().filter(|s| s.is_none()).count() as u32
    }

    /// Raw slot view (one entry per GPU).
    #[must_use]
    pub fn slots(&self) -> &[Option<Slot>] {
        &self.slots
    }

    /// FNV-1a signatures of one job's configuration in this schedule:
    /// `(placement hash, batch hash)`, folded over the job's workers in
    /// GPU-id order in a single pass. Two schedules that place `job` on
    /// the same GPUs with the same per-GPU batches produce equal
    /// signatures, so the pair (plus the job id) keys throughput
    /// memoisation. Hash collisions between distinct configurations are
    /// possible in principle but negligible at 2×64 bits.
    #[must_use]
    pub fn job_signature(&self, job: JobId) -> (u64, u64) {
        let mut placement = FNV_OFFSET;
        let mut batches = FNV_OFFSET;
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(slot) = s {
                if slot.job == job {
                    placement = (placement ^ (i as u64 + 1)).wrapping_mul(FNV_PRIME);
                    batches = (batches ^ u64::from(slot.local_batch)).wrapping_mul(FNV_PRIME);
                }
            }
        }
        (placement, batches)
    }

    /// Signatures of every placed job, gathered in a single pass over the
    /// slots. Produces exactly [`Schedule::job_signature`] per job (both
    /// fold slots in GPU-id order) but costs `O(gpus)` for *all* jobs
    /// instead of `O(gpus)` each — the difference that makes cached
    /// candidate scoring cheaper than re-evaluating the throughput model.
    #[must_use]
    pub fn job_signatures(&self) -> BTreeMap<JobId, JobSignature> {
        let mut map: BTreeMap<JobId, JobSignature> = BTreeMap::new();
        // Fold contiguous runs of the same job with a single map lookup:
        // reordered schedules pack each job's workers together, so this
        // is ~one lookup per job. The fold itself still walks slots in
        // GPU-id order, matching `job_signature` exactly even when a job
        // is split across several runs.
        let mut i = 0;
        while i < self.slots.len() {
            let Some(first) = self.slots[i] else {
                i += 1;
                continue;
            };
            let e = map.entry(first.job).or_insert(JobSignature {
                placement: FNV_OFFSET,
                batches: FNV_OFFSET,
                gpus: 0,
            });
            while let Some(Some(slot)) = self.slots.get(i) {
                if slot.job != first.job {
                    break;
                }
                e.placement = (e.placement ^ (i as u64 + 1)).wrapping_mul(FNV_PRIME);
                e.batches = (e.batches ^ u64::from(slot.local_batch)).wrapping_mul(FNV_PRIME);
                e.gpus += 1;
                i += 1;
            }
        }
        map
    }

    /// Packs the workers of each job contiguously, in order of each job's
    /// first occurrence — the *reorder* evolution operation (§3.2.2,
    /// Figure 10). Idle slots move to the end.
    #[must_use]
    pub fn reordered(&self) -> Schedule {
        let mut order: Vec<JobId> = Vec::new();
        for s in self.slots.iter().flatten() {
            if !order.contains(&s.job) {
                order.push(s.job);
            }
        }
        let mut out = Schedule::empty(self.num_gpus());
        let mut next = 0usize;
        for job in order {
            for s in self.slots.iter().flatten().filter(|s| s.job == job) {
                out.slots[next] = Some(*s);
                next += 1;
            }
        }
        out
    }

    /// Re-maps this schedule's workers to minimise disruption relative to
    /// a deployed schedule: every job whose configuration (multiset of
    /// local batches) is unchanged keeps exactly its old GPUs; all other
    /// workers pack into the remaining GPUs in first-occurrence order.
    ///
    /// The evolutionary search reorders candidates for locality, which
    /// would otherwise migrate every worker on every deployment; alignment
    /// makes unchanged jobs genuinely free to "re-deploy".
    #[must_use]
    pub fn aligned_with(&self, deployed: &Schedule) -> Schedule {
        assert_eq!(self.num_gpus(), deployed.num_gpus());
        let n = self.num_gpus();
        let mut out = Schedule::empty(n);
        let mut taken = vec![false; n as usize];
        let mut kept: Vec<JobId> = Vec::new();

        // Phase 1: unchanged jobs keep their old placement.
        for job in self.running_jobs().keys() {
            let mut old: Vec<u32> = deployed.local_batches(*job);
            let mut new: Vec<u32> = self.local_batches(*job);
            old.sort_unstable();
            new.sort_unstable();
            if old.is_empty() || old != new {
                continue;
            }
            for (i, slot) in deployed.slots().iter().enumerate() {
                if let Some(s) = slot.filter(|s| s.job == *job) {
                    out.slots[i] = Some(s);
                    taken[i] = true;
                }
            }
            kept.push(*job);
        }

        // Phase 2: everything else packs into the free GPUs in this
        // schedule's (already reordered) occurrence order.
        let mut free = (0..n as usize).filter(|&i| !taken[i]);
        for slot in self.slots.iter().flatten() {
            if kept.contains(&slot.job) {
                continue;
            }
            let Some(i) = free.next() else { break };
            out.slots[i] = Some(*slot);
        }
        out
    }

    /// Whether deploying `self` over `deployed` would disturb any job that
    /// is currently running: true when every running job of `deployed`
    /// keeps the identical slots in `self`.
    #[must_use]
    pub fn is_non_disruptive_over(&self, deployed: &Schedule) -> bool {
        deployed.running_jobs().keys().all(|job| {
            self.slots.iter().zip(deployed.slots()).all(|(new, old)| {
                let old_here = old.filter(|s| s.job == *job);
                let new_here = new.filter(|s| s.job == *job);
                old_here == new_here
            })
        })
    }

    /// Checks structural validity against a cluster and per-job local batch
    /// limits. Returns a description of the first violation.
    ///
    /// `max_local_batch(job)` should come from the job's model profile.
    pub fn validate(
        &self,
        spec: &ClusterSpec,
        mut max_local_batch: impl FnMut(JobId) -> u32,
    ) -> Result<(), String> {
        if self.num_gpus() != spec.total_gpus() {
            return Err(format!(
                "schedule has {} slots for a {}-GPU cluster",
                self.num_gpus(),
                spec.total_gpus()
            ));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(slot) = s {
                let limit = max_local_batch(slot.job);
                if slot.local_batch > limit {
                    return Err(format!(
                        "GPU {i}: job {} local batch {} exceeds memory limit {limit}",
                        slot.job, slot.local_batch
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    #[test]
    fn empty_schedule_is_all_idle() {
        let s = Schedule::empty(8);
        assert_eq!(s.idle_count(), 8);
        assert!(s.running_jobs().is_empty());
        assert_eq!(s.global_batch(j(1)), 0);
        assert_eq!(s.gpu_count(j(1)), 0);
        assert!(!s.is_running(j(1)));
    }

    #[test]
    fn eq2_derivations() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(1), 64);
        s.assign(GpuId(1), j(1), 64);
        s.assign(GpuId(2), j(2), 128);
        assert_eq!(s.global_batch(j(1)), 128);
        assert_eq!(s.gpu_count(j(1)), 2);
        assert_eq!(s.global_batch(j(2)), 128);
        assert_eq!(s.gpu_count(j(2)), 1);
        assert_eq!(s.idle_count(), 1);
        assert_eq!(s.idle_gpus(), vec![GpuId(3)]);
    }

    #[test]
    fn exclusive_gpu_by_construction() {
        // Assigning a second job to the same GPU replaces the first — a
        // GPU can never host two workers (Eq 4).
        let mut s = Schedule::empty(2);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(0), j(2), 64);
        assert_eq!(s.gpu_count(j(1)), 0);
        assert_eq!(s.gpu_count(j(2)), 1);
    }

    #[test]
    fn evict_frees_all_workers() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(3), j(2), 32);
        assert_eq!(s.evict(j(1)), 2);
        assert!(!s.is_running(j(1)));
        assert!(s.is_running(j(2)));
    }

    #[test]
    fn placement_is_sorted() {
        let mut s = Schedule::empty(8);
        s.assign(GpuId(5), j(1), 32);
        s.assign(GpuId(1), j(1), 32);
        let p = s.placement(j(1));
        assert_eq!(p.gpus(), &[GpuId(1), GpuId(5)]);
        assert_eq!(s.local_batches(j(1)), vec![32, 32]);
    }

    #[test]
    fn reorder_packs_by_first_occurrence() {
        // Figure 10: [J1, J2, J1, _, J2, J3] -> [J1, J1, J2, J2, J3, _].
        let mut s = Schedule::empty(6);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(1), j(2), 16);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(4), j(2), 16);
        s.assign(GpuId(5), j(3), 8);
        let r = s.reordered();
        let got: Vec<Option<u64>> = r.slots().iter().map(|s| s.map(|sl| sl.job.0)).collect();
        assert_eq!(got, vec![Some(1), Some(1), Some(2), Some(2), Some(3), None]);
        // Batches travel with their workers; totals unchanged.
        assert_eq!(r.global_batch(j(1)), 64);
        assert_eq!(r.global_batch(j(2)), 32);
        assert_eq!(r.global_batch(j(3)), 8);
    }

    #[test]
    fn reorder_improves_locality() {
        let spec = ClusterSpec::new(2, 4);
        let mut s = Schedule::empty(8);
        // Job 1 scattered across both nodes.
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(5), j(1), 32);
        s.assign(GpuId(7), j(1), 32);
        let before = s.placement(j(1)).locality_score(&spec);
        let after = s.reordered().placement(j(1)).locality_score(&spec);
        assert!(after > before, "before={before}, after={after}");
        assert_eq!(s.reordered().placement(j(1)).nodes_spanned(&spec), 1);
    }

    #[test]
    fn validate_checks_size_and_memory() {
        let spec = ClusterSpec::new(1, 4);
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(1), 512);
        assert!(s.validate(&spec, |_| 256).is_err());
        assert!(s.validate(&spec, |_| 512).is_ok());
        let wrong_size = Schedule::empty(8);
        assert!(wrong_size.validate(&spec, |_| 512).is_err());
    }

    #[test]
    fn running_jobs_aggregates() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(5), 64);
        s.assign(GpuId(1), j(5), 32);
        s.assign(GpuId(2), j(9), 16);
        let rj = s.running_jobs();
        assert_eq!(rj[&j(5)], (96, 2));
        assert_eq!(rj[&j(9)], (16, 1));
    }

    #[test]
    #[should_panic(expected = "positive batch")]
    fn zero_batch_assignment_rejected() {
        let mut s = Schedule::empty(1);
        s.assign(GpuId(0), j(1), 0);
    }

    #[test]
    fn job_signature_distinguishes_configurations() {
        let mut a = Schedule::empty(8);
        a.assign(GpuId(0), j(1), 64);
        a.assign(GpuId(1), j(1), 64);
        a.assign(GpuId(2), j(2), 32);

        // Same configuration for job 1 in a different schedule.
        let mut b = Schedule::empty(8);
        b.assign(GpuId(0), j(1), 64);
        b.assign(GpuId(1), j(1), 64);
        b.assign(GpuId(5), j(9), 16);
        assert_eq!(a.job_signature(j(1)), b.job_signature(j(1)));

        // Moved placement: placement hash changes, batch hash does not.
        let mut moved = Schedule::empty(8);
        moved.assign(GpuId(3), j(1), 64);
        moved.assign(GpuId(4), j(1), 64);
        let (pa, ba) = a.job_signature(j(1));
        let (pm, bm) = moved.job_signature(j(1));
        assert_ne!(pa, pm);
        assert_eq!(ba, bm);

        // Changed batch split: batch hash changes.
        let mut resized = Schedule::empty(8);
        resized.assign(GpuId(0), j(1), 32);
        resized.assign(GpuId(1), j(1), 96);
        let (pr, br) = resized.job_signature(j(1));
        assert_eq!(pa, pr);
        assert_ne!(ba, br);

        // An absent job hashes like an empty placement, same everywhere.
        assert_eq!(
            a.job_signature(j(77)),
            Schedule::empty(8).job_signature(j(77))
        );
    }

    #[test]
    fn job_signatures_gather_matches_per_job_queries() {
        let mut s = Schedule::empty(8);
        s.assign(GpuId(0), j(1), 64);
        s.assign(GpuId(2), j(2), 32);
        s.assign(GpuId(3), j(1), 128);
        s.assign(GpuId(7), j(5), 16);

        let sigs = s.job_signatures();
        assert_eq!(sigs.len(), 3);
        for (&job, sig) in &sigs {
            assert_eq!(
                (sig.placement, sig.batches),
                s.job_signature(job),
                "gathered signature diverges for {job}"
            );
            assert_eq!(sig.gpus, s.gpu_count(job));
        }
        assert!(Schedule::empty(8).job_signatures().is_empty());
    }

    #[test]
    fn alignment_keeps_unchanged_jobs_in_place() {
        // Deployed: job1 on GPUs 2,3; job2 on GPU 5.
        let mut deployed = Schedule::empty(8);
        deployed.assign(GpuId(2), j(1), 64);
        deployed.assign(GpuId(3), j(1), 64);
        deployed.assign(GpuId(5), j(2), 32);
        // Candidate (reordered): job1 moved to GPUs 0,1 with the same
        // batches; job2 grown to two GPUs; job3 new.
        let mut cand = Schedule::empty(8);
        cand.assign(GpuId(0), j(1), 64);
        cand.assign(GpuId(1), j(1), 64);
        cand.assign(GpuId(2), j(2), 32);
        cand.assign(GpuId(3), j(2), 32);
        cand.assign(GpuId(4), j(3), 16);

        let aligned = cand.aligned_with(&deployed);
        // job1 unchanged -> stays on 2,3.
        assert_eq!(aligned.placement(j(1)).gpus(), &[GpuId(2), GpuId(3)]);
        // job2 changed -> moves, keeps its new config.
        assert_eq!(aligned.global_batch(j(2)), 64);
        assert_eq!(aligned.gpu_count(j(2)), 2);
        assert_eq!(aligned.global_batch(j(3)), 16);
        // Totals preserved.
        assert_eq!(aligned.idle_count(), cand.idle_count());
    }

    #[test]
    fn alignment_handles_conflicting_claims() {
        // Deployed: job1 on GPU 0. Candidate keeps job1's config but also
        // places job2 on GPU 0; alignment gives job1 its old GPU and finds
        // another for job2.
        let mut deployed = Schedule::empty(2);
        deployed.assign(GpuId(0), j(1), 8);
        let mut cand = Schedule::empty(2);
        cand.assign(GpuId(0), j(2), 4);
        cand.assign(GpuId(1), j(1), 8);
        let aligned = cand.aligned_with(&deployed);
        assert_eq!(aligned.placement(j(1)).gpus(), &[GpuId(0)]);
        assert_eq!(aligned.gpu_count(j(2)), 1);
        assert!(!aligned.placement(j(2)).contains(GpuId(0)));
    }

    #[test]
    fn non_disruptive_detection() {
        let mut deployed = Schedule::empty(4);
        deployed.assign(GpuId(0), j(1), 8);
        // Filling an idle GPU is non-disruptive.
        let mut fill = deployed.clone();
        fill.assign(GpuId(1), j(2), 8);
        assert!(fill.is_non_disruptive_over(&deployed));
        // Moving job1 is disruptive.
        let mut moved = Schedule::empty(4);
        moved.assign(GpuId(2), j(1), 8);
        assert!(!moved.is_non_disruptive_over(&deployed));
        // Evicting job1 is disruptive.
        let empty = Schedule::empty(4);
        assert!(!empty.is_non_disruptive_over(&deployed));
    }
}
