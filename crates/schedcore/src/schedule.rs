//! The schedule encoding `S : J × C → {b_j^i}` (paper Eq 1–2, Figure 1).
//!
//! A [`Schedule`] assigns every GPU at most one `(job, local batch)` pair —
//! the genome of the evolutionary search. Because a slot holds one job, the
//! paper's no-sharing constraint (Eq 4) holds by construction. The derived
//! quantities of Eq 2 — global batch `B_j = Σ_i b_j^i` and GPU count
//! `c_j = Σ_i min(1, b_j^i)` — are computed on demand.

use ones_cluster::{ClusterSpec, GpuId, Placement};
use ones_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// FNV-1a offset basis / prime, used for the per-job configuration
/// signatures ([`Schedule::job_signature`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// The set of jobs an evolution operation touched relative to the parent
/// schedule: every job whose `(placement shape, batch split)` may differ.
/// Delta-scoring recomputes exactly these jobs' Eq 8 terms and reuses the
/// parent's for the rest, so completeness of this set is a correctness
/// requirement (over-approximation is always safe).
pub type DirtySet = BTreeSet<JobId>;

/// One placed job's configuration signature within a schedule, gathered
/// by [`Schedule::job_signatures`].
///
/// The placement component hashes the placement *shape* — `(GPU count,
/// nodes spanned, max contiguous runs per node)` — not the absolute GPU
/// indices. The throughput model reads a placement only through those
/// three quantities (`dlperf::throughput` bottlenecks on
/// `nodes_spanned`/`max_runs_per_node`), so two placements with equal
/// shape have bit-identical model throughput and may share cache
/// entries. This also makes the signature invariant under the *reorder*
/// operation whenever packing does not change a job's node span, which
/// is what lets score cards survive reordering. Heterogeneous clusters
/// (per-node GPU classes) would break this purity and must extend the
/// key before landing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSignature {
    /// Hash of the job's placement shape (gpus, nodes spanned, max runs
    /// per node).
    pub placement: u64,
    /// Hash of the job's local batches, order-sensitive in GPU-id order.
    pub batches: u64,
    /// GPUs the job holds (`c_j`).
    pub gpus: u32,
}

impl JobSignature {
    /// Hash of a placement shape. The single definition every signature
    /// producer folds through — [`Schedule::job_signature`], the
    /// contiguous-layout fast path, and direct `Placement` probes must
    /// all agree bit-for-bit for throughput memoisation to be sound.
    #[must_use]
    pub fn placement_shape_hash(gpus: u32, nodes_spanned: u32, max_runs_per_node: u32) -> u64 {
        let mut h = fnv_fold(FNV_OFFSET, u64::from(gpus));
        h = fnv_fold(h, u64::from(nodes_spanned));
        fnv_fold(h, u64::from(max_runs_per_node))
    }

    /// Shape hash of a contiguous run of `len` GPUs starting at GPU id
    /// `start`: contiguous ids mean one run per node, and the node span
    /// is pure index arithmetic. `O(1)` — the reorder fast path.
    ///
    /// # Panics
    /// Panics if `len` is zero or `gpus_per_node` is zero.
    #[must_use]
    pub fn contiguous_shape_hash(start: u32, len: u32, gpus_per_node: u32) -> u64 {
        assert!(len > 0 && gpus_per_node > 0);
        let nodes = (start + len - 1) / gpus_per_node - start / gpus_per_node + 1;
        JobSignature::placement_shape_hash(len, nodes, 1)
    }

    /// Order-sensitive hash of local batches (must be fed in GPU-id
    /// order to match [`Schedule::job_signature`]).
    #[must_use]
    pub fn batches_hash(batches: impl IntoIterator<Item = u32>) -> u64 {
        batches
            .into_iter()
            .fold(FNV_OFFSET, |h, b| fnv_fold(h, u64::from(b)))
    }
}

/// One job's contiguous block in a reordered schedule: workers occupy
/// GPUs `start..start + len`. Produced by
/// [`Schedule::reordered_with_layout`] so delta-scoring can re-derive
/// every job's signature in `O(1)` per job instead of re-walking slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRun {
    /// The job owning the block.
    pub job: JobId,
    /// First GPU id of the block.
    pub start: u32,
    /// Number of GPUs in the block.
    pub len: u32,
}

/// Incremental placement-shape accumulator for an ascending GPU-id walk:
/// counts GPUs, distinct nodes (ids ascend, so node changes are
/// transitions) and contiguous-id runs per node, mirroring
/// `Placement::nodes_spanned` / `Placement::max_runs_per_node` exactly.
#[derive(Default)]
struct ShapeAcc {
    gpus: u32,
    nodes: u32,
    max_runs: u32,
    runs_on_node: u32,
    last_node: u32,
    last_gpu: u32,
}

impl ShapeAcc {
    #[inline]
    fn push(&mut self, gpu: u32, gpus_per_node: u32) {
        let node = gpu / gpus_per_node;
        if self.gpus == 0 {
            self.nodes = 1;
            self.runs_on_node = 1;
        } else if node != self.last_node {
            self.nodes += 1;
            self.runs_on_node = 1;
        } else if gpu != self.last_gpu + 1 {
            self.runs_on_node += 1;
        }
        self.max_runs = self.max_runs.max(self.runs_on_node);
        self.last_node = node;
        self.last_gpu = gpu;
        self.gpus += 1;
    }

    fn finish(&self, batches: u64) -> JobSignature {
        JobSignature {
            placement: JobSignature::placement_shape_hash(self.gpus, self.nodes, self.max_runs),
            batches,
            gpus: self.gpus,
        }
    }
}

/// One GPU's assignment: a job and its local batch `b_j^i ≥ 1` on this GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// The job whose worker runs here.
    pub job: JobId,
    /// Local batch size on this GPU (always ≥ 1).
    pub local_batch: u32,
}

/// A complete assignment of the cluster's GPUs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    slots: Vec<Option<Slot>>,
}

impl Schedule {
    /// An empty schedule for a cluster with `total_gpus` devices.
    #[must_use]
    pub fn empty(total_gpus: u32) -> Self {
        Schedule {
            slots: vec![None; total_gpus as usize],
        }
    }

    /// Number of GPU slots (== cluster size).
    #[must_use]
    pub fn num_gpus(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The slot on one GPU.
    ///
    /// # Panics
    /// Panics if the GPU id is out of range.
    #[must_use]
    pub fn slot(&self, gpu: GpuId) -> Option<Slot> {
        self.slots[gpu.0 as usize]
    }

    /// Assigns a worker of `job` with `local_batch` samples to `gpu`,
    /// replacing any previous occupant.
    ///
    /// # Panics
    /// Panics if `local_batch` is zero (use [`Schedule::clear`] to free a
    /// GPU) or the GPU id is out of range.
    pub fn assign(&mut self, gpu: GpuId, job: JobId, local_batch: u32) {
        assert!(local_batch > 0, "a placed worker needs a positive batch");
        self.slots[gpu.0 as usize] = Some(Slot { job, local_batch });
    }

    /// Frees a GPU.
    pub fn clear(&mut self, gpu: GpuId) {
        self.slots[gpu.0 as usize] = None;
    }

    /// Removes every worker of `job`, returning how many GPUs were freed.
    pub fn evict(&mut self, job: JobId) -> usize {
        let mut freed = 0;
        for s in &mut self.slots {
            if s.is_some_and(|sl| sl.job == job) {
                *s = None;
                freed += 1;
            }
        }
        freed
    }

    /// Global batch `B_j = Σ_i b_j^i` (Eq 2). Zero if the job is not placed.
    #[must_use]
    pub fn global_batch(&self, job: JobId) -> u32 {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.job == job)
            .map(|s| s.local_batch)
            .sum()
    }

    /// GPU count `c_j = Σ_i min(1, b_j^i)` (Eq 2).
    #[must_use]
    pub fn gpu_count(&self, job: JobId) -> u32 {
        self.slots.iter().flatten().filter(|s| s.job == job).count() as u32
    }

    /// The set of GPUs hosting `job`.
    #[must_use]
    pub fn placement(&self, job: JobId) -> Placement {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.filter(|sl| sl.job == job).map(|_| GpuId(i as u32)))
            .collect()
    }

    /// Local batches of `job` in GPU-id order (alongside
    /// [`Schedule::placement`], this is what the throughput model consumes).
    #[must_use]
    pub fn local_batches(&self, job: JobId) -> Vec<u32> {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.job == job)
            .map(|s| s.local_batch)
            .collect()
    }

    /// All running jobs with their `(global batch, gpu count)`, sorted by id.
    #[must_use]
    pub fn running_jobs(&self) -> BTreeMap<JobId, (u32, u32)> {
        let mut map: BTreeMap<JobId, (u32, u32)> = BTreeMap::new();
        for s in self.slots.iter().flatten() {
            let e = map.entry(s.job).or_insert((0, 0));
            e.0 += s.local_batch;
            e.1 += 1;
        }
        map
    }

    /// Whether a job holds at least one GPU.
    #[must_use]
    pub fn is_running(&self, job: JobId) -> bool {
        self.slots.iter().flatten().any(|s| s.job == job)
    }

    /// GPUs with no worker.
    #[must_use]
    pub fn idle_gpus(&self) -> Vec<GpuId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Number of idle GPUs.
    #[must_use]
    pub fn idle_count(&self) -> u32 {
        self.slots.iter().filter(|s| s.is_none()).count() as u32
    }

    /// Raw slot view (one entry per GPU).
    #[must_use]
    pub fn slots(&self) -> &[Option<Slot>] {
        &self.slots
    }

    /// FNV-1a signature of one job's configuration in this schedule,
    /// folded over the job's workers in GPU-id order. `None` if the job
    /// is not placed. Two schedules that give `job` the same placement
    /// *shape* and per-GPU batches produce equal signatures (see
    /// [`JobSignature`]), so the pair (plus the job id) keys throughput
    /// memoisation. Hash collisions between distinct configurations are
    /// possible in principle but negligible at 2×64 bits.
    #[must_use]
    pub fn job_signature(&self, job: JobId, gpus_per_node: u32) -> Option<JobSignature> {
        let mut acc = ShapeAcc::default();
        let mut batches = FNV_OFFSET;
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(slot) = s {
                if slot.job == job {
                    acc.push(i as u32, gpus_per_node);
                    batches = fnv_fold(batches, u64::from(slot.local_batch));
                }
            }
        }
        (acc.gpus > 0).then(|| acc.finish(batches))
    }

    /// Signatures of every placed job, gathered in a single pass over the
    /// slots. Produces exactly [`Schedule::job_signature`] per job (both
    /// fold slots in GPU-id order) but costs `O(gpus)` for *all* jobs
    /// instead of `O(gpus)` each — the difference that makes cached
    /// candidate scoring cheaper than re-evaluating the throughput model.
    #[must_use]
    pub fn job_signatures(&self, gpus_per_node: u32) -> BTreeMap<JobId, JobSignature> {
        let mut map: BTreeMap<JobId, (ShapeAcc, u64)> = BTreeMap::new();
        // Fold contiguous runs of the same job with a single map lookup:
        // reordered schedules pack each job's workers together, so this
        // is ~one lookup per job. The fold itself still walks slots in
        // GPU-id order, matching `job_signature` exactly even when a job
        // is split across several runs.
        let mut i = 0;
        while i < self.slots.len() {
            let Some(first) = self.slots[i] else {
                i += 1;
                continue;
            };
            let e = map
                .entry(first.job)
                .or_insert((ShapeAcc::default(), FNV_OFFSET));
            while let Some(Some(slot)) = self.slots.get(i) {
                if slot.job != first.job {
                    break;
                }
                e.0.push(i as u32, gpus_per_node);
                e.1 = fnv_fold(e.1, u64::from(slot.local_batch));
                i += 1;
            }
        }
        map.into_iter()
            .map(|(job, (acc, batches))| (job, acc.finish(batches)))
            .collect()
    }

    /// Packs the workers of each job contiguously, in order of each job's
    /// first occurrence — the *reorder* evolution operation (§3.2.2,
    /// Figure 10). Idle slots move to the end.
    #[must_use]
    pub fn reordered(&self) -> Schedule {
        self.reordered_with_layout().0
    }

    /// [`Schedule::reordered`], additionally returning the packed layout:
    /// one contiguous [`JobRun`] per job, in pack (first-occurrence)
    /// order. Delta-scoring consumes the layout to rebuild every job's
    /// signature in `O(len_j)` without re-walking the whole schedule.
    #[must_use]
    pub fn reordered_with_layout(&self) -> (Schedule, Vec<JobRun>) {
        let mut order: Vec<JobId> = Vec::new();
        for s in self.slots.iter().flatten() {
            if !order.contains(&s.job) {
                order.push(s.job);
            }
        }
        let mut out = Schedule::empty(self.num_gpus());
        let mut layout = Vec::with_capacity(order.len());
        let mut next = 0usize;
        for job in order {
            let start = next as u32;
            for s in self.slots.iter().flatten().filter(|s| s.job == job) {
                out.slots[next] = Some(*s);
                next += 1;
            }
            layout.push(JobRun {
                job,
                start,
                len: next as u32 - start,
            });
        }
        (out, layout)
    }

    /// Re-maps this schedule's workers to minimise disruption relative to
    /// a deployed schedule: every job whose configuration (multiset of
    /// local batches) is unchanged keeps exactly its old GPUs; all other
    /// workers pack into the remaining GPUs in first-occurrence order.
    ///
    /// The evolutionary search reorders candidates for locality, which
    /// would otherwise migrate every worker on every deployment; alignment
    /// makes unchanged jobs genuinely free to "re-deploy".
    #[must_use]
    pub fn aligned_with(&self, deployed: &Schedule) -> Schedule {
        assert_eq!(self.num_gpus(), deployed.num_gpus());
        let n = self.num_gpus();
        let mut out = Schedule::empty(n);
        let mut taken = vec![false; n as usize];
        let mut kept: Vec<JobId> = Vec::new();

        // Phase 1: unchanged jobs keep their old placement.
        for job in self.running_jobs().keys() {
            let mut old: Vec<u32> = deployed.local_batches(*job);
            let mut new: Vec<u32> = self.local_batches(*job);
            old.sort_unstable();
            new.sort_unstable();
            if old.is_empty() || old != new {
                continue;
            }
            for (i, slot) in deployed.slots().iter().enumerate() {
                if let Some(s) = slot.filter(|s| s.job == *job) {
                    out.slots[i] = Some(s);
                    taken[i] = true;
                }
            }
            kept.push(*job);
        }

        // Phase 2: everything else packs into the free GPUs in this
        // schedule's (already reordered) occurrence order.
        let mut free = (0..n as usize).filter(|&i| !taken[i]);
        for slot in self.slots.iter().flatten() {
            if kept.contains(&slot.job) {
                continue;
            }
            let Some(i) = free.next() else { break };
            out.slots[i] = Some(*slot);
        }
        out
    }

    /// Whether deploying `self` over `deployed` would disturb any job that
    /// is currently running: true when every running job of `deployed`
    /// keeps the identical slots in `self`.
    #[must_use]
    pub fn is_non_disruptive_over(&self, deployed: &Schedule) -> bool {
        deployed.running_jobs().keys().all(|job| {
            self.slots.iter().zip(deployed.slots()).all(|(new, old)| {
                let old_here = old.filter(|s| s.job == *job);
                let new_here = new.filter(|s| s.job == *job);
                old_here == new_here
            })
        })
    }

    /// Checks structural validity against a cluster and per-job local batch
    /// limits. Returns a description of the first violation.
    ///
    /// `max_local_batch(job)` should come from the job's model profile.
    pub fn validate(
        &self,
        spec: &ClusterSpec,
        mut max_local_batch: impl FnMut(JobId) -> u32,
    ) -> Result<(), String> {
        if self.num_gpus() != spec.total_gpus() {
            return Err(format!(
                "schedule has {} slots for a {}-GPU cluster",
                self.num_gpus(),
                spec.total_gpus()
            ));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(slot) = s {
                let limit = max_local_batch(slot.job);
                if slot.local_batch > limit {
                    return Err(format!(
                        "GPU {i}: job {} local batch {} exceeds memory limit {limit}",
                        slot.job, slot.local_batch
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    #[test]
    fn empty_schedule_is_all_idle() {
        let s = Schedule::empty(8);
        assert_eq!(s.idle_count(), 8);
        assert!(s.running_jobs().is_empty());
        assert_eq!(s.global_batch(j(1)), 0);
        assert_eq!(s.gpu_count(j(1)), 0);
        assert!(!s.is_running(j(1)));
    }

    #[test]
    fn eq2_derivations() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(1), 64);
        s.assign(GpuId(1), j(1), 64);
        s.assign(GpuId(2), j(2), 128);
        assert_eq!(s.global_batch(j(1)), 128);
        assert_eq!(s.gpu_count(j(1)), 2);
        assert_eq!(s.global_batch(j(2)), 128);
        assert_eq!(s.gpu_count(j(2)), 1);
        assert_eq!(s.idle_count(), 1);
        assert_eq!(s.idle_gpus(), vec![GpuId(3)]);
    }

    #[test]
    fn exclusive_gpu_by_construction() {
        // Assigning a second job to the same GPU replaces the first — a
        // GPU can never host two workers (Eq 4).
        let mut s = Schedule::empty(2);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(0), j(2), 64);
        assert_eq!(s.gpu_count(j(1)), 0);
        assert_eq!(s.gpu_count(j(2)), 1);
    }

    #[test]
    fn evict_frees_all_workers() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(3), j(2), 32);
        assert_eq!(s.evict(j(1)), 2);
        assert!(!s.is_running(j(1)));
        assert!(s.is_running(j(2)));
    }

    #[test]
    fn placement_is_sorted() {
        let mut s = Schedule::empty(8);
        s.assign(GpuId(5), j(1), 32);
        s.assign(GpuId(1), j(1), 32);
        let p = s.placement(j(1));
        assert_eq!(p.gpus(), &[GpuId(1), GpuId(5)]);
        assert_eq!(s.local_batches(j(1)), vec![32, 32]);
    }

    #[test]
    fn reorder_packs_by_first_occurrence() {
        // Figure 10: [J1, J2, J1, _, J2, J3] -> [J1, J1, J2, J2, J3, _].
        let mut s = Schedule::empty(6);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(1), j(2), 16);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(4), j(2), 16);
        s.assign(GpuId(5), j(3), 8);
        let r = s.reordered();
        let got: Vec<Option<u64>> = r.slots().iter().map(|s| s.map(|sl| sl.job.0)).collect();
        assert_eq!(got, vec![Some(1), Some(1), Some(2), Some(2), Some(3), None]);
        // Batches travel with their workers; totals unchanged.
        assert_eq!(r.global_batch(j(1)), 64);
        assert_eq!(r.global_batch(j(2)), 32);
        assert_eq!(r.global_batch(j(3)), 8);
    }

    #[test]
    fn reorder_improves_locality() {
        let spec = ClusterSpec::new(2, 4);
        let mut s = Schedule::empty(8);
        // Job 1 scattered across both nodes.
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(5), j(1), 32);
        s.assign(GpuId(7), j(1), 32);
        let before = s.placement(j(1)).locality_score(&spec);
        let after = s.reordered().placement(j(1)).locality_score(&spec);
        assert!(after > before, "before={before}, after={after}");
        assert_eq!(s.reordered().placement(j(1)).nodes_spanned(&spec), 1);
    }

    #[test]
    fn validate_checks_size_and_memory() {
        let spec = ClusterSpec::new(1, 4);
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(1), 512);
        assert!(s.validate(&spec, |_| 256).is_err());
        assert!(s.validate(&spec, |_| 512).is_ok());
        let wrong_size = Schedule::empty(8);
        assert!(wrong_size.validate(&spec, |_| 512).is_err());
    }

    #[test]
    fn running_jobs_aggregates() {
        let mut s = Schedule::empty(4);
        s.assign(GpuId(0), j(5), 64);
        s.assign(GpuId(1), j(5), 32);
        s.assign(GpuId(2), j(9), 16);
        let rj = s.running_jobs();
        assert_eq!(rj[&j(5)], (96, 2));
        assert_eq!(rj[&j(9)], (16, 1));
    }

    #[test]
    #[should_panic(expected = "positive batch")]
    fn zero_batch_assignment_rejected() {
        let mut s = Schedule::empty(1);
        s.assign(GpuId(0), j(1), 0);
    }

    #[test]
    fn job_signature_distinguishes_configurations() {
        // 8 GPUs on a 2×4 cluster throughout (gpus_per_node = 4).
        const GPN: u32 = 4;
        let mut a = Schedule::empty(8);
        a.assign(GpuId(0), j(1), 64);
        a.assign(GpuId(1), j(1), 64);
        a.assign(GpuId(2), j(2), 32);

        // Same configuration for job 1 in a different schedule.
        let mut b = Schedule::empty(8);
        b.assign(GpuId(0), j(1), 64);
        b.assign(GpuId(1), j(1), 64);
        b.assign(GpuId(5), j(9), 16);
        assert_eq!(a.job_signature(j(1), GPN), b.job_signature(j(1), GPN));

        // Moved across a node boundary: shape (and hash) changes.
        let mut spanning = Schedule::empty(8);
        spanning.assign(GpuId(3), j(1), 64);
        spanning.assign(GpuId(4), j(1), 64);
        let sa = a.job_signature(j(1), GPN).unwrap();
        let ss = spanning.job_signature(j(1), GPN).unwrap();
        assert_ne!(sa.placement, ss.placement);
        assert_eq!(sa.batches, ss.batches);

        // Moved within a node keeping the same shape: signatures are
        // deliberately equal — the throughput model reads a placement
        // only through (gpus, nodes spanned, runs per node), so the
        // configurations are interchangeable for memoisation.
        let mut shifted = Schedule::empty(8);
        shifted.assign(GpuId(2), j(1), 64);
        shifted.assign(GpuId(3), j(1), 64);
        assert_eq!(a.job_signature(j(1), GPN), shifted.job_signature(j(1), GPN));

        // Fragmented on one node: runs-per-node rises, shape changes.
        let mut fragmented = Schedule::empty(8);
        fragmented.assign(GpuId(0), j(1), 64);
        fragmented.assign(GpuId(2), j(1), 64);
        let sf = fragmented.job_signature(j(1), GPN).unwrap();
        assert_ne!(sa.placement, sf.placement);

        // Changed batch split: batch hash changes.
        let mut resized = Schedule::empty(8);
        resized.assign(GpuId(0), j(1), 32);
        resized.assign(GpuId(1), j(1), 96);
        let sr = resized.job_signature(j(1), GPN).unwrap();
        assert_eq!(sa.placement, sr.placement);
        assert_ne!(sa.batches, sr.batches);

        // An absent job has no signature.
        assert_eq!(a.job_signature(j(77), GPN), None);
    }

    #[test]
    fn job_signatures_gather_matches_per_job_queries() {
        const GPN: u32 = 4;
        let mut s = Schedule::empty(8);
        s.assign(GpuId(0), j(1), 64);
        s.assign(GpuId(2), j(2), 32);
        s.assign(GpuId(3), j(1), 128);
        s.assign(GpuId(7), j(5), 16);

        let sigs = s.job_signatures(GPN);
        assert_eq!(sigs.len(), 3);
        for (&job, sig) in &sigs {
            assert_eq!(
                Some(*sig),
                s.job_signature(job, GPN),
                "gathered signature diverges for {job}"
            );
            assert_eq!(sig.gpus, s.gpu_count(job));
        }
        assert!(Schedule::empty(8).job_signatures(GPN).is_empty());
    }

    #[test]
    fn shape_hash_matches_placement_metrics() {
        // The incremental ShapeAcc walk must agree with the Placement
        // metrics the throughput model actually reads, for scattered and
        // multi-node placements alike.
        let spec = ClusterSpec::new(4, 4);
        const GPN: u32 = 4;
        for gpus in [
            vec![0u32],
            vec![0, 1, 2, 3],
            vec![0, 2],
            vec![0, 1, 3],
            vec![3, 4],
            vec![0, 5, 10, 15],
            vec![0, 1, 4, 8, 9, 10],
            vec![2, 3, 4, 5, 9, 11, 13],
        ] {
            let mut s = Schedule::empty(16);
            for &g in &gpus {
                s.assign(GpuId(g), j(1), 8);
            }
            let sig = s.job_signature(j(1), GPN).unwrap();
            let p = Placement::new(gpus.iter().map(|&g| GpuId(g)).collect());
            let expect = JobSignature::placement_shape_hash(
                p.len() as u32,
                p.nodes_spanned(&spec) as u32,
                p.max_runs_per_node(&spec) as u32,
            );
            assert_eq!(sig.placement, expect, "shape hash diverges for {gpus:?}");
            assert_eq!(
                sig.batches,
                JobSignature::batches_hash(s.local_batches(j(1)))
            );
        }
    }

    #[test]
    fn contiguous_shape_hash_matches_walk() {
        const GPN: u32 = 4;
        for (start, len) in [(0u32, 1u32), (0, 4), (2, 3), (3, 2), (1, 7), (4, 4)] {
            let mut s = Schedule::empty(16);
            for g in start..start + len {
                s.assign(GpuId(g), j(1), 8);
            }
            assert_eq!(
                s.job_signature(j(1), GPN).unwrap().placement,
                JobSignature::contiguous_shape_hash(start, len, GPN),
                "contiguous fast path diverges for start={start} len={len}"
            );
        }
    }

    #[test]
    fn reordered_layout_describes_packed_blocks() {
        let mut s = Schedule::empty(6);
        s.assign(GpuId(0), j(1), 32);
        s.assign(GpuId(1), j(2), 16);
        s.assign(GpuId(2), j(1), 32);
        s.assign(GpuId(4), j(2), 16);
        s.assign(GpuId(5), j(3), 8);
        let (r, layout) = s.reordered_with_layout();
        assert_eq!(
            layout,
            vec![
                JobRun {
                    job: j(1),
                    start: 0,
                    len: 2
                },
                JobRun {
                    job: j(2),
                    start: 2,
                    len: 2
                },
                JobRun {
                    job: j(3),
                    start: 4,
                    len: 1
                },
            ]
        );
        // Each block's signature from the layout matches a fresh walk.
        const GPN: u32 = 4;
        for run in &layout {
            let sig = r.job_signature(run.job, GPN).unwrap();
            assert_eq!(
                sig.placement,
                JobSignature::contiguous_shape_hash(run.start, run.len, GPN)
            );
            assert_eq!(sig.gpus, run.len);
        }
    }

    #[test]
    fn alignment_keeps_unchanged_jobs_in_place() {
        // Deployed: job1 on GPUs 2,3; job2 on GPU 5.
        let mut deployed = Schedule::empty(8);
        deployed.assign(GpuId(2), j(1), 64);
        deployed.assign(GpuId(3), j(1), 64);
        deployed.assign(GpuId(5), j(2), 32);
        // Candidate (reordered): job1 moved to GPUs 0,1 with the same
        // batches; job2 grown to two GPUs; job3 new.
        let mut cand = Schedule::empty(8);
        cand.assign(GpuId(0), j(1), 64);
        cand.assign(GpuId(1), j(1), 64);
        cand.assign(GpuId(2), j(2), 32);
        cand.assign(GpuId(3), j(2), 32);
        cand.assign(GpuId(4), j(3), 16);

        let aligned = cand.aligned_with(&deployed);
        // job1 unchanged -> stays on 2,3.
        assert_eq!(aligned.placement(j(1)).gpus(), &[GpuId(2), GpuId(3)]);
        // job2 changed -> moves, keeps its new config.
        assert_eq!(aligned.global_batch(j(2)), 64);
        assert_eq!(aligned.gpu_count(j(2)), 2);
        assert_eq!(aligned.global_batch(j(3)), 16);
        // Totals preserved.
        assert_eq!(aligned.idle_count(), cand.idle_count());
    }

    #[test]
    fn alignment_handles_conflicting_claims() {
        // Deployed: job1 on GPU 0. Candidate keeps job1's config but also
        // places job2 on GPU 0; alignment gives job1 its old GPU and finds
        // another for job2.
        let mut deployed = Schedule::empty(2);
        deployed.assign(GpuId(0), j(1), 8);
        let mut cand = Schedule::empty(2);
        cand.assign(GpuId(0), j(2), 4);
        cand.assign(GpuId(1), j(1), 8);
        let aligned = cand.aligned_with(&deployed);
        assert_eq!(aligned.placement(j(1)).gpus(), &[GpuId(0)]);
        assert_eq!(aligned.gpu_count(j(2)), 1);
        assert!(!aligned.placement(j(2)).contains(GpuId(0)));
    }

    #[test]
    fn non_disruptive_detection() {
        let mut deployed = Schedule::empty(4);
        deployed.assign(GpuId(0), j(1), 8);
        // Filling an idle GPU is non-disruptive.
        let mut fill = deployed.clone();
        fill.assign(GpuId(1), j(2), 8);
        assert!(fill.is_non_disruptive_over(&deployed));
        // Moving job1 is disruptive.
        let mut moved = Schedule::empty(4);
        moved.assign(GpuId(2), j(1), 8);
        assert!(!moved.is_non_disruptive_over(&deployed));
        // Evicting job1 is disruptive.
        let empty = Schedule::empty(4);
        assert!(!empty.is_non_disruptive_over(&deployed));
    }
}
