//! Observable job runtime state.
//!
//! Workers upload their training progress (processed samples, loss,
//! validation accuracy) to the central scheduler at the end of each epoch
//! (§3.1). [`JobStatus`] is that telemetry plus bookkeeping the scheduler
//! may legitimately know (arrival time, attained service). The embedded
//! [`JobSpec`] carries the simulator's ground-truth convergence model;
//! honest schedulers only read the spec's *submitted* fields.

use ones_simcore::SimTime;
use ones_workload::{JobId, JobSpec};
use serde::{Deserialize, Serialize};

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Submitted, not currently holding GPUs.
    Waiting,
    /// Holding GPUs and training.
    Running,
    /// Converged and released.
    Completed,
}

/// Telemetry and bookkeeping for one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Submission-time information (and hidden ground truth — see module
    /// docs).
    pub spec: JobSpec,
    /// Current phase.
    pub phase: JobPhase,
    /// Submission time.
    pub arrival: SimTime,
    /// First time the job was granted GPUs, if ever.
    pub first_start: Option<SimTime>,
    /// Completion time, if finished.
    pub completion: Option<SimTime>,
    /// Wall epochs completed so far.
    pub epochs_done: u32,
    /// Samples processed so far (the paper's `Y_processed`).
    pub samples_processed: f64,
    /// Loss observed before training started.
    pub initial_loss: f64,
    /// Latest reported training loss.
    pub current_loss: f64,
    /// Latest reported validation accuracy.
    pub current_accuracy: f64,
    /// Recent observed throughput, samples/s (`X_j`); 0 until first epoch.
    pub throughput: f64,
    /// Cumulative execution (running) wall time, seconds.
    pub exec_time: f64,
    /// Cumulative attained service in GPU·seconds (Tiresias's 2D metric).
    pub gpu_service: f64,
    /// Current global batch size (0 when not running).
    pub current_batch: u32,
    /// Current GPU count (0 when not running).
    pub current_gpus: u32,
    /// Epochs completed since the currently deployed schedule was applied
    /// (the ONES update rule waits for ≥ 1 on every running job).
    pub epochs_in_current_schedule: u32,
    /// True if the job ended abnormally (killed/crashed) instead of
    /// converging.
    pub killed: bool,
}

impl JobStatus {
    /// Fresh status for a newly submitted job.
    #[must_use]
    pub fn submitted(spec: JobSpec, now: SimTime) -> Self {
        let initial_loss = spec.convergence.initial_loss;
        JobStatus {
            spec,
            phase: JobPhase::Waiting,
            arrival: now,
            first_start: None,
            completion: None,
            epochs_done: 0,
            samples_processed: 0.0,
            initial_loss,
            current_loss: initial_loss,
            current_accuracy: 0.0,
            throughput: 0.0,
            exec_time: 0.0,
            gpu_service: 0.0,
            current_batch: 0,
            current_gpus: 0,
            epochs_in_current_schedule: 0,
            killed: false,
        }
    }

    /// The job id.
    #[must_use]
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Loss improvement ratio `r_L = 1 − current/initial` (a predictor
    /// feature, §3.2.1 footnote 1).
    #[must_use]
    pub fn loss_improvement_ratio(&self) -> f64 {
        if self.initial_loss <= 0.0 {
            return 0.0;
        }
        (1.0 - self.current_loss / self.initial_loss).clamp(0.0, 1.0)
    }

    /// Epochs-equivalent of processed samples: `Y_processed / ‖D‖`
    /// (the predictor's α, Eq 6).
    #[must_use]
    pub fn processed_epochs(&self) -> f64 {
        self.samples_processed / self.spec.dataset_size as f64
    }

    /// Queueing time so far (or final, once completed): JCT − execution.
    #[must_use]
    pub fn queueing_time(&self, now: SimTime) -> f64 {
        let horizon = self.completion.unwrap_or(now);
        ((horizon - self.arrival) - self.exec_time).max(0.0)
    }

    /// Job completion time, if finished.
    #[must_use]
    pub fn jct(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }

    /// Whether the job is waiting for GPUs.
    #[must_use]
    pub fn is_waiting(&self) -> bool {
        self.phase == JobPhase::Waiting
    }

    /// Whether the job currently holds GPUs.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.phase == JobPhase::Running
    }

    /// Whether the job has converged.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.phase == JobPhase::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};

    fn spec() -> JobSpec {
        JobSpec {
            id: JobId(3),
            name: "test".into(),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 2,
            arrival_secs: 5.0,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        }
    }

    #[test]
    fn submitted_status_is_waiting_with_initial_loss() {
        let s = JobStatus::submitted(spec(), SimTime::from_secs(5.0));
        assert!(s.is_waiting());
        assert_eq!(s.current_loss, s.initial_loss);
        assert_eq!(s.loss_improvement_ratio(), 0.0);
        assert_eq!(s.processed_epochs(), 0.0);
        assert!(s.jct().is_none());
        assert_eq!(s.id(), JobId(3));
    }

    #[test]
    fn loss_ratio_improves_as_loss_drops() {
        let mut s = JobStatus::submitted(spec(), SimTime::ZERO);
        s.current_loss = s.initial_loss / 2.0;
        assert!((s.loss_improvement_ratio() - 0.5).abs() < 1e-12);
        s.current_loss = 0.0;
        assert_eq!(s.loss_improvement_ratio(), 1.0);
        // A loss spike above the initial loss clamps to 0, not negative.
        s.current_loss = s.initial_loss * 2.0;
        assert_eq!(s.loss_improvement_ratio(), 0.0);
    }

    #[test]
    fn processed_epochs_normalises_by_dataset() {
        let mut s = JobStatus::submitted(spec(), SimTime::ZERO);
        s.samples_processed = 50_000.0;
        assert!((s.processed_epochs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn queueing_time_excludes_execution() {
        let mut s = JobStatus::submitted(spec(), SimTime::from_secs(10.0));
        s.exec_time = 30.0;
        assert!((s.queueing_time(SimTime::from_secs(100.0)) - 60.0).abs() < 1e-12);
        s.completion = Some(SimTime::from_secs(80.0));
        s.phase = JobPhase::Completed;
        assert!((s.queueing_time(SimTime::from_secs(999.0)) - 40.0).abs() < 1e-12);
        assert!((s.jct().unwrap() - 70.0).abs() < 1e-12);
    }
}
