//! The scheduler trait and the view it schedules against.
//!
//! The simulator drives a [`Scheduler`] with lifecycle events. On each
//! event the scheduler may return a new desired [`Schedule`]; the simulator
//! then diffs it against the deployed schedule and executes the transition,
//! charging costs that depend on the scheduler's
//! [`ScalingMechanism`] — ONES's elastic NCCL scaling is ~1 s per
//! reconfiguration, while checkpoint-based migration costs tens of seconds
//! (Figure 16).

use crate::schedule::Schedule;
use crate::status::JobStatus;
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::SimTime;
use ones_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a scheduler's executor applies re-configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingMechanism {
    /// ONES §3.3.1: pause at a step boundary, resize modules, reconnect
    /// NCCL, broadcast parameters to joiners — no process restart.
    ElasticNccl,
    /// Common practice: stop, write a checkpoint, restart workers with the
    /// new configuration, reload data pipeline and weights.
    CheckpointRestart,
    /// Gandiva-style suspend/resume: worker state parks in host memory and
    /// swaps back within about a second — cheap like elastic scaling, but
    /// without batch-size elasticity.
    SuspendResume,
}

/// Why the scheduler is being invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedEvent {
    /// A new job was submitted.
    JobArrived(JobId),
    /// A running job finished a training epoch (telemetry updated).
    EpochEnded(JobId),
    /// A job converged; its GPUs are free in the *current* schedule.
    JobCompleted(JobId),
    /// A timer requested via [`Scheduler::next_wakeup`] fired.
    Tick,
}

impl SchedEvent {
    /// The event's short name in traces and metrics — the shared span
    /// taxonomy (DESIGN.md §5) every scheduler's `scheduling_round` span
    /// tags its `event` argument with, so cross-scheduler Perfetto traces
    /// compare like-for-like.
    #[must_use]
    pub fn kind(self) -> &'static str {
        match self {
            SchedEvent::JobArrived(_) => "arrival",
            SchedEvent::EpochEnded(_) => "epoch_end",
            SchedEvent::JobCompleted(_) => "completion",
            SchedEvent::Tick => "tick",
        }
    }
}

/// Read-only snapshot the scheduler decides against.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Cluster shape and fabric.
    pub spec: &'a ClusterSpec,
    /// Throughput model (stands in for online profiling: schedulers may
    /// evaluate candidate configurations with it, as Optimus fits
    /// resource–speed curves and ONES profiles real-time throughput).
    pub perf: &'a PerfModel,
    /// Every job ever submitted, keyed by id (including completed ones —
    /// completed-job telemetry is what trains the ONES predictor).
    pub jobs: &'a BTreeMap<JobId, JobStatus>,
    /// The currently deployed schedule.
    pub deployed: &'a Schedule,
}

impl ClusterView<'_> {
    /// Jobs currently waiting for service, in arrival order.
    #[must_use]
    pub fn waiting_jobs(&self) -> Vec<&JobStatus> {
        self.jobs.values().filter(|j| j.is_waiting()).collect()
    }

    /// Jobs currently running, in id order.
    #[must_use]
    pub fn running_jobs(&self) -> Vec<&JobStatus> {
        self.jobs.values().filter(|j| j.is_running()).collect()
    }

    /// Completed jobs, in id order.
    #[must_use]
    pub fn completed_jobs(&self) -> Vec<&JobStatus> {
        self.jobs.values().filter(|j| j.is_completed()).collect()
    }

    /// Convenience: the memory-limited max local batch of a job.
    #[must_use]
    pub fn max_local_batch(&self, job: JobId) -> u32 {
        self.jobs
            .get(&job)
            .map_or(0, |j| j.spec.profile().max_local_batch)
    }
}

/// Scheduler-internal performance counters, reported after a run.
///
/// Mechanism-agnostic mirror of whatever hot-loop diagnostics a scheduler
/// keeps (ONES reports its evolutionary-search counters here); baselines
/// that track nothing return `None` from [`Scheduler::perf_counters`].
/// Wall times are host-side measurements, not simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerPerfCounters {
    /// Search generations (or planning rounds) executed.
    pub generations: u64,
    /// Candidate schedules scored.
    pub candidates_scored: u64,
    /// Memoised throughput lookups answered from cache.
    pub cache_hits: u64,
    /// Throughput lookups that evaluated the model.
    pub cache_misses: u64,
    /// Model evaluations duplicated by concurrent lookups racing on the
    /// same key (the lookup still counts as a hit).
    pub cache_duplicate_computes: u64,
    /// Per-job cache invalidations applied on job events.
    pub cache_invalidations: u64,
    /// Cache hits during the most recent search generation.
    pub cache_hits_last_gen: u64,
    /// Cache misses during the most recent search generation.
    pub cache_misses_last_gen: u64,
    /// Host wall time refreshing candidates, nanoseconds.
    pub refresh_nanos: u64,
    /// Host wall time deriving/legalising candidates, nanoseconds.
    pub derive_nanos: u64,
    /// Host wall time scoring and selecting, nanoseconds.
    pub score_nanos: u64,
}

impl SchedulerPerfCounters {
    /// Fraction of throughput lookups served by the cache, in [0, 1]
    /// (zero when no cache ran).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of the most recent generation's lookups served by the
    /// cache, in [0, 1] — the cross-generation (warm) reuse signal.
    #[must_use]
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.cache_hits_last_gen + self.cache_misses_last_gen;
        if total == 0 {
            0.0
        } else {
            self.cache_hits_last_gen as f64 / total as f64
        }
    }

    /// Total measured host wall time across phases, nanoseconds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.refresh_nanos + self.derive_nanos + self.score_nanos
    }
}

/// A live tuning change for a running scheduler (ones-d `POST
/// /v1/config`). Every field is optional; `None` leaves the current value
/// untouched. Schedulers ignore fields that have no meaning for them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedTuning {
    /// Evolutionary-search generations per scheduling event.
    pub generations_per_event: Option<u32>,
    /// Evolutionary-search population size.
    pub population: Option<usize>,
    /// Per-gene mutation probability.
    pub mutation_rate: Option<f64>,
    /// Crossover pairs drawn per generation.
    pub crossover_pairs: Option<usize>,
}

impl SchedTuning {
    /// Whether any field is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == SchedTuning::default()
    }
}

/// An online DL cluster scheduler.
///
/// Implementations: ONES (`ones-sched`), Tiresias / Optimus / DRL / FIFO /
/// SRTF (`ones-baselines`). `Send` so a boxed scheduler can be owned by a
/// service thread (ones-d) or cross into a sweep worker.
pub trait Scheduler: Send {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// How this scheduler's executor applies re-configurations.
    fn mechanism(&self) -> ScalingMechanism;

    /// Reacts to an event. Returning `Some(schedule)` asks the simulator
    /// to transition the cluster to that schedule (the simulator validates
    /// it and charges mechanism-dependent costs); `None` keeps the current
    /// assignment.
    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule>;

    /// If `Some(t)`, the simulator schedules a [`SchedEvent::Tick`] at `t`
    /// (periodic schedulers such as Optimus re-plan on a fixed interval).
    /// Called after every event delivery.
    fn next_wakeup(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// Whether this scheduler adjusts batch sizes (only ONES does; used
    /// by the simulator to decide if linear LR scaling is applied when the
    /// global batch departs from the submitted one).
    fn scales_batch_sizes(&self) -> bool {
        false
    }

    /// Internal performance counters accumulated over the run, if this
    /// scheduler keeps any. Read once by the simulator when the run ends.
    fn perf_counters(&self) -> Option<SchedulerPerfCounters> {
        None
    }

    /// Applies a live tuning change mid-run (ones-d `POST /v1/config`).
    /// Returns whether anything was applied; the default ignores all
    /// tuning (baselines have no evolutionary knobs).
    fn reconfigure(&mut self, _tuning: &SchedTuning) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};
    use ones_workload::JobSpec;

    fn job(id: u64, phase: crate::status::JobPhase) -> JobStatus {
        let spec = JobSpec {
            id: JobId(id),
            name: format!("j{id}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 1,
            arrival_secs: 0.0,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: 256,
                ..ConvergenceModel::example()
            },
        };
        let mut s = JobStatus::submitted(spec, SimTime::ZERO);
        s.phase = phase;
        s
    }

    #[test]
    fn view_partitions_jobs_by_phase() {
        use crate::status::JobPhase::*;
        let spec = ClusterSpec::new(1, 4);
        let perf = PerfModel::new(spec);
        let deployed = Schedule::empty(4);
        let mut jobs = BTreeMap::new();
        jobs.insert(JobId(0), job(0, Waiting));
        jobs.insert(JobId(1), job(1, Running));
        jobs.insert(JobId(2), job(2, Completed));
        jobs.insert(JobId(3), job(3, Waiting));
        let view = ClusterView {
            now: SimTime::ZERO,
            spec: &spec,
            perf: &perf,
            jobs: &jobs,
            deployed: &deployed,
        };
        assert_eq!(view.waiting_jobs().len(), 2);
        assert_eq!(view.running_jobs().len(), 1);
        assert_eq!(view.completed_jobs().len(), 1);
        // CIFAR10 ResNet18: 512 × 4 = 2048 per GPU.
        assert_eq!(view.max_local_batch(JobId(0)), 2048);
        assert_eq!(view.max_local_batch(JobId(99)), 0);
    }
}
