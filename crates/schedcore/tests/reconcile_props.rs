//! Property tests for the reconciliation layer (DESIGN.md §10): the
//! event-loop invariants the typed operation machine must uphold.
//!
//! * **Convergence / liveness** — one `reconcile` pass places every
//!   desired job and removes every undesired one: a job handed to the
//!   reconciler is scheduled, a job dropped from the desired schedule is
//!   preempted. Nothing is left half-done.
//! * **Idempotence** — reconciling the same desired schedule again plans
//!   zero operations.
//! * **Recovery** — a reconciler serialised mid-flight (operations begun
//!   but not committed, phases partially advanced) and deserialised
//!   reaches exactly the same fixpoint as the uninterrupted one.
//! * **Phase machine** — every operation walks its phases in order and
//!   the walked durations sum to the plan's total cost.

use ones_cluster::GpuId;
use ones_schedcore::reconcile::diff;
use ones_schedcore::{PhasePlan, Reconciler, ScalingOp, ScalingPhase, Schedule};
use ones_workload::JobId;
use proptest::prelude::*;

const GPUS: u32 = 8;
const JOBS: u64 = 5;

fn schedule_of(slots: &[Option<(u64, u32)>]) -> Schedule {
    let mut s = Schedule::empty(GPUS);
    for (g, slot) in slots.iter().enumerate() {
        if let Some((job, batch)) = slot {
            s.assign(GpuId(g as u32), JobId(*job), *batch);
        }
    }
    s
}

fn slot_strategy() -> impl Strategy<Value = Vec<Option<(u64, u32)>>> {
    proptest::collection::vec(proptest::option::of((0u64..JOBS, 1u32..64)), GPUS as usize)
}

/// Rank of a phase in the forward walk; terminal states sort last.
fn rank(phase: ScalingPhase) -> u32 {
    match phase {
        ScalingPhase::Requested => 0,
        ScalingPhase::Draining => 1,
        ScalingPhase::Resizing => 2,
        ScalingPhase::RebuildingNccl => 3,
        ScalingPhase::Broadcasting => 4,
        ScalingPhase::Done | ScalingPhase::Failed { .. } => 5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Invariants (a) + (b): one pass schedules every desired job,
    /// removes every undesired one, and a second pass plans nothing.
    #[test]
    fn reconcile_converges_in_one_pass_and_is_idempotent(
        actual0 in slot_strategy(),
        desired in slot_strategy(),
    ) {
        let actual0 = schedule_of(&actual0);
        let desired = schedule_of(&desired);
        let mut r = Reconciler::from_actual(actual0.clone());
        r.reconcile(&desired);

        // Every desired job is placed exactly as desired (or kept as a
        // no-op with the same placement and global batch); every job
        // only present before is gone.
        prop_assert!(diff(&desired, r.actual()).is_empty(),
            "reconcile left a non-empty diff");
        for (job, _) in actual0.running_jobs() {
            let still_desired = !desired.placement(job).is_empty();
            prop_assert_eq!(!r.actual().placement(job).is_empty(), still_desired,
                "job {} not preempted/kept correctly", job);
        }
        // Idempotence: the fixpoint plans no further work.
        prop_assert!(r.plan(&desired).is_empty());
        prop_assert!(r.in_flight().is_empty());
        let fixpoint = r.actual().clone();
        r.reconcile(&desired);
        prop_assert_eq!(r.actual(), &fixpoint, "second reconcile moved the schedule");
    }

    /// Invariant (c): recovery from any persisted mid-flight state
    /// reaches the same fixpoint as the uninterrupted reconciler.
    #[test]
    fn recovery_from_any_persisted_state_reaches_the_same_fixpoint(
        actual0 in slot_strategy(),
        desired in slot_strategy(),
        begun in 0usize..9,
        advanced in 0u32..6,
    ) {
        let actual0 = schedule_of(&actual0);
        let desired = schedule_of(&desired);
        let mut live = Reconciler::from_actual(actual0);

        // Interrupt mid-flight: begin a prefix of the planned operations
        // and advance their phase machines partway, commit nothing.
        let plan = PhasePlan { drain: 1.0, resize: 2.0, nccl: 0.5, broadcast: 0.25 };
        let ops: Vec<ScalingOp> = live.plan(&desired);
        for op in ops.iter().take(begun) {
            let mut op = op.clone();
            for _ in 0..advanced {
                let _ = op.advance(&plan);
            }
            live.begin(op);
        }

        // Persist + recover (the daemon's snapshot path uses the same
        // serde derives).
        let json = serde_json::to_string(&live).expect("serialise reconciler");
        let mut recovered: Reconciler = serde_json::from_str(&json).expect("recover reconciler");
        prop_assert_eq!(&recovered, &live);

        live.reconcile(&desired);
        recovered.reconcile(&desired);
        prop_assert_eq!(live.actual(), recovered.actual(),
            "recovered fixpoint diverged from the uninterrupted one");
        prop_assert!(recovered.plan(&desired).is_empty());
        prop_assert!(recovered.in_flight().is_empty());
    }

    /// A fixpoint is reached after *every* deployment in a sequence, not
    /// just the first: the reconciler never accumulates drift.
    #[test]
    fn every_deployment_in_a_sequence_reaches_a_fixpoint(
        first in slot_strategy(),
        second in slot_strategy(),
        third in slot_strategy(),
    ) {
        let mut r = Reconciler::new(GPUS);
        for desired in [schedule_of(&first), schedule_of(&second), schedule_of(&third)] {
            r.reconcile(&desired);
            prop_assert!(diff(&desired, r.actual()).is_empty());
            prop_assert!(r.plan(&desired).is_empty());
        }
    }

    /// The phase machine walks strictly forward and its emitted durations
    /// sum to the plan's total scaling cost.
    #[test]
    fn phase_walk_is_ordered_and_sums_to_the_plan_total(
        drain in 0.0f64..10.0,
        resize in 0.0f64..10.0,
        nccl in 0.0f64..10.0,
        broadcast in 0.0f64..10.0,
    ) {
        let plan = PhasePlan { drain, resize, nccl, broadcast };
        let mut op = ScalingOp::start(JobId(0), vec![]);
        let mut walked = 0.0f64;
        let mut last_rank = rank(ScalingPhase::Requested);
        while let Some((phase, duration)) = op.advance(&plan) {
            prop_assert!(rank(phase) > last_rank, "phase walked backwards");
            last_rank = rank(phase);
            prop_assert!(duration > 0.0, "zero-duration phase was emitted");
            walked += duration;
        }
        prop_assert!(op.is_done());
        prop_assert!((walked - plan.total()).abs() < 1e-12,
            "walked {} != plan total {}", walked, plan.total());
    }
}
