//! Crash recovery against the real `ones-d` binary (DESIGN.md §10):
//! SIGKILL a daemon mid-replay — no drain, no shutdown path, no final
//! snapshot — then restart it from the persisted state file and assert
//! the recovered run reaches exactly the fixpoint an uninterrupted run
//! reaches: same per-job outcome phases and bit-identical completion
//! times.

use ones_d::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("ones-d-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("mkdir tempdir");
        TempDir(path)
    }

    fn file(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const JOBS: u64 = 12;

/// Spawns `ones-d` on the shared 12-job Philly replay and returns the
/// child plus the announced loopback address.
fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut args = vec![
        "--port",
        "0",
        "--gpus",
        "16",
        "--scheduler",
        "ones",
        "--trace-source",
        "philly",
        "--jobs",
        "12",
        "--rate-secs",
        "10",
        "--seed",
        "7",
        "--sched-seed",
        "1",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ones-d"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ones-d");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("ones-d closed stdout before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("ones-d listening on ") {
            break rest.to_string();
        }
    };
    // Keep draining stdout for the daemon's lifetime: dropping the pipe's
    // read end would EPIPE the daemon's next `println!` and kill it.
    std::thread::spawn(move || lines.for_each(drop));
    (child, addr)
}

/// Per-job fixpoint: id → (phase, completion time). Completion times are
/// compared exactly (same build, same deterministic replay).
type Fixpoint = std::collections::BTreeMap<u64, (String, Option<f64>)>;

/// Polls the daemon until every job reached a terminal phase, then
/// returns the per-job fixpoint.
fn run_to_fixpoint(client: &mut Client) -> Fixpoint {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        // Transient transport errors (a keep-alive race while the host is
        // loaded with sibling test suites) just mean "poll again".
        let done = client
            .get_json("/v1/cluster")
            .ok()
            .map(|cluster| {
                cluster
                    .get("completed")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
                    + cluster.get("killed").and_then(|v| v.as_u64()).unwrap_or(0)
            })
            .unwrap_or(0);
        if done == JOBS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replay did not finish: {done}/{JOBS} terminal"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let jobs = std::iter::repeat_with(|| {
        std::thread::sleep(Duration::from_millis(10));
        client.get_json("/v1/jobs")
    })
    .take(100)
    .find_map(Result::ok)
    .expect("jobs");
    let views = match jobs.get("jobs") {
        Some(serde_json::Value::Array(items)) => items.clone(),
        other => panic!("bad jobs body: {other:?}"),
    };
    views
        .iter()
        .map(|j| {
            let id = j.get("id").and_then(|v| v.as_u64()).expect("id");
            let phase = j
                .get("phase")
                .and_then(|v| v.as_str())
                .expect("phase")
                .to_string();
            let completion = j.get("completion_secs").and_then(|v| v.as_f64());
            (id, (phase, completion))
        })
        .collect()
}

#[test]
fn sigkill_mid_reconcile_recovers_to_the_uninterrupted_fixpoint() {
    // Reference: the same replay, never interrupted, run flat out.
    let (mut reference, addr) = spawn_daemon(&[]);
    let mut client = Client::connect(addr.as_str()).expect("resolve reference daemon");
    let expected = run_to_fixpoint(&mut client);
    assert_eq!(expected.len(), JOBS as usize);
    reference.kill().expect("stop reference daemon");
    let _ = reference.wait();

    // Crash run: throttled so the kill lands mid-replay, with scaling
    // operations in flight, snapshotting after every step batch.
    let dir = TempDir::new("crash");
    let state_file = dir.file("state.json");
    let (mut victim, addr) = spawn_daemon(&[
        "--step-delay-ms",
        "25",
        "--events-per-batch",
        "4",
        "--state-file",
        state_file.to_str().unwrap(),
    ]);
    let mut client = Client::connect(addr.as_str()).expect("resolve victim daemon");

    // Let the replay progress past the first deployments, then SIGKILL:
    // no drain, no shutdown hook, no final snapshot.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(cluster) = client.get_json("/v1/cluster") {
            let now = cluster
                .get("now_secs")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let seq = cluster
                .get("events_next_seq")
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            if now > 0.0 && seq >= 4 && state_file.exists() {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "victim replay never started progressing"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    victim.kill().expect("SIGKILL ones-d");
    let _ = victim.wait();

    // The snapshot on disk is a valid recovery log: parseable, with the
    // full job log and a reconcile state.
    let snapshot = ones_d::persist::load(&state_file).expect("persisted state parses");
    assert_eq!(snapshot.jobs.len(), JOBS as usize);
    assert!(
        snapshot.reconcile.is_some(),
        "snapshot must carry reconcile state"
    );
    assert!(!snapshot.draining);

    // Restart from the state file (same flags, unthrottled) and replay
    // to the fixpoint.
    let (mut recovered, addr) = spawn_daemon(&["--state-file", state_file.to_str().unwrap()]);
    let mut client = Client::connect(addr.as_str()).expect("resolve recovered daemon");
    let actual = run_to_fixpoint(&mut client);
    recovered.kill().expect("stop recovered daemon");
    let _ = recovered.wait();

    // The recovered fixpoint equals the uninterrupted run's, per job and
    // bit-for-bit on completion times.
    assert_eq!(actual.len(), expected.len());
    for (id, (phase, completion)) in &expected {
        let (got_phase, got_completion) = actual.get(id).expect("job present after recovery");
        assert_eq!(got_phase, phase, "job {id} phase diverged after recovery");
        match (completion, got_completion) {
            (Some(want), Some(got)) => assert!(
                (want - got).abs() < 1e-9,
                "job {id} completion diverged: {want} vs {got}"
            ),
            (None, None) => {}
            other => panic!("job {id} completion mismatch: {other:?}"),
        }
    }
}
