//! Property tests for the event log against a reference model: an
//! unbounded list of every event ever pushed. Whatever capacity, push
//! count and cursor sequence the generator draws, `since()` must agree
//! with the model on delivered events and `dropped` accounting, and a
//! resuming poller must see the sequence space tiled exactly — the same
//! invariants the loom model in `loom_state.rs` checks under concurrent
//! interleavings, here checked over a much wider input space.

use ones_d::state::EventLog;
use ones_simulator::{BackendEvent, BackendEventKind};
use ones_workload::JobId;
use proptest::prelude::*;

fn arrival(i: u64) -> BackendEvent {
    BackendEvent {
        vt_secs: i as f64,
        job: JobId(i),
        kind: BackendEventKind::Arrived,
    }
}

/// What a cap-bounded log must answer, derived from the full history.
fn reference_since(total: u64, cap: u64, cursor: u64) -> (u64, Vec<u64>, u64) {
    let first_held = total.saturating_sub(cap);
    let dropped = first_held.saturating_sub(cursor);
    let events: Vec<u64> = (first_held.max(cursor)..total).collect();
    (dropped, events, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One snapshot query agrees with the reference model exactly.
    #[test]
    fn since_matches_the_reference_model(
        cap in 1u64..6,
        pushes in 0u64..16,
        cursor in 0u64..20,
    ) {
        let mut log = EventLog::new(cap as usize);
        for i in 0..pushes {
            prop_assert_eq!(log.push(&arrival(i)), i);
        }
        let resp = log.since(cursor);
        let (dropped, events, next) = reference_since(pushes, cap, cursor);
        prop_assert_eq!(resp.dropped, dropped);
        prop_assert_eq!(resp.next_seq, next);
        let got: Vec<u64> = resp.events.iter().map(|e| e.seq).collect();
        prop_assert_eq!(got, events);
    }

    /// A poller that resumes its cursor across an arbitrary interleaving
    /// of appends and polls accounts for every event exactly once —
    /// delivered or dropped, no gaps, no duplicates.
    #[test]
    fn cursor_resume_accounts_for_every_event(
        cap in 1u64..5,
        // true = push one event, false = poll and fold into the cursor.
        ops in proptest::collection::vec(proptest::prelude::any::<bool>(), 0..48),
    ) {
        let mut log = EventLog::new(cap as usize);
        let (mut pushed, mut cursor, mut seen, mut dropped) = (0u64, 0u64, 0u64, 0u64);
        let fold = |log: &EventLog, cursor: &mut u64, seen: &mut u64, dropped: &mut u64|
            -> Result<(), TestCaseError> {
            let resp = log.since(*cursor);
            prop_assert_eq!(
                resp.dropped + resp.events.len() as u64,
                resp.next_seq - *cursor,
                "response must tile [cursor, next_seq)"
            );
            for (expect, e) in (*cursor + resp.dropped..).zip(resp.events.iter()) {
                prop_assert_eq!(e.seq, expect, "gap or duplicate in stream");
            }
            *seen += resp.events.len() as u64;
            *dropped += resp.dropped;
            *cursor = resp.next_seq;
            Ok(())
        };
        for &op in &ops {
            if op {
                prop_assert_eq!(log.push(&arrival(pushed)), pushed);
                pushed += 1;
            } else {
                fold(&log, &mut cursor, &mut seen, &mut dropped)?;
            }
        }
        fold(&log, &mut cursor, &mut seen, &mut dropped)?;
        prop_assert_eq!(cursor, pushed);
        prop_assert_eq!(seen + dropped, pushed,
            "every event is delivered exactly once or reported dropped");
        // A poller at least as fast as the writer never drops: polls
        // after every push ⇒ dropped == 0 (cap ≥ 1 holds the newest).
        prop_assert!(log.first_seq() <= log.next_seq());
    }
}
