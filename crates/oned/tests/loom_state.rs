//! Model-checked interleavings of the daemon's event-log publication: a
//! core thread appends under the state `RwLock` while a poller resumes a
//! `GET /v1/events?since=N` cursor. In every interleaving the cursor
//! stream must tile the sequence space exactly — gapless, no overlap,
//! `dropped` accounting for precisely the evicted-and-unseen events.
//!
//! Compiled only under `RUSTFLAGS="--cfg ones_loom"`; run via
//! `RUN_LOOM=1 scripts/ci.sh`.
#![cfg(ones_loom)]

use ones_d::api::EventsResponse;
use ones_d::state::EventLog;
use ones_simulator::{BackendEvent, BackendEventKind};
use ones_sync::model::{model_with, thread, Options};
use ones_sync::{Arc, RwLock};
use ones_workload::JobId;

fn arrival() -> BackendEvent {
    BackendEvent {
        vt_secs: 0.0,
        job: JobId(1),
        kind: BackendEventKind::Arrived,
    }
}

/// Folds one response into a resuming cursor, asserting the tiling
/// invariants that hold for *any* snapshot of the log:
/// `dropped + events.len() == next_seq - cursor`, and the events are the
/// consecutive run ending at `next_seq`.
fn fold_response(cursor: &mut u64, seen: &mut u64, dropped: &mut u64, resp: &EventsResponse) {
    assert!(
        resp.next_seq >= *cursor,
        "next_seq went backwards: {} < {cursor}",
        resp.next_seq
    );
    assert_eq!(
        resp.dropped + resp.events.len() as u64,
        resp.next_seq - *cursor,
        "response does not tile [cursor, next_seq)"
    );
    let mut expect = *cursor + resp.dropped;
    for e in &resp.events {
        assert_eq!(e.seq, expect, "gap or overlap in the event stream");
        expect += 1;
    }
    assert_eq!(expect, resp.next_seq);
    *seen += resp.events.len() as u64;
    *dropped += resp.dropped;
    *cursor = resp.next_seq;
}

/// A capacity-2 log, three appends racing a two-poll cursor resume, then
/// a final drain: `seen + dropped` must equal the final `next_seq` in
/// every interleaving, with each response individually consistent.
#[test]
fn cursor_resume_tiles_the_sequence_space() {
    let iterations = model_with(
        Options {
            preemption_bound: 2,
            ..Options::default()
        },
        || {
            let log = Arc::new(RwLock::new(EventLog::new(2)));

            let writer = {
                let log = Arc::clone(&log);
                thread::spawn(move || {
                    for i in 0..3u64 {
                        let seq = log.write().unwrap().push(&arrival());
                        assert_eq!(seq, i, "push must hand out consecutive seqs");
                    }
                })
            };
            let poller = {
                let log = Arc::clone(&log);
                thread::spawn(move || {
                    let (mut cursor, mut seen, mut dropped) = (0u64, 0u64, 0u64);
                    for _ in 0..2 {
                        let resp = log.read().unwrap().since(cursor);
                        fold_response(&mut cursor, &mut seen, &mut dropped, &resp);
                    }
                    (cursor, seen, dropped)
                })
            };

            writer.join().unwrap();
            let (mut cursor, mut seen, mut dropped) = poller.join().unwrap();

            // Drain after the writer finished: the totals must close.
            let resp = log.read().unwrap().since(cursor);
            fold_response(&mut cursor, &mut seen, &mut dropped, &resp);
            assert_eq!(cursor, 3, "all three appends visible after join");
            assert_eq!(
                seen + dropped,
                3,
                "every event is either delivered or reported dropped"
            );
            // Capacity 2 with 3 pushes: at most the overwritten event can
            // drop, and only if the poller never saw it.
            assert!(dropped <= 1, "cap-2 log can evict at most seq 0 here");
        },
    );
    assert!(
        iterations >= 10,
        "expected a real interleaving space, explored only {iterations}"
    );
}
