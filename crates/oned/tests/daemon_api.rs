//! End-to-end API tests: a live `ones-d` server on an ephemeral loopback
//! port, driven purely over HTTP.
//!
//! The centrepiece is the daemon-vs-batch determinism check: submitting a
//! Philly-style replay job-by-job through `POST /v1/jobs` (daemon booted
//! paused, then resumed) must reproduce exactly the outcomes of the
//! offline `run_experiment` harness on the same trace and seeds.

use ones_cluster::ClusterSpec;
use ones_d::{serve, Client, ServeOptions};
use ones_simcore::DetRng;
use ones_simulator::{
    run_experiment, ExperimentConfig, SchedulerKind, SimBackend, SimConfig, TraceSource,
};
use ones_workload::{ReplayConfig, Trace, WireJobSpec};
use std::time::{Duration, Instant};

fn replay_source() -> TraceSource {
    TraceSource::Replay(ReplayConfig {
        num_jobs: 12,
        base_rate: 1.0 / 10.0,
        seed: 7,
        kill_fraction: 0.3,
        ..ReplayConfig::default()
    })
}

/// Boots a paused daemon whose scheduler saw `trace` (for its λ estimate)
/// but whose event queue is empty — jobs arrive via the API.
fn serve_paused(
    kind: SchedulerKind,
    gpus: u32,
    trace: &Trace,
    sched_seed: u64,
) -> ones_d::ServerHandle {
    let spec = ClusterSpec::longhorn_subset(gpus);
    let scheduler = kind.build(&spec, trace, &DetRng::seed(sched_seed));
    let empty = Trace {
        config: trace.config,
        jobs: Vec::new(),
    };
    let backend = SimBackend::new(spec, &empty, scheduler, SimConfig::default());
    serve(
        Box::new(backend),
        ServeOptions {
            paused: true,
            ..ServeOptions::default()
        },
    )
    .expect("bind ephemeral port")
}

#[test]
fn daemon_replay_matches_offline_experiment() {
    ones_obs::set_level(ones_obs::ObsLevel::Counters);
    let offline = run_experiment(ExperimentConfig {
        gpus: 32,
        source: replay_source(),
        scheduler: SchedulerKind::Ones,
        sched_seed: 1,
        drl_pretrain_episodes: 0,
    });

    let trace = replay_source().materialise().expect("replay materialises");
    let handle = serve_paused(SchedulerKind::Ones, 32, &trace, 1);
    let mut client = Client::connect(handle.local_addr()).expect("resolve");

    // Submit the full trace in arrival order while paused: the daemon
    // sees exactly the arrival sequence the batch run dispatches.
    for job in &trace.jobs {
        let wire = WireJobSpec::from_spec(job);
        let (status, body) = client.post("/v1/jobs", &wire.to_json()).expect("submit");
        assert_eq!(status, 201, "submit failed: {body}");
        let reply: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(reply.get("id").and_then(|v| v.as_u64()), Some(job.id.0));
    }
    let cluster = client.get_json("/v1/cluster").expect("cluster");
    assert_eq!(cluster.get("paused").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        cluster.get("submitted").and_then(|v| v.as_u64()),
        Some(trace.jobs.len() as u64)
    );

    // Resume and follow the event stream to completion.
    let (status, body) = client
        .post("/v1/config", r#"{"pause": false}"#)
        .expect("resume");
    assert_eq!(status, 200, "{body}");

    let mut since = 0u64;
    let (mut completed, mut killed) = (0u64, 0u64);
    let mut last_end_vt = 0.0f64;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let events = client
            .get_json(&format!("/v1/events?since={since}"))
            .expect("events");
        assert_eq!(events.get("dropped").and_then(|v| v.as_u64()), Some(0));
        let batch = match events.get("events") {
            Some(serde_json::Value::Array(items)) => items.clone(),
            other => panic!("bad events body: {other:?}"),
        };
        for event in &batch {
            let kind = event
                .get("kind")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string();
            let vt = event.get("vt_secs").and_then(|v| v.as_f64()).unwrap();
            match kind.as_str() {
                "completed" => {
                    completed += 1;
                    last_end_vt = last_end_vt.max(vt);
                }
                "killed" => {
                    killed += 1;
                    last_end_vt = last_end_vt.max(vt);
                }
                _ => {}
            }
        }
        since = events.get("next_seq").and_then(|v| v.as_u64()).unwrap();
        if completed + killed == trace.jobs.len() as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "timed out at {completed} completed / {killed} killed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Outcome counts agree with the offline experiment harness on the
    // same trace and seeds (the wire format rebuilds each job's hidden
    // convergence model from Table 2 family defaults, so per-job timings
    // may shift slightly — outcomes must not).
    assert_eq!(completed, offline.completed_jobs as u64);
    assert_eq!(killed, offline.killed_jobs as u64);
    assert_eq!(offline.incomplete_jobs, 0);

    // And against a batch run over the *round-tripped* specs — exactly
    // what the daemon ingested — the virtual timeline is bit-identical.
    let round_tripped: Vec<_> = trace
        .jobs
        .iter()
        .map(|j| {
            WireJobSpec::from_spec(j)
                .into_spec(j.id.0, j.arrival_secs)
                .expect("round trip stays valid")
        })
        .collect();
    let trace2 = Trace {
        config: trace.config,
        jobs: round_tripped,
    };
    let spec = ClusterSpec::longhorn_subset(32);
    let scheduler = SchedulerKind::Ones.build(&spec, &trace2, &DetRng::seed(1));
    let batch = ones_simulator::Simulation::new(
        ones_dlperf::PerfModel::new(spec),
        &trace2,
        scheduler,
        SimConfig::default(),
    )
    .run();
    assert_eq!(batch.completed_jobs as u64, completed);
    assert_eq!(batch.killed_jobs as u64, killed);
    assert!(
        (last_end_vt - batch.makespan).abs() < 1e-9,
        "daemon makespan {last_end_vt} != batch {}",
        batch.makespan
    );

    // Job views agree with the event stream.
    let jobs = client.get_json("/v1/jobs").expect("jobs");
    let views = match jobs.get("jobs") {
        Some(serde_json::Value::Array(items)) => items.clone(),
        other => panic!("bad jobs body: {other:?}"),
    };
    assert_eq!(views.len(), trace.jobs.len());
    let phase_count = |name: &str| {
        views
            .iter()
            .filter(|j| j.get("phase").and_then(|v| v.as_str()) == Some(name))
            .count() as u64
    };
    assert_eq!(phase_count("completed"), completed);
    assert_eq!(phase_count("killed"), killed);

    // Acceptance criterion: /metrics serves live evolutionary-search and
    // simulator series after an ONES run.
    let (status, metrics) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("evo_search_generations"),
        "no evo.search.* series in /metrics"
    );
    assert!(
        metrics.contains("simulator_engine_events"),
        "no simulator.* series in /metrics"
    );

    drop(handle.shutdown_and_wait());
}

/// The drain race, pinned deterministically at the core: a submit already
/// in flight when the drain lands is adjudicated *after* it, and must be
/// explicitly rejected with a recorded outcome — not dropped, not
/// silently accepted into a draining cluster.
#[test]
fn a_submit_racing_a_drain_is_rejected_with_a_recorded_outcome() {
    use ones_d::{run_core, CoreMsg, CoreOptions};
    use ones_simulator::ClusterBackend;
    use ones_sync::mpsc;

    ones_obs::set_level(ones_obs::ObsLevel::Counters);
    let trace = Trace::generate(ones_workload::TraceConfig {
        num_jobs: 2,
        arrival_rate: 1.0 / 5.0,
        seed: 11,
        kill_fraction: 0.0,
    });
    let spec = ClusterSpec::longhorn_subset(16);
    let scheduler = SchedulerKind::Ones.build(&spec, &trace, &DetRng::seed(5));
    let empty = Trace {
        config: trace.config,
        jobs: Vec::new(),
    };
    let backend = SimBackend::new(spec, &empty, scheduler, SimConfig::default());
    let state = ones_d::state::shared("ones".to_string(), backend.occupancy(), true);

    // Pre-queue the exact race interleaving: both submits are in the
    // channel around the drain, and the core processes them in arrival
    // order — the HTTP front end cannot force this ordering, the core
    // channel can.
    let (tx, rx) = mpsc::channel::<CoreMsg>();
    let (accept_tx, accept_rx) = mpsc::sync_channel(1);
    let (drain_tx, drain_rx) = mpsc::sync_channel(1);
    let (reject_tx, reject_rx) = mpsc::sync_channel(1);
    tx.send(CoreMsg::Submit {
        wire: WireJobSpec::from_spec(&trace.jobs[0]),
        reply: accept_tx,
    })
    .unwrap();
    tx.send(CoreMsg::Drain { reply: drain_tx }).unwrap();
    tx.send(CoreMsg::Submit {
        wire: WireJobSpec::from_spec(&trace.jobs[1]),
        reply: reject_tx,
    })
    .unwrap();
    tx.send(CoreMsg::Stop).unwrap();
    let backend = run_core(
        Box::new(backend),
        ones_sync::Arc::clone(&state),
        &rx,
        CoreOptions {
            paused: true,
            ..CoreOptions::default()
        },
    );

    assert!(
        accept_rx.recv().unwrap().is_ok(),
        "pre-drain submit accepted"
    );
    assert_eq!(drain_rx.recv().unwrap(), 1, "one job outstanding at drain");
    let rejected = reject_rx.recv().unwrap();
    let err = rejected.expect_err("post-drain submit must be refused");
    assert!(err.contains("draining"), "{err}");

    let st = ones_d::state::read_state(&state);
    assert_eq!(st.submitted, 1);
    assert_eq!(st.rejected, 1);
    let recorded = st.events.since(0);
    assert!(
        recorded.events.iter().any(|e| e.kind == "rejected"),
        "rejection must appear in the event stream"
    );
    // The refused job never reached the backend.
    assert_eq!(backend.job_statuses().len(), 1);
}

#[test]
fn api_surfaces_errors_and_lifecycle_controls() {
    ones_obs::set_level(ones_obs::ObsLevel::Counters);
    let trace = Trace::generate(ones_workload::TraceConfig {
        num_jobs: 2,
        arrival_rate: 1.0 / 5.0,
        seed: 3,
        kill_fraction: 0.0,
    });
    let handle = serve_paused(SchedulerKind::Ones, 16, &trace, 5);
    let mut client = Client::connect(handle.local_addr()).expect("resolve");

    // Health and routing basics.
    assert_eq!(client.get("/healthz").unwrap().0, 200);
    assert_eq!(client.get("/nope").unwrap().0, 404);
    assert_eq!(client.request("DELETE", "/v1/jobs", None).unwrap().0, 405);
    assert_eq!(client.get("/v1/jobs/99").unwrap().0, 404);
    assert_eq!(client.get("/v1/jobs/xyz").unwrap().0, 400);
    assert_eq!(client.get("/v1/events?since=banana").unwrap().0, 400);

    // Bad submissions are 400 with a JSON error body.
    let (status, body) = client.post("/v1/jobs", "not json").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"));
    let (status, _) = client.post("/v1/jobs", r#"{"model": "GPT5"}"#).unwrap();
    assert_eq!(status, 400);

    // A valid submission gets an id; a duplicate id is rejected.
    let wire = WireJobSpec::from_spec(&trace.jobs[0]);
    let (status, body) = client.post("/v1/jobs", &wire.to_json()).unwrap();
    assert_eq!(status, 201, "{body}");
    let (status, body) = client.post("/v1/jobs", &wire.to_json()).unwrap();
    assert_eq!(status, 400, "duplicate id must be rejected: {body}");

    // Live tuning applies to ONES; a pure pause toggles without tuning.
    let (status, body) = client
        .post(
            "/v1/config",
            r#"{"population": 16, "generations_per_event": 2}"#,
        )
        .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"applied\":true"), "{body}");
    let (status, body) = client.post("/v1/config", r#"{"pause": false}"#).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"paused\":false"), "{body}");

    // Observability control plane: status reads, level changes apply,
    // typos 400 without half-applying, no-sink flush/rotate are no-ops.
    let obs = client.get_json("/v1/obs").expect("obs status");
    assert_eq!(
        obs.get("level").and_then(|v| v.as_str()),
        Some("counters"),
        "{obs:?}"
    );
    assert!(matches!(
        obs.get("trace_sink"),
        Some(serde_json::Value::Null)
    ));
    let (status, body) = client.post("/v1/obs", r#"{"level": "full"}"#).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"level\":\"full\""), "{body}");
    assert_eq!(ones_obs::level(), ones_obs::ObsLevel::Full);
    let (status, body) = client.post("/v1/obs", r#"{"level": "verbose"}"#).unwrap();
    assert_eq!(status, 400, "unknown level must 400: {body}");
    assert_eq!(ones_obs::level(), ones_obs::ObsLevel::Full);
    let (status, body) = client
        .post("/v1/obs", r#"{"flush_trace": true, "rotate_trace": true}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"flushed\":false"), "{body}");
    assert!(body.contains("\"rotated_to\":null"), "{body}");
    let (status, _) = client.post("/v1/obs", r#"{"level": "counters"}"#).unwrap();
    assert_eq!(status, 200);
    assert_eq!(ones_obs::level(), ones_obs::ObsLevel::Counters);

    // Drain: acknowledged, then new submissions are refused with 409.
    let (status, body) = client.post("/v1/drain", "{}").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");
    let wire2 = WireJobSpec::from_spec(&trace.jobs[1]);
    let (status, _) = client.post("/v1/jobs", &wire2.to_json()).unwrap();
    assert_eq!(status, 409);

    // The refusal is a recorded outcome, not just one client's error
    // string: the event stream carries a `rejected` event and the
    // cluster counter agrees.
    let events = client.get_json("/v1/events?since=0").unwrap();
    let kinds: Vec<String> = match events.get("events") {
        Some(serde_json::Value::Array(items)) => items
            .iter()
            .filter_map(|e| e.get("kind").and_then(|v| v.as_str()).map(String::from))
            .collect(),
        other => panic!("bad events body: {other:?}"),
    };
    assert!(
        kinds.iter().any(|k| k == "rejected"),
        "no rejected event in {kinds:?}"
    );
    let cluster = client.get_json("/v1/cluster").unwrap();
    assert_eq!(cluster.get("rejected").and_then(|v| v.as_u64()), Some(1));

    // The in-flight job still runs to completion after drain.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let job = client
            .get_json(&format!("/v1/jobs/{}", trace.jobs[0].id.0))
            .unwrap();
        if job.get("phase").and_then(|v| v.as_str()) == Some("completed") {
            break;
        }
        assert!(Instant::now() < deadline, "drained job never completed");
        std::thread::sleep(Duration::from_millis(10));
    }

    drop(handle.shutdown_and_wait());
}
