//! Shutdown tests against the real `ones-d` binary: SIGTERM a daemon
//! mid-replay and assert it exits 0 with parseable observability exports
//! (the Chrome trace must still be valid JSON — satellite criterion for
//! the shutdown path flushing `--trace-out`), and SIGKILL one mid-stream
//! to prove a chunked trace file is Perfetto-loadable even when no
//! finalization ever ran (DESIGN.md §5 crash-safety).

use ones_d::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("ones-d-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("mkdir tempdir");
        TempDir(path)
    }

    fn file(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wait_for_exit(child: &mut Child, within: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + within;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("ones-d did not exit within {within:?} after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_mid_replay_exits_zero_and_flushes_exports() {
    let dir = TempDir::new("shutdown");
    let trace_out = dir.file("trace.json");
    let metrics_out = dir.file("metrics.jsonl");

    // Throttled replay: 25 ms per step batch keeps the run alive long
    // enough to be interrupted in the middle.
    let mut child = Command::new(env!("CARGO_BIN_EXE_ones-d"))
        .args([
            "--port",
            "0",
            "--gpus",
            "16",
            "--scheduler",
            "ones",
            "--trace-source",
            "philly",
            "--jobs",
            "12",
            "--rate-secs",
            "10",
            "--seed",
            "7",
            "--step-delay-ms",
            "25",
            "--events-per-batch",
            "4",
            "--trace-out",
            trace_out.to_str().unwrap(),
            "--metrics-out",
            metrics_out.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ones-d");

    // The daemon prints its ephemeral address first.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("ones-d closed stdout before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("ones-d listening on ") {
            break rest.to_string();
        }
    };

    // Let the replay progress: wait until virtual time moves and at least
    // one scheduling event is published.
    let mut client = Client::connect(addr.as_str()).expect("resolve daemon address");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(cluster) = client.get_json("/v1/cluster") {
            let now = cluster
                .get("now_secs")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let seq = cluster
                .get("events_next_seq")
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            if now > 0.0 && seq > 0 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "replay never started progressing"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // SIGTERM (std's child.kill() is SIGKILL, which must NOT be the path
    // under test).
    let term = Command::new("/bin/kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run /bin/kill");
    assert!(term.success(), "kill -TERM failed");

    let status = wait_for_exit(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");

    // The Chrome trace flushed on the way out still parses as JSON with
    // the Perfetto-compatible envelope.
    let trace_text = std::fs::read_to_string(&trace_out).expect("trace-out written");
    let trace: serde_json::Value =
        serde_json::from_str(&trace_text).expect("chrome trace parses as JSON");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array present");
    assert!(
        !events.is_empty(),
        "an interrupted replay must still have recorded spans"
    );

    // Every metrics snapshot line is standalone JSON.
    let metrics_text = std::fs::read_to_string(&metrics_out).expect("metrics-out written");
    let mut saw_simulator_series = false;
    for line in metrics_text.lines().filter(|l| !l.trim().is_empty()) {
        let sample: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        if sample
            .get("key")
            .and_then(|v| v.as_str())
            .is_some_and(|n| n.starts_with("simulator."))
        {
            saw_simulator_series = true;
        }
    }
    assert!(
        saw_simulator_series,
        "metrics snapshot misses simulator.* series"
    );
}

/// A chunk-streamed trace must be loadable even when the daemon dies
/// without any shutdown path at all: flush at least one chunk, exercise
/// `GET`/`POST /v1/obs` over live HTTP, then SIGKILL and parse the file.
#[test]
fn sigkill_mid_stream_leaves_a_parseable_chunked_trace() {
    let dir = TempDir::new("sigkill");
    let trace_out = dir.file("trace.json");
    let metrics_out = dir.file("metrics.jsonl");

    let mut child = Command::new(env!("CARGO_BIN_EXE_ones-d"))
        .args([
            "--port",
            "0",
            "--gpus",
            "16",
            "--scheduler",
            "tiresias",
            "--trace-source",
            "philly",
            "--jobs",
            "12",
            "--rate-secs",
            "10",
            "--seed",
            "7",
            "--step-delay-ms",
            "25",
            "--events-per-batch",
            "4",
            "--trace-out",
            trace_out.to_str().unwrap(),
            "--trace-chunk-events",
            "32",
            "--metrics-out",
            metrics_out.to_str().unwrap(),
            "--metrics-interval",
            "60",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ones-d");

    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("ones-d closed stdout before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("ones-d listening on ") {
            break rest.to_string();
        }
    };

    // Wait until at least one chunk hit the disk, reading progress off
    // the live obs endpoint.
    let mut client = Client::connect(addr.as_str()).expect("resolve daemon address");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(obs) = client.get_json("/v1/obs") {
            assert_eq!(
                obs.get("level").and_then(|v| v.as_str()),
                Some("full"),
                "--trace-out must imply the full level"
            );
            let written = obs
                .get("trace_sink")
                .and_then(|s| s.get("events_written"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            if written > 0 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no trace chunk was flushed within the deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Live control: force a flush and a metrics snapshot through the
    // POST endpoint so the on-disk state is as fresh as the API allows.
    let (status, body) = client
        .post(
            "/v1/obs",
            r#"{"flush_trace": true, "metrics_snapshot": true}"#,
        )
        .expect("post obs");
    assert_eq!(status, 200, "obs control failed: {body}");
    let reply: serde_json::Value = serde_json::from_str(&body).expect("obs reply parses");
    assert_eq!(reply.get("flushed").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        reply.get("snapshotted").and_then(|v| v.as_bool()),
        Some(true)
    );

    // SIGKILL: no drain, no finalize, no atexit. The seek-back chunk
    // format must leave the file valid anyway.
    child.kill().expect("SIGKILL ones-d");
    let _ = child.wait();

    let trace_text = std::fs::read_to_string(&trace_out).expect("trace-out written");
    let trace: serde_json::Value =
        serde_json::from_str(&trace_text).expect("killed daemon's chunked trace parses as JSON");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array present");
    assert!(
        events.len() > 32,
        "expected at least one full chunk of events, got {}",
        events.len()
    );
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("scheduling_round")
                && e.get("args")
                    .and_then(|a| a.get("scheduler"))
                    .and_then(|v| v.as_str())
                    == Some("Tiresias")
        }),
        "baseline scheduling_round spans missing from the streamed trace"
    );

    // The forced snapshot means the metrics JSONL has at least one line,
    // every line standalone JSON with a "t" stamp.
    let metrics_text = std::fs::read_to_string(&metrics_out).expect("metrics-out written");
    let mut snapshot_lines = 0;
    for line in metrics_text.lines().filter(|l| !l.trim().is_empty()) {
        let sample: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        assert!(sample.get("t").and_then(|v| v.as_f64()).is_some());
        snapshot_lines += 1;
    }
    assert!(snapshot_lines > 0, "no metrics lines were streamed");
}
