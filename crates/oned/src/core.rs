//! The scheduler core: one thread that owns the [`ClusterBackend`].
//!
//! HTTP handlers never touch the backend directly — they send [`CoreMsg`]
//! over a channel and (for submissions and config changes) block on a
//! oneshot-style reply. The core interleaves control messages with
//! stepping virtual time in bounded batches, republishing the shared
//! [`ServiceState`] after every batch so readers stay close to live.

use crate::api::{ConfigReply, ConfigRequest, JobView, ObsReply, ObsRequest, SubmitReply};
use crate::persist::PersistedState;
use crate::state::{write_state, SharedState};
use ones_simulator::{BackendEvent, BackendEventKind, BackendPhase, ClusterBackend};
use ones_sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use ones_workload::{JobId, WireJobSpec};
use std::path::PathBuf;
use std::time::Duration;

/// Control messages from HTTP handlers to the core thread.
pub enum CoreMsg {
    /// Submit a job; replies with the assigned id or a rejection.
    Submit {
        /// The submission as parsed off the wire.
        wire: WireJobSpec,
        /// Reply channel (bounded, size 1).
        reply: SyncSender<Result<SubmitReply, String>>,
    },
    /// Apply a live tuning / pause change.
    Config {
        /// The parsed request.
        req: ConfigRequest,
        /// Reply channel (bounded, size 1).
        reply: SyncSender<ConfigReply>,
    },
    /// Stop accepting new jobs; in-flight jobs keep running.
    Drain {
        /// Reply channel carrying the number of unfinished jobs.
        reply: SyncSender<u64>,
    },
    /// Apply a live observability change (level, sink flush/rotate,
    /// metrics snapshot). Runs on the core thread so sink file IO is
    /// serialised with stepping and snapshots are stamped with the
    /// backend's virtual clock.
    Obs {
        /// The parsed request.
        req: ObsRequest,
        /// Reply channel (bounded, size 1).
        reply: SyncSender<ObsReply>,
    },
    /// Terminate the core loop after one final publish.
    Stop,
}

/// Tunables for the core loop.
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Start paused: queue submissions but do not advance virtual time.
    pub paused: bool,
    /// Start draining: refuse new submissions from the first message on
    /// (set when recovery restores a drained snapshot).
    pub draining: bool,
    /// Host-time sleep between step batches (throttles replay so wall
    /// clock observers can watch; zero = run flat out).
    pub step_delay: Duration,
    /// Scheduling events advanced per batch between control-message
    /// polls.
    pub events_per_batch: u64,
    /// Where to persist recovery snapshots after every step batch and
    /// control message; `None` disables persistence.
    pub state_file: Option<PathBuf>,
}

impl Default for CoreOptions {
    fn default() -> Self {
        CoreOptions {
            paused: false,
            draining: false,
            step_delay: Duration::ZERO,
            events_per_batch: 64,
            state_file: None,
        }
    }
}

/// How long the core blocks on the channel when there is nothing to step.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Runs the core loop until [`CoreMsg::Stop`] or channel disconnect.
/// Returns the backend so the caller can extract final accounting.
pub fn run_core(
    mut backend: Box<dyn ClusterBackend>,
    state: SharedState,
    rx: &Receiver<CoreMsg>,
    opts: CoreOptions,
) -> Box<dyn ClusterBackend> {
    let mut paused = opts.paused;
    let mut draining = opts.draining;
    let mut phase = BackendPhase::Active;
    let mut next_id = backend
        .job_statuses()
        .keys()
        .last()
        .map_or(0, |id| id.0 + 1);
    // Jobs preloaded from a trace count as submitted.
    let preloaded = backend.job_statuses().len() as u64;
    {
        let mut st = write_state(&state);
        st.submitted = preloaded;
        st.paused = paused;
        st.draining = draining;
    }
    publish(backend.as_mut(), &state, phase, paused, draining);
    persist_snapshot(backend.as_ref(), draining, opts.state_file.as_deref());

    loop {
        // Drain every pending control message before stepping again.
        let mut stop = false;
        let mut handled = false;
        while let Ok(msg) = rx.try_recv() {
            handled = true;
            match handle(
                msg,
                backend.as_mut(),
                &state,
                &mut paused,
                &mut draining,
                &mut next_id,
            ) {
                Verdict::Continue => {}
                Verdict::Woke => phase = BackendPhase::Active,
                Verdict::Stop => stop = true,
            }
        }
        if stop {
            publish(backend.as_mut(), &state, phase, paused, draining);
            persist_snapshot(backend.as_ref(), draining, opts.state_file.as_deref());
            return backend;
        }
        if handled {
            persist_snapshot(backend.as_ref(), draining, opts.state_file.as_deref());
        }

        if paused || phase != BackendPhase::Active {
            // Nothing to step: block on the channel instead of spinning.
            match rx.recv_timeout(IDLE_POLL) {
                Ok(msg) => {
                    match handle(
                        msg,
                        backend.as_mut(),
                        &state,
                        &mut paused,
                        &mut draining,
                        &mut next_id,
                    ) {
                        Verdict::Continue => {}
                        Verdict::Woke => phase = BackendPhase::Active,
                        Verdict::Stop => {
                            publish(backend.as_mut(), &state, phase, paused, draining);
                            persist_snapshot(
                                backend.as_ref(),
                                draining,
                                opts.state_file.as_deref(),
                            );
                            return backend;
                        }
                    }
                    persist_snapshot(backend.as_ref(), draining, opts.state_file.as_deref());
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    publish(backend.as_mut(), &state, phase, paused, draining);
                    persist_snapshot(backend.as_ref(), draining, opts.state_file.as_deref());
                    return backend;
                }
            }
            continue;
        }

        let (events, next_phase) = backend.step(opts.events_per_batch);
        phase = next_phase;
        {
            let mut st = write_state(&state);
            for event in &events {
                st.events.push(event);
                match event.kind {
                    BackendEventKind::Completed => st.completed += 1,
                    BackendEventKind::Killed => st.killed += 1,
                    _ => {}
                }
            }
        }
        publish(backend.as_mut(), &state, phase, paused, draining);
        persist_snapshot(backend.as_ref(), draining, opts.state_file.as_deref());
        if !opts.step_delay.is_zero() {
            std::thread::sleep(opts.step_delay);
        }
    }
}

/// Persists a recovery snapshot if a state file is configured. Failures
/// are reported, not fatal: a full disk must degrade crash recovery, not
/// stop scheduling.
fn persist_snapshot(backend: &dyn ClusterBackend, draining: bool, path: Option<&std::path::Path>) {
    let Some(path) = path else { return };
    let snapshot = PersistedState::snapshot(backend, draining);
    if let Err(e) = crate::persist::save(path, &snapshot) {
        eprintln!("ones-d: cannot persist state to {}: {e}", path.display());
    }
}

enum Verdict {
    Continue,
    /// The message may have created new work; leave idle.
    Woke,
    Stop,
}

fn handle(
    msg: CoreMsg,
    backend: &mut dyn ClusterBackend,
    state: &SharedState,
    paused: &mut bool,
    draining: &mut bool,
    next_id: &mut u64,
) -> Verdict {
    match msg {
        CoreMsg::Submit { wire, reply } => {
            let result = if *draining {
                // A submit that lost the race with a drain. Burn an id
                // and record the refusal in the event stream so the
                // outcome is auditable, not just one client's error
                // string: the caller's 409 and the cluster's `rejected`
                // counter always agree.
                let id = *next_id;
                *next_id += 1;
                {
                    let mut st = write_state(state);
                    st.rejected += 1;
                    st.events.push(&BackendEvent {
                        vt_secs: backend.now_secs(),
                        job: JobId(id),
                        kind: BackendEventKind::Rejected,
                    });
                }
                Err("daemon is draining; not accepting new jobs".to_string())
            } else {
                submit(wire, backend, next_id)
            };
            let woke = result.is_ok();
            let _ = reply.send(result);
            if woke {
                publish(backend, state, BackendPhase::Active, *paused, *draining);
                let mut st = write_state(state);
                st.submitted += 1;
                Verdict::Woke
            } else {
                Verdict::Continue
            }
        }
        CoreMsg::Config { req, reply } => {
            let tuning = req.tuning();
            let applied = !tuning.is_empty() && backend.reconfigure(&tuning);
            let mut woke = false;
            if let Some(p) = req.pause {
                woke = *paused && !p;
                *paused = p;
            }
            let _ = reply.send(ConfigReply {
                applied,
                paused: *paused,
            });
            {
                let mut st = write_state(state);
                st.paused = *paused;
            }
            if woke {
                Verdict::Woke
            } else {
                Verdict::Continue
            }
        }
        CoreMsg::Drain { reply } => {
            *draining = true;
            let outstanding = {
                let mut st = write_state(state);
                st.draining = true;
                st.outstanding()
            };
            let _ = reply.send(outstanding);
            Verdict::Continue
        }
        CoreMsg::Obs { req, reply } => {
            let _ = reply.send(apply_obs(&req, backend.now_secs()));
            Verdict::Continue
        }
        CoreMsg::Stop => Verdict::Stop,
    }
}

/// Applies each requested observability action independently, collecting
/// per-action errors instead of aborting on the first.
fn apply_obs(req: &ObsRequest, now_secs: f64) -> ObsReply {
    let mut errors = Vec::new();
    if let Some(level) = &req.level {
        match ones_obs::ObsLevel::parse(level) {
            Some(l) => ones_obs::set_level(l),
            None => errors.push(format!("unknown obs level {level:?}")),
        }
    }
    let mut flushed = false;
    if req.flush_trace == Some(true) {
        match ones_obs::flush_trace_sink() {
            Ok(did) => flushed = did,
            Err(e) => errors.push(e.to_string()),
        }
    }
    let mut rotated_to = None;
    if req.rotate_trace == Some(true) {
        match ones_obs::rotate_trace_sink() {
            Ok(sealed) => rotated_to = sealed.map(|p| p.display().to_string()),
            Err(e) => errors.push(e.to_string()),
        }
    }
    let mut snapshotted = false;
    if req.metrics_snapshot == Some(true) {
        match ones_obs::force_metrics_snapshot(now_secs) {
            Ok(did) => snapshotted = did,
            Err(e) => errors.push(e.to_string()),
        }
    }
    ObsReply {
        level: ones_obs::level().name().to_string(),
        flushed,
        rotated_to,
        snapshotted,
        errors,
    }
}

fn submit(
    wire: WireJobSpec,
    backend: &mut dyn ClusterBackend,
    next_id: &mut u64,
) -> Result<SubmitReply, String> {
    let spec = wire.into_spec(*next_id, backend.now_secs())?;
    let id = spec.id.0;
    let name = spec.name.clone();
    let arrival_secs = backend.submit(spec)?;
    *next_id = (*next_id).max(id + 1);
    Ok(SubmitReply {
        id,
        name,
        arrival_secs,
    })
}

/// Republishes the backend view into the shared state.
fn publish(
    backend: &mut dyn ClusterBackend,
    state: &SharedState,
    phase: BackendPhase,
    paused: bool,
    draining: bool,
) {
    let now = backend.now_secs();
    let jobs = backend.job_statuses();
    let occupancy = backend.occupancy();
    let mut st = write_state(state);
    st.now_secs = now;
    st.phase = phase;
    st.paused = paused;
    st.draining = draining;
    st.occupancy = occupancy;
    st.jobs = jobs
        .iter()
        .map(|(id, status)| (id.0, JobView::of(status, now)))
        .collect();
}
