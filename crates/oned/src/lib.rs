//! # ones-d — the ONES scheduler as a long-running service
//!
//! Turns the batch experiment harness into an online daemon (DESIGN.md
//! §6): a scheduler core thread owns a [`ones_simulator::ClusterBackend`]
//! and advances virtual time, while a hand-rolled HTTP/1.1 front end
//! (std-only TCP, no external dependencies) serves a JSON control plane:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a [`ones_workload::WireJobSpec`] |
//! | `GET /v1/jobs`, `GET /v1/jobs/{id}` | job telemetry views |
//! | `GET /v1/cluster` | node/GPU occupancy and daemon status |
//! | `GET /v1/events?since=N` | sequence-numbered scheduling events |
//! | `POST /v1/config` | live evolutionary-search re-tuning / pause |
//! | `POST /v1/drain` | refuse new jobs, finish the in-flight ones |
//! | `GET /metrics` | Prometheus text exposition of `ones-obs` |
//!
//! The crate ships two binaries: `ones-d` (the daemon, with graceful
//! SIGTERM/SIGINT shutdown that flushes observability exports) and
//! `ones-ctl` (a curl-style CLI used by CI smoke tests).

pub mod api;
pub mod client;
pub mod core;
pub mod http;
pub mod persist;
pub mod server;
pub mod state;

pub use api::{
    ClusterResponse, ConfigReply, ConfigRequest, DrainReply, ErrorBody, EventRecord,
    EventsResponse, JobView, JobsResponse, NodeView, SubmitReply,
};
pub use client::Client;
pub use core::{run_core, CoreMsg, CoreOptions};
pub use persist::PersistedState;
pub use server::{serve, ServeOptions, ServerHandle};
pub use state::{EventLog, ServiceState, SharedState};
