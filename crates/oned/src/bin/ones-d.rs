//! `ones-d` — the ONES scheduler daemon.
//!
//! Boots a simulated cluster behind the HTTP control plane and runs until
//! SIGTERM/SIGINT, then shuts down gracefully: stop accepting, finish
//! in-flight requests, flush `--trace-out` / `--metrics-out`, exit 0.
//!
//! ```text
//! ones-d --port 8080 --gpus 64 --scheduler ones
//! ones-d --port 8080 --trace-source philly --jobs 24 --step-delay-ms 20
//! ones-d --port 0 --paused            # ephemeral port, wait for POSTs
//! ```

use ones_cluster::ClusterSpec;
use ones_d::{serve, ServeOptions};
use ones_simcore::DetRng;
use ones_simulator::{SchedulerKind, SimBackend, TraceSource};
use ones_sync::atomic::{AtomicBool, Ordering};
use ones_workload::{ReplayConfig, Trace, TraceConfig};
use std::collections::BTreeMap;
use std::io::Write;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ones-d [--port N] [--gpus N] [--scheduler NAME] [--sched-seed N]\n\
         \t[--trace-source none|table2|philly|file] [--trace-file FILE]\n\
         \t[--jobs N] [--rate-secs SECONDS] [--seed N] [--kill-fraction F]\n\
         \t[--paused] [--step-delay-ms MS] [--events-per-batch N]\n\
         \t[--obs off|counters|full] [--trace-out FILE] [--metrics-out FILE]\n\
         \t[--trace-chunk-events N] [--metrics-interval SECS]\n\
         \t[--state-file FILE]\n\
         \n\
         Serves the ONES scheduler control plane on 127.0.0.1 (port 0 =\n\
         ephemeral; the chosen address is printed on stdout). With a\n\
         --trace-source other than `none` the daemon preloads that trace\n\
         and replays it; jobs can always be added live via POST /v1/jobs.\n\
         --step-delay-ms throttles virtual time so wall-clock observers\n\
         can watch a replay. --trace-out streams spans to disk in\n\
         --trace-chunk-events chunks (default 65536; 0 keeps the trace in\n\
         memory until exit) and --metrics-out appends a snapshot every\n\
         --metrics-interval virtual seconds (default 300; 0 writes once at\n\
         exit); GET/POST /v1/obs inspects and controls both live. On\n\
         SIGTERM/SIGINT the daemon drains in-flight requests, finalizes\n\
         --trace-out/--metrics-out and exits 0; a chunk-streamed trace\n\
         file is valid JSON even if the daemon is killed outright.\n\
         --state-file FILE persists a recovery snapshot (atomically,\n\
         after every step batch) and, when FILE already exists at boot,\n\
         recovers from it: the persisted job log replaces the preload\n\
         trace and is replayed deterministically to the same fixpoint\n\
         the interrupted run was heading for."
    );
    std::process::exit(2);
}

fn parse_scheduler(name: &str) -> Option<SchedulerKind> {
    match name.to_ascii_lowercase().as_str() {
        "ones" => Some(SchedulerKind::Ones),
        "drl" => Some(SchedulerKind::Drl),
        "tiresias" => Some(SchedulerKind::Tiresias),
        "optimus" => Some(SchedulerKind::Optimus),
        "fifo" => Some(SchedulerKind::Fifo),
        "srtf" | "srtf-oracle" => Some(SchedulerKind::SrtfOracle),
        "gandiva" => Some(SchedulerKind::Gandiva),
        "slaq" => Some(SchedulerKind::Slaq),
        "ones-greedy" => Some(SchedulerKind::OnesGreedy),
        "ones-nopred" => Some(SchedulerKind::OnesNoPredictor),
        "ones-noreorder" => Some(SchedulerKind::OnesNoReorder),
        "ones-ckpt" => Some(SchedulerKind::OnesCheckpoint),
        _ => None,
    }
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn main() {
    let mut args: BTreeMap<String, String> = BTreeMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            usage();
        };
        match name {
            "paused" | "help" => flags.push(name.to_string()),
            _ => {
                let Some(value) = iter.next() else { usage() };
                args.insert(name.to_string(), value);
            }
        }
    }
    if flags.iter().any(|f| f == "help") {
        usage();
    }
    let get = |k: &str, d: f64| -> f64 {
        args.get(k)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(d)
    };

    let gpus = get("gpus", 64.0) as u32;
    let scheduler = args
        .get("scheduler")
        .map(|s| parse_scheduler(s).unwrap_or_else(|| usage()))
        .unwrap_or(SchedulerKind::Ones);
    let rate_secs = get("rate-secs", 30.0);
    let seed = get("seed", 42.0) as u64;
    let sched_seed = get("sched-seed", 1.0) as u64;

    // The preload trace, if any. Live submissions work either way.
    let source = match args.get("trace-source").map(String::as_str) {
        None | Some("none") => None,
        Some("table2") => Some(TraceSource::Table2(TraceConfig {
            num_jobs: get("jobs", 24.0) as usize,
            arrival_rate: 1.0 / rate_secs,
            seed,
            kill_fraction: get("kill-fraction", 0.0),
        })),
        Some("philly") | Some("replay") => {
            let defaults = ReplayConfig::default();
            Some(TraceSource::Replay(ReplayConfig {
                num_jobs: get("jobs", 24.0) as usize,
                base_rate: 1.0 / rate_secs,
                seed,
                kill_fraction: get("kill-fraction", defaults.kill_fraction),
                ..defaults
            }))
        }
        Some("file") => {
            let Some(path) = args.get("trace-file") else {
                eprintln!("--trace-source file needs --trace-file FILE");
                usage();
            };
            Some(TraceSource::File(path.clone()))
        }
        Some(other) => {
            eprintln!("unknown trace source {other:?} (none|table2|philly|file)");
            usage();
        }
    };

    let obs_level = match args.get("obs") {
        Some(s) => ones_obs::ObsLevel::parse(s).unwrap_or_else(|| usage()),
        None if args.contains_key("trace-out") => ones_obs::ObsLevel::Full,
        None => ones_obs::ObsLevel::Counters,
    };
    ones_obs::set_level(obs_level);

    // Streaming sinks (DESIGN.md §5): attach before serving so spans and
    // metrics stream to disk as the daemon runs. Chunked trace files are
    // valid JSON at every flush, so even SIGKILL loses at most the
    // unflushed tail.
    let chunk_events = args
        .get("trace-chunk-events")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()))
        .unwrap_or(ones_obs::DEFAULT_TRACE_CHUNK_EVENTS);
    let metrics_interval = get("metrics-interval", ones_obs::DEFAULT_METRICS_INTERVAL_SECS);
    if metrics_interval < 0.0 {
        usage();
    }
    if let Some(path) = args.get("trace-out") {
        if chunk_events > 0 {
            if let Err(e) = ones_obs::attach_trace_sink(path, chunk_events) {
                eprintln!("cannot open trace sink: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = args.get("metrics-out") {
        if metrics_interval > 0.0 {
            if let Err(e) = ones_obs::attach_metrics_sink(
                path,
                metrics_interval,
                ones_obs::DEFAULT_METRICS_MAX_BUCKETS,
            ) {
                eprintln!("cannot open metrics sink: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut trace = match &source {
        Some(source) => source.materialise().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        }),
        // No preload: an empty trace whose arrival rate seeds the
        // scheduler's λ estimate, exactly like the CSV-ingestion path.
        None => Trace {
            config: TraceConfig {
                num_jobs: 0,
                arrival_rate: 1.0 / rate_secs,
                seed,
                kill_fraction: 0.0,
            },
            jobs: Vec::new(),
        },
    };

    // Crash recovery (DESIGN.md §10): a readable state file overrides
    // the preload — its job log already contains the trace jobs plus any
    // live submissions, each with its effective arrival time. Stepping
    // is deterministic for a fixed job log and seed, so replaying from
    // t=0 reaches the same fixpoint the interrupted run was heading for.
    let state_file = args.get("state-file").map(std::path::PathBuf::from);
    let mut recovered_draining = false;
    if let Some(path) = &state_file {
        if path.exists() {
            match ones_d::persist::load(path) {
                Ok(saved) => {
                    if saved.total_gpus != gpus {
                        eprintln!(
                            "ones-d: state file has {} GPUs, flags say {gpus}; using the flags",
                            saved.total_gpus
                        );
                    }
                    eprintln!(
                        "ones-d: recovering {} job(s) from {} (vt {:.1}s at snapshot)",
                        saved.jobs.len(),
                        path.display(),
                        saved.now_secs
                    );
                    trace.jobs = saved.jobs;
                    recovered_draining = saved.draining;
                }
                Err(e) => eprintln!("ones-d: starting fresh: {e}"),
            }
        }
    }

    let spec = ClusterSpec::longhorn_subset(gpus);
    let sched = scheduler.build(&spec, &trace, &DetRng::seed(sched_seed));
    let backend = SimBackend::new(spec, &trace, sched, ones_simulator::SimConfig::default());

    let opts = ServeOptions {
        port: get("port", 8080.0) as u16,
        paused: flags.iter().any(|f| f == "paused"),
        draining: recovered_draining,
        step_delay: Duration::from_millis(get("step-delay-ms", 0.0) as u64),
        events_per_batch: get("events-per-batch", 64.0) as u64,
        state_file,
    };
    install_signal_handlers();
    let port = opts.port;
    let handle = serve(Box::new(backend), opts).unwrap_or_else(|e| {
        eprintln!("cannot bind 127.0.0.1:{port}: {e}");
        std::process::exit(1);
    });
    println!("ones-d listening on {}", handle.local_addr());
    // Best-effort banner: a supervisor that only reads the address line
    // may have closed the pipe already, and an EPIPE here must not kill
    // the daemon (println! panics on a failed write).
    let _ = writeln!(
        std::io::stdout(),
        "ones-d: {} on {} GPUs, {} preloaded job(s), obs {}",
        scheduler.name(),
        gpus,
        trace.jobs.len(),
        obs_level.name()
    );
    std::io::stdout().flush().ok();

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }

    eprintln!("ones-d: shutdown requested, draining in-flight requests");
    let backend = handle.shutdown_and_wait();
    let final_vt = backend.as_ref().map_or(0.0, |b| b.now_secs());
    if let Some(path) = args.get("trace-out") {
        if ones_obs::trace_sink_attached() {
            match ones_obs::finalize_trace_sink() {
                Ok(_) => eprintln!("ones-d: chrome trace streamed to {path}"),
                Err(e) => eprintln!("ones-d: cannot finalize {path}: {e}"),
            }
        } else {
            match ones_obs::write_chrome_trace(path) {
                Ok(()) => eprintln!("ones-d: chrome trace written to {path}"),
                Err(e) => eprintln!("ones-d: cannot write {path}: {e}"),
            }
        }
    }
    if let Some(path) = args.get("metrics-out") {
        if ones_obs::metrics_sink_attached() {
            match ones_obs::finalize_metrics_sink(final_vt) {
                Ok(_) => eprintln!("ones-d: metrics series streamed to {path}"),
                Err(e) => eprintln!("ones-d: cannot finalize {path}: {e}"),
            }
        } else {
            match ones_obs::write_metrics_jsonl(path) {
                Ok(()) => eprintln!("ones-d: metrics snapshot written to {path}"),
                Err(e) => eprintln!("ones-d: cannot write {path}: {e}"),
            }
        }
    }
    eprintln!("ones-d: stopped");
}
