//! `ones-ctl` — curl-style CLI for the `ones-d` control plane.
//!
//! ```text
//! ones-ctl submit --model ResNet18 --dataset CIFAR10 \
//!     --dataset-size 20000 --batch 256 --gpus 2
//! ones-ctl jobs            ones-ctl job 0
//! ones-ctl cluster         ones-ctl events --since 0
//! ones-ctl config --population 24 --generations 2
//! ones-ctl drain           ones-ctl metrics
//! ```
//!
//! Exits 0 on a 2xx response (body printed to stdout), 1 otherwise.

use ones_d::Client;
use ones_workload::WireJobSpec;
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!(
        "usage: ones-ctl [--addr HOST:PORT] COMMAND [ARGS]\n\
         \n\
         commands:\n\
         \tsubmit --model M --dataset D --dataset-size N --batch B --gpus G\n\
         \t       [--name S] [--max-safe-batch N] [--arrival SECS]\n\
         \t       [--kill-after SECS] | submit --json BODY\n\
         \tjobs\t\tlist all jobs\n\
         \tjob ID\t\tone job\n\
         \tcluster\t\toccupancy and daemon status\n\
         \tevents [--since N]\tevent stream from a cursor\n\
         \tconfig [--generations N] [--population N] [--mutation-rate F]\n\
         \t       [--crossover-pairs N] [--pause true|false]\n\
         \tdrain\t\trefuse new jobs, finish in-flight ones\n\
         \tobs [--level off|counters|full] [--flush-trace true]\n\
         \t    [--rotate-trace true] [--snapshot true]\n\
         \t    \t\tshow (no flags) or change observability state\n\
         \tmetrics\t\tPrometheus text exposition\n\
         \thealth\t\tliveness probe"
    );
    std::process::exit(2);
}

fn main() {
    let mut command: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args: BTreeMap<String, String> = BTreeMap::new();
    let mut iter = std::env::args().skip(1);
    while let Some(token) = iter.next() {
        if let Some(name) = token.strip_prefix("--") {
            let Some(value) = iter.next() else { usage() };
            args.insert(name.to_string(), value);
        } else if command.is_none() {
            command = Some(token);
        } else {
            positional.push(token);
        }
    }
    let Some(command) = command else { usage() };
    let addr = args
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let mut client = Client::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("ones-ctl: bad address {addr}: {e}");
        std::process::exit(1);
    });

    let result = match command.as_str() {
        "submit" => {
            let body = match args.get("json") {
                Some(json) => json.clone(),
                None => {
                    let req = |k: &str| {
                        args.get(k).cloned().unwrap_or_else(|| {
                            eprintln!("ones-ctl submit: missing --{k}");
                            usage()
                        })
                    };
                    let num = |k: &str| -> Option<f64> {
                        args.get(k).map(|v| {
                            v.parse().unwrap_or_else(|_| {
                                eprintln!("ones-ctl submit: bad --{k} {v:?}");
                                usage()
                            })
                        })
                    };
                    let wire = WireJobSpec {
                        id: num("id").map(|v| v as u64),
                        name: args.get("name").cloned(),
                        model: req("model"),
                        dataset: req("dataset"),
                        dataset_size: num("dataset-size").map_or_else(|| usage(), |v| v as u64),
                        submit_batch: num("batch").map_or_else(|| usage(), |v| v as u32),
                        max_safe_batch: num("max-safe-batch").map(|v| v as u32),
                        requested_gpus: num("gpus").map_or_else(|| usage(), |v| v as u32),
                        arrival_secs: num("arrival"),
                        kill_after_secs: num("kill-after"),
                    };
                    wire.to_json()
                }
            };
            client.post("/v1/jobs", &body)
        }
        "jobs" => client.get("/v1/jobs"),
        "job" => {
            let Some(id) = positional.first() else {
                eprintln!("ones-ctl job: missing ID");
                usage();
            };
            client.get(&format!("/v1/jobs/{id}"))
        }
        "cluster" => client.get("/v1/cluster"),
        "events" => {
            let since = args.get("since").map_or("0", String::as_str);
            client.get(&format!("/v1/events?since={since}"))
        }
        "config" => {
            let mut fields = Vec::new();
            let mut push_num = |wire: &str, flag: &str| {
                if let Some(v) = args.get(flag) {
                    fields.push(format!("\"{wire}\": {v}"));
                }
            };
            push_num("generations_per_event", "generations");
            push_num("population", "population");
            push_num("mutation_rate", "mutation-rate");
            push_num("crossover_pairs", "crossover-pairs");
            push_num("pause", "pause");
            client.post("/v1/config", &format!("{{{}}}", fields.join(", ")))
        }
        "drain" => client.post("/v1/drain", "{}"),
        "obs" => {
            let mut fields = Vec::new();
            if let Some(level) = args.get("level") {
                fields.push(format!("\"level\": \"{level}\""));
            }
            let mut push_bool = |wire: &str, flag: &str| {
                if let Some(v) = args.get(flag) {
                    fields.push(format!("\"{wire}\": {v}"));
                }
            };
            push_bool("flush_trace", "flush-trace");
            push_bool("rotate_trace", "rotate-trace");
            push_bool("metrics_snapshot", "snapshot");
            if fields.is_empty() {
                client.get("/v1/obs")
            } else {
                client.post("/v1/obs", &format!("{{{}}}", fields.join(", ")))
            }
        }
        "metrics" => client.get("/metrics"),
        "health" => client.get("/healthz"),
        _ => usage(),
    };

    match result {
        Ok((status, body)) => {
            println!("{body}");
            if (200..300).contains(&status) {
                std::process::exit(0);
            }
            eprintln!("ones-ctl: HTTP {status}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("ones-ctl: {e}");
            std::process::exit(1);
        }
    }
}
