//! Typed wire structs for the `ones-d` HTTP API.
//!
//! Responses derive both serde traits (the daemon always emits every key,
//! so the shim derive's all-keys-present rule holds for clients too).
//! Requests that allow omitted keys ([`ConfigRequest`]) hand-write
//! `Deserialize`, following the [`ones_workload::WireJobSpec`] pattern.

use ones_schedcore::{JobStatus, SchedTuning};
use ones_simulator::{BackendEvent, BackendEventKind, BackendPhase, Occupancy};
use serde::{DeError, Deserialize, Serialize, Value};

/// A job as reported by `GET /v1/jobs` — submitted fields plus live
/// telemetry, never the hidden ground-truth convergence model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Model family display name.
    pub model: String,
    /// Dataset family display name.
    pub dataset: String,
    /// `queued` (submitted, arrival still in the future), `waiting`,
    /// `running`, `completed` or `killed`.
    pub phase: String,
    /// Arrival time, virtual seconds.
    pub arrival_secs: f64,
    /// First time the job held GPUs, if ever.
    pub first_start_secs: Option<f64>,
    /// Completion time, if finished.
    pub completion_secs: Option<f64>,
    /// Job completion time (completion − arrival), if finished.
    pub jct_secs: Option<f64>,
    /// Training epochs completed.
    pub epochs_done: u32,
    /// Current global batch size (0 when not running).
    pub batch: u32,
    /// Current GPU count (0 when not running).
    pub gpus: u32,
    /// User-submitted batch size.
    pub submit_batch: u32,
    /// User-requested GPU count.
    pub requested_gpus: u32,
    /// Cumulative execution wall time, seconds.
    pub exec_secs: f64,
}

impl JobView {
    /// Projects backend telemetry onto the wire. `now_secs` distinguishes
    /// queued (future-arrival) submissions from jobs already waiting.
    #[must_use]
    pub fn of(status: &JobStatus, now_secs: f64) -> Self {
        let phase = if status.is_completed() {
            if status.killed {
                "killed"
            } else {
                "completed"
            }
        } else if status.is_running() {
            "running"
        } else if status.spec.arrival_secs > now_secs {
            "queued"
        } else {
            "waiting"
        };
        JobView {
            id: status.spec.id.0,
            name: status.spec.name.clone(),
            model: status.spec.model.to_string(),
            dataset: status.spec.dataset.to_string(),
            phase: phase.to_string(),
            arrival_secs: status.spec.arrival_secs,
            first_start_secs: status.first_start.map(|t| t.as_secs()),
            completion_secs: status.completion.map(|t| t.as_secs()),
            jct_secs: status.jct(),
            epochs_done: status.epochs_done,
            batch: status.current_batch,
            gpus: status.current_gpus,
            submit_batch: status.spec.submit_batch,
            requested_gpus: status.spec.requested_gpus,
            exec_secs: status.exec_time,
        }
    }
}

/// `GET /v1/jobs` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobsResponse {
    /// All known jobs, in id order.
    pub jobs: Vec<JobView>,
}

/// `POST /v1/jobs` success body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitReply {
    /// Assigned (or echoed) job id.
    pub id: u64,
    /// Assigned (or echoed) display name.
    pub name: String,
    /// Effective arrival time after clamping, virtual seconds.
    pub arrival_secs: f64,
}

/// One entry of the `GET /v1/events` stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotonic sequence number (gap-free per daemon lifetime).
    pub seq: u64,
    /// Virtual time of the observation, seconds.
    pub vt_secs: f64,
    /// Job id concerned.
    pub job: u64,
    /// `arrived`, `started`, `resized`, `preempted`, `epoch_ended`,
    /// `completed`, `killed` or `rejected`.
    pub kind: String,
    /// Global batch size (on `started` / `resized`).
    pub batch: Option<u32>,
    /// GPU count (on `started` / `resized`).
    pub gpus: Option<u32>,
    /// Total epochs done (on `epoch_ended`).
    pub epochs_done: Option<u32>,
}

impl EventRecord {
    /// Stamps a backend event with its sequence number.
    #[must_use]
    pub fn of(seq: u64, event: &BackendEvent) -> Self {
        let (batch, gpus, epochs_done) = match event.kind {
            BackendEventKind::Started { batch, gpus }
            | BackendEventKind::Resized { batch, gpus } => (Some(batch), Some(gpus), None),
            BackendEventKind::EpochEnded { epochs_done } => (None, None, Some(epochs_done)),
            _ => (None, None, None),
        };
        EventRecord {
            seq,
            vt_secs: event.vt_secs,
            job: event.job.0,
            kind: event.kind.name().to_string(),
            batch,
            gpus,
            epochs_done,
        }
    }
}

/// `GET /v1/events` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventsResponse {
    /// Events with `seq >= since`, oldest first.
    pub events: Vec<EventRecord>,
    /// Pass this as the next `since` to continue the stream.
    pub next_seq: u64,
    /// Events evicted from the ring before `since` could read them.
    pub dropped: u64,
}

/// Per-node slice of `GET /v1/cluster`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeView {
    /// Node index.
    pub node: u32,
    /// GPUs currently assigned to jobs.
    pub busy_gpus: u32,
    /// GPUs on the node.
    pub total_gpus: u32,
}

/// `GET /v1/cluster` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResponse {
    /// Scheduler driving the cluster.
    pub scheduler: String,
    /// Current virtual time, seconds.
    pub now_secs: f64,
    /// `active`, `idle` or `capped`.
    pub phase: String,
    /// Whether the core loop is paused (submissions queue up).
    pub paused: bool,
    /// Whether the daemon refuses new submissions.
    pub draining: bool,
    /// Total GPUs.
    pub total_gpus: u32,
    /// GPUs currently assigned.
    pub busy_gpus: u32,
    /// Per-node occupancy.
    pub nodes: Vec<NodeView>,
    /// Jobs currently running.
    pub running_jobs: u32,
    /// Jobs waiting for GPUs.
    pub waiting_jobs: u32,
    /// Submitted jobs whose arrival is still in the future.
    pub queued_jobs: u32,
    /// Jobs ever submitted to this daemon.
    pub submitted: u64,
    /// Jobs that converged.
    pub completed: u64,
    /// Jobs that ended abnormally.
    pub killed: u64,
    /// Submissions refused with a recorded outcome (e.g. they raced a
    /// drain).
    pub rejected: u64,
    /// Next event sequence number (the event stream's write head).
    pub events_next_seq: u64,
}

/// Renders a backend phase on the wire.
#[must_use]
pub fn phase_name(phase: BackendPhase) -> &'static str {
    match phase {
        BackendPhase::Active => "active",
        BackendPhase::Idle => "idle",
        BackendPhase::Capped => "capped",
    }
}

/// Converts an occupancy snapshot into wire node views.
#[must_use]
pub fn node_views(occupancy: &Occupancy) -> Vec<NodeView> {
    occupancy
        .nodes
        .iter()
        .map(|n| NodeView {
            node: n.node,
            busy_gpus: n.busy_gpus,
            total_gpus: n.total_gpus,
        })
        .collect()
}

/// `POST /v1/config` body: live re-tuning of the evolutionary search plus
/// core-loop pause control. Every key is optional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ConfigRequest {
    /// Evolutionary-search generations per scheduling event.
    pub generations_per_event: Option<u32>,
    /// Evolutionary-search population size.
    pub population: Option<usize>,
    /// Per-gene mutation probability.
    pub mutation_rate: Option<f64>,
    /// Crossover pairs drawn per generation.
    pub crossover_pairs: Option<usize>,
    /// Pause (`true`) or resume (`false`) the core loop.
    pub pause: Option<bool>,
}

impl ConfigRequest {
    /// The scheduler-tuning slice of this request.
    #[must_use]
    pub fn tuning(&self) -> SchedTuning {
        SchedTuning {
            generations_per_event: self.generations_per_event,
            population: self.population,
            mutation_rate: self.mutation_rate,
            crossover_pairs: self.crossover_pairs,
        }
    }
}

/// Reads an optional field: absent and `null` both mean `None`.
fn opt_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<Option<T>, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        None | Some((_, Value::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(T::from_value(v)?)),
    }
}

impl Deserialize for ConfigRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(obj) = value else {
            return Err(DeError::custom(format!(
                "expected config object, got {}",
                value.kind()
            )));
        };
        Ok(ConfigRequest {
            generations_per_event: opt_field(obj, "generations_per_event")?,
            population: opt_field(obj, "population")?,
            mutation_rate: opt_field(obj, "mutation_rate")?,
            crossover_pairs: opt_field(obj, "crossover_pairs")?,
            pause: opt_field(obj, "pause")?,
        })
    }
}

/// `POST /v1/config` reply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigReply {
    /// Whether the scheduler accepted any tuning field.
    pub applied: bool,
    /// Core-loop pause state after the request.
    pub paused: bool,
}

/// `POST /v1/obs` body: live observability control. Every key is
/// optional; an empty object is a no-op that still returns the current
/// level.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ObsRequest {
    /// New observability level: `off`, `counters` or `full`.
    pub level: Option<String>,
    /// Flush buffered spans through the attached streaming trace sink.
    pub flush_trace: Option<bool>,
    /// Finalize the current trace file and continue streaming into a
    /// numbered sibling (`trace.json` → `trace.1.json`).
    pub rotate_trace: Option<bool>,
    /// Append a metrics snapshot to the streaming metrics sink now.
    pub metrics_snapshot: Option<bool>,
}

impl Deserialize for ObsRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(obj) = value else {
            return Err(DeError::custom(format!(
                "expected obs object, got {}",
                value.kind()
            )));
        };
        Ok(ObsRequest {
            level: opt_field(obj, "level")?,
            flush_trace: opt_field(obj, "flush_trace")?,
            rotate_trace: opt_field(obj, "rotate_trace")?,
            metrics_snapshot: opt_field(obj, "metrics_snapshot")?,
        })
    }
}

/// `POST /v1/obs` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReply {
    /// Observability level after the request.
    pub level: String,
    /// Whether buffered spans were flushed through an attached sink.
    pub flushed: bool,
    /// Path of the trace file sealed by a rotation, if one happened.
    pub rotated_to: Option<String>,
    /// Whether a metrics snapshot was appended.
    pub snapshotted: bool,
    /// Errors from individual actions (the rest still apply).
    pub errors: Vec<String>,
}

/// Streaming trace sink slice of `GET /v1/obs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSinkView {
    /// File currently being appended to.
    pub path: String,
    /// Buffered events per flushed chunk.
    pub chunk_events: u64,
    /// Events flushed to this sink since attach (across rotations).
    pub events_written: u64,
    /// Completed rotations.
    pub rotations: u64,
}

/// Streaming metrics sink slice of `GET /v1/obs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSinkView {
    /// JSONL file being appended to.
    pub path: String,
    /// Virtual-clock seconds between snapshots.
    pub interval_secs: f64,
    /// Histogram bucket budget per streamed line.
    pub max_buckets: u64,
    /// Snapshots written since attach.
    pub snapshots: u64,
}

/// `GET /v1/obs` body: the recorder's conservation accounting
/// (`written + buffered + dropped == recorded`) plus sink progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsStatusResponse {
    /// Current observability level.
    pub level: String,
    /// Spans ever recorded by this process.
    pub recorded_spans: u64,
    /// Spans dropped past the in-memory cap (no-sink configuration).
    pub dropped_spans: u64,
    /// Spans currently buffered in memory.
    pub buffered_spans: u64,
    /// Largest in-memory buffer length observed.
    pub buffer_high_water: u64,
    /// Spans flushed to streaming trace sinks.
    pub events_written: u64,
    /// The attached streaming trace sink, if any.
    pub trace_sink: Option<TraceSinkView>,
    /// The attached streaming metrics sink, if any.
    pub metrics_sink: Option<MetricsSinkView>,
}

/// Snapshot of the process-wide observability state.
#[must_use]
pub fn obs_status() -> ObsStatusResponse {
    let recorder = ones_obs::recorder_status();
    ObsStatusResponse {
        level: ones_obs::level().name().to_string(),
        recorded_spans: ones_obs::counter("obs.recorder.recorded_spans").value(),
        dropped_spans: ones_obs::counter("obs.recorder.dropped_spans").value(),
        buffered_spans: recorder.buffered as u64,
        buffer_high_water: recorder.high_water as u64,
        events_written: ones_obs::counter("obs.sink.events_written").value(),
        trace_sink: ones_obs::trace_sink_status().map(|s| TraceSinkView {
            path: s.path.display().to_string(),
            chunk_events: s.chunk_events as u64,
            events_written: s.events_written,
            rotations: u64::from(s.rotations),
        }),
        metrics_sink: ones_obs::metrics_sink_status().map(|s| MetricsSinkView {
            path: s.path.display().to_string(),
            interval_secs: s.interval_secs,
            max_buckets: s.max_buckets as u64,
            snapshots: s.snapshots,
        }),
    }
}

/// `POST /v1/drain` reply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainReply {
    /// Always true once acknowledged.
    pub draining: bool,
    /// Jobs not yet finished at acknowledgement time.
    pub outstanding: u64,
}

/// Error body for every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable description of the problem.
    pub error: String,
}

impl ErrorBody {
    /// Renders an error response body.
    ///
    /// Hand-rolled rather than going through `serde_json` so the error
    /// path is infallible: a request handler must never panic (the
    /// `unwrap-in-request-path` lint rule), least of all while reporting
    /// another failure.
    #[must_use]
    pub fn json(msg: impl Into<String>) -> String {
        let msg = msg.into();
        let mut out = String::with_capacity(msg.len() + 16);
        out.push_str("{\"error\":\"");
        for c in msg.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push_str("\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_simcore::SimTime;
    use ones_workload::JobId;

    #[test]
    fn config_request_tolerates_partial_bodies() {
        let req: ConfigRequest = serde_json::from_str(r#"{"population": 24}"#).unwrap();
        assert_eq!(req.population, Some(24));
        assert_eq!(req.pause, None);
        assert_eq!(req.tuning().population, Some(24));
        assert!(req.tuning().generations_per_event.is_none());

        let req: ConfigRequest = serde_json::from_str(r#"{"pause": true}"#).unwrap();
        assert!(req.tuning().is_empty());
        assert_eq!(req.pause, Some(true));

        let req: ConfigRequest = serde_json::from_str("{}").unwrap();
        assert_eq!(req, ConfigRequest::default());

        assert!(serde_json::from_str::<ConfigRequest>("[3]").is_err());
        assert!(serde_json::from_str::<ConfigRequest>(r#"{"population": "x"}"#).is_err());
    }

    #[test]
    fn obs_request_tolerates_partial_bodies() {
        let req: ObsRequest = serde_json::from_str(r#"{"level": "full"}"#).unwrap();
        assert_eq!(req.level.as_deref(), Some("full"));
        assert_eq!(req.flush_trace, None);
        assert_eq!(req.metrics_snapshot, None);

        let req: ObsRequest =
            serde_json::from_str(r#"{"rotate_trace": true, "level": null}"#).unwrap();
        assert_eq!(req.rotate_trace, Some(true));
        assert_eq!(req.level, None);

        let req: ObsRequest = serde_json::from_str("{}").unwrap();
        assert_eq!(req, ObsRequest::default());

        assert!(serde_json::from_str::<ObsRequest>("[]").is_err());
        assert!(serde_json::from_str::<ObsRequest>(r#"{"flush_trace": "yes"}"#).is_err());
    }

    #[test]
    fn event_record_carries_kind_specific_payloads() {
        let started = BackendEvent {
            vt_secs: 1.5,
            job: JobId(4),
            kind: BackendEventKind::Started {
                batch: 512,
                gpus: 2,
            },
        };
        let rec = EventRecord::of(9, &started);
        assert_eq!(rec.seq, 9);
        assert_eq!(rec.kind, "started");
        assert_eq!(rec.batch, Some(512));
        assert_eq!(rec.gpus, Some(2));
        assert_eq!(rec.epochs_done, None);

        let epoch = BackendEvent {
            vt_secs: 2.0,
            job: JobId(4),
            kind: BackendEventKind::EpochEnded { epochs_done: 3 },
        };
        let rec = EventRecord::of(10, &epoch);
        assert_eq!(rec.kind, "epoch_ended");
        assert_eq!(rec.epochs_done, Some(3));
        assert_eq!(rec.batch, None);

        // Wire round trip through the derive pair.
        let json = serde_json::to_string(&rec).unwrap();
        let back: EventRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn job_view_distinguishes_queued_from_waiting() {
        let trace = ones_workload::Trace::generate(ones_workload::TraceConfig {
            num_jobs: 1,
            arrival_rate: 0.1,
            seed: 3,
            kill_fraction: 0.0,
        });
        let mut status = JobStatus::submitted(trace.jobs[0].clone(), SimTime::ZERO);
        status.spec.arrival_secs = 50.0;
        assert_eq!(JobView::of(&status, 0.0).phase, "queued");
        assert_eq!(JobView::of(&status, 50.0).phase, "waiting");
        status.phase = ones_schedcore::JobPhase::Completed;
        status.killed = true;
        assert_eq!(JobView::of(&status, 60.0).phase, "killed");
    }
}
