//! Minimal HTTP/1.1 framing over std TCP — no external dependencies.
//!
//! Implements exactly what the daemon's JSON API needs: request-line +
//! header parsing with hard size limits, `Content-Length`-framed bodies,
//! keep-alive by default, and the matching client-side response reader.
//! No chunked encoding, no TLS, no pipelining — a deliberate subset, the
//! same trade real schedulers make for their loopback control planes.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request or response body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty if no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.1 (keep-alive by default).
    pub http11: bool,
}

impl Request {
    /// First header with this (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this exchange.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => !self.http11,
        }
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    /// Fails if the body is not valid UTF-8.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// A socket error (includes read timeouts, surfaced for the caller to
    /// decide whether to keep waiting).
    Io(io::Error),
    /// The bytes were not a well-formed request within the limits.
    Malformed(String),
}

fn bad(msg: impl Into<String>) -> ReadError {
    ReadError::Malformed(msg.into())
}

fn read_crlf_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(bad("connection closed mid-line"));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(bad("request head too large"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line).map_err(|_| bad("non-UTF-8 request head"));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Reads one request off the stream (blocking until one arrives).
///
/// # Errors
/// [`ReadError::Closed`] on clean EOF before the first byte,
/// [`ReadError::Io`] on socket errors/timeouts, [`ReadError::Malformed`]
/// when the peer speaks something that is not HTTP within the limits.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_crlf_line(reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(format!("bad request line {request_line:?}")));
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(bad(format!("unsupported version {other:?}"))),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| bad("bad content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad(format!("body of {content_length} bytes exceeds limit")));
    }
    if content_length > 0 {
        body.resize(content_length, 0);
        reader.read_exact(&mut body).map_err(ReadError::Io)?;
    }

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
        http11,
    })
}

/// Standard reason phrase for the status codes the daemon emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (Prometheus exposition, health checks).
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Serialises the response, tagging the connection disposition. Head
    /// and body go out in a single write so Nagle's algorithm never holds
    /// a partial response hostage to the peer's delayed ACK.
    ///
    /// # Errors
    /// Propagates socket write errors.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        let mut wire = Vec::with_capacity(head.len() + self.body.len());
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(&self.body);
        writer.write_all(&wire)?;
        writer.flush()
    }
}

/// Reads one response off a client stream: `(status, body)`.
///
/// # Errors
/// Fails on socket errors or malformed framing.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<(u16, Vec<u8>), String> {
    let as_msg = |e: ReadError| match e {
        ReadError::Closed => "server closed the connection".to_string(),
        ReadError::Io(e) => format!("socket error: {e}"),
        ReadError::Malformed(m) => m,
    };
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_crlf_line(reader, &mut budget).map_err(as_msg)?;
    let mut parts = status_line.split(' ');
    let (Some(_version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(format!("bad status line {status_line:?}"));
    };
    let status: u16 = code
        .parse()
        .map_err(|_| format!("bad status code {code:?}"))?;
    let mut content_length = 0usize;
    loop {
        let line = read_crlf_line(reader, &mut budget).map_err(as_msg)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("response body of {content_length} bytes too large"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_full_request() {
        let raw = "POST /v1/jobs?since=7&dry HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(raw)).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query_param("since"), Some("7"));
        assert_eq!(req.query_param("dry"), Some(""));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "abcd");
        assert!(req.http11);
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_close_and_http10_end_the_exchange() {
        let raw = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(read_request(&mut Cursor::new(raw)).unwrap().wants_close());
        let raw = "GET / HTTP/1.0\r\n\r\n";
        assert!(read_request(&mut Cursor::new(raw)).unwrap().wants_close());
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_close() {
        match read_request(&mut Cursor::new("")) {
            Err(ReadError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_oversized_heads() {
        assert!(matches!(
            read_request(&mut Cursor::new("nonsense\r\n\r\n")),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read_request(&mut Cursor::new("GET / SPDY/3\r\n\r\n")),
            Err(ReadError::Malformed(_))
        ));
        let huge = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            read_request(&mut Cursor::new(huge)),
            Err(ReadError::Malformed(_))
        ));
        let fat = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            read_request(&mut Cursor::new(fat)),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let resp = Response::json(201, "{\"id\":3}".to_string());
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let (status, body) = read_response(&mut Cursor::new(wire)).expect("parses");
        assert_eq!(status, 201);
        assert_eq!(body, b"{\"id\":3}");
    }
}
