//! The HTTP front end: accept loop, routing, graceful shutdown.
//!
//! Thread-per-connection with keep-alive; the accept loop polls a
//! non-blocking listener so a shutdown flag can stop it promptly.
//! Graceful shutdown stops accepting, waits for in-flight *requests*
//! (idle keep-alive connections are abandoned — their handler threads
//! exit on peer close), then stops the scheduler core with one final
//! state publish.

use crate::api::{
    ConfigReply, ConfigRequest, DrainReply, ErrorBody, JobsResponse, ObsReply, ObsRequest,
    SubmitReply,
};
use crate::core::{run_core, CoreMsg, CoreOptions};
use crate::http::{read_request, ReadError, Response};
use crate::state::{read_state, shared, SharedState};
use ones_simulator::ClusterBackend;
use ones_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use ones_sync::mpsc::{self, Receiver, SyncSender};
use ones_sync::Arc;
use ones_workload::WireJobSpec;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon is served.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Start with the core loop paused.
    pub paused: bool,
    /// Start draining (recovery from a drained snapshot).
    pub draining: bool,
    /// Host-time sleep between step batches.
    pub step_delay: Duration,
    /// Scheduling events advanced per core batch.
    pub events_per_batch: u64,
    /// Recovery snapshot file; `None` disables persistence.
    pub state_file: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 0,
            paused: false,
            draining: false,
            step_delay: Duration::ZERO,
            events_per_batch: 64,
            state_file: None,
        }
    }
}

/// A running daemon (accept loop + scheduler core).
pub struct ServerHandle {
    addr: SocketAddr,
    state: SharedState,
    core_tx: mpsc::Sender<CoreMsg>,
    shutdown: Arc<AtomicBool>,
    in_flight: Arc<AtomicUsize>,
    accept_join: Option<JoinHandle<()>>,
    core_join: Option<JoinHandle<Box<dyn ClusterBackend>>>,
}

impl ServerHandle {
    /// Address the daemon is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for in-process observers and tests).
    #[must_use]
    pub fn state(&self) -> SharedState {
        Arc::clone(&self.state)
    }

    /// Asks the accept loop to stop without waiting.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (bounded wait), stop the core. Returns the backend for final
    /// accounting, if the core exited cleanly.
    pub fn shutdown_and_wait(mut self) -> Option<Box<dyn ClusterBackend>> {
        self.request_shutdown();
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let _ = self.core_tx.send(CoreMsg::Stop);
        self.core_join.take().and_then(|join| join.join().ok())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        let _ = self.core_tx.send(CoreMsg::Stop);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        if let Some(join) = self.core_join.take() {
            let _ = join.join();
        }
    }
}

/// Boots the daemon: binds 127.0.0.1, spawns the scheduler core and the
/// accept loop, returns immediately.
///
/// # Errors
/// Propagates socket bind errors.
pub fn serve(
    backend: Box<dyn ClusterBackend>,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let state = shared(backend.scheduler_name(), backend.occupancy(), opts.paused);
    let (core_tx, core_rx) = mpsc::channel::<CoreMsg>();
    let core_opts = CoreOptions {
        paused: opts.paused,
        draining: opts.draining,
        step_delay: opts.step_delay,
        events_per_batch: opts.events_per_batch.max(1),
        state_file: opts.state_file.clone(),
    };
    let core_state = Arc::clone(&state);
    let core_join = std::thread::Builder::new()
        .name("ones-d-core".into())
        .spawn(move || run_core(backend, core_state, &core_rx, core_opts))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicUsize::new(0));
    let accept_state = Arc::clone(&state);
    let accept_tx = core_tx.clone();
    let accept_flag = Arc::clone(&shutdown);
    let accept_load = Arc::clone(&in_flight);
    let accept_join = std::thread::Builder::new()
        .name("ones-d-accept".into())
        .spawn(move || {
            accept_loop(
                &listener,
                &accept_state,
                &accept_tx,
                &accept_flag,
                &accept_load,
            );
        })?;

    Ok(ServerHandle {
        addr,
        state,
        core_tx,
        shutdown,
        in_flight,
        accept_join: Some(accept_join),
        core_join: Some(core_join),
    })
}

fn accept_loop(
    listener: &TcpListener,
    state: &SharedState,
    core_tx: &mpsc::Sender<CoreMsg>,
    shutdown: &Arc<AtomicBool>,
    in_flight: &Arc<AtomicUsize>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                let core_tx = core_tx.clone();
                let shutdown = Arc::clone(shutdown);
                let in_flight = Arc::clone(in_flight);
                // Handler threads are detached: they exit on peer close,
                // request error or shutdown.
                let _ = std::thread::Builder::new()
                    .name("ones-d-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &state, &core_tx, &shutdown, &in_flight);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &SharedState,
    core_tx: &mpsc::Sender<CoreMsg>,
    shutdown: &Arc<AtomicBool>,
    in_flight: &Arc<AtomicUsize>,
) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Small JSON exchanges: never trade latency for coalescing.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                let resp = Response::json(400, ErrorBody::json(msg));
                let _ = resp.write_to(&mut writer, false);
                return;
            }
        };
        in_flight.fetch_add(1, Ordering::SeqCst);
        let response = route(&request, state, core_tx);
        let closing = request.wants_close() || shutdown.load(Ordering::SeqCst);
        let wrote = response.write_to(&mut writer, !closing);
        in_flight.fetch_sub(1, Ordering::SeqCst);
        if wrote.is_err() || closing {
            return;
        }
    }
}

/// How long a handler waits for the core to answer a submission/config.
const CORE_REPLY_TIMEOUT: Duration = Duration::from_secs(10);

fn recv_reply<T>(rx: &Receiver<T>) -> Result<T, Response> {
    rx.recv_timeout(CORE_REPLY_TIMEOUT).map_err(|_| {
        Response::json(
            503,
            ErrorBody::json("scheduler core did not answer in time"),
        )
    })
}

fn reply_channel<T>() -> (SyncSender<T>, Receiver<T>) {
    mpsc::sync_channel(1)
}

fn json_ok<T: serde::Serialize>(status: u16, body: &T) -> Response {
    match serde_json::to_string(body) {
        Ok(text) => Response::json(status, text),
        Err(e) => Response::json(500, ErrorBody::json(format!("serialisation failed: {e}"))),
    }
}

/// Routes one request to a response. Pure apart from core round trips —
/// unit-testable without sockets.
pub fn route(
    req: &crate::http::Request,
    state: &SharedState,
    core_tx: &mpsc::Sender<CoreMsg>,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n".to_string()),
        ("GET", "/metrics") => Response::text(200, ones_obs::prometheus_text()),
        ("GET", "/v1/jobs") => {
            let st = read_state(state);
            let jobs = st.jobs.values().cloned().collect();
            json_ok(200, &JobsResponse { jobs })
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let tail = &path["/v1/jobs/".len()..];
            let Ok(id) = tail.parse::<u64>() else {
                return Response::json(400, ErrorBody::json(format!("bad job id {tail:?}")));
            };
            let st = read_state(state);
            match st.jobs.get(&id) {
                Some(job) => json_ok(200, job),
                None => Response::json(404, ErrorBody::json(format!("no job {id}"))),
            }
        }
        ("POST", "/v1/jobs") => {
            // No drain fast path here: the core thread is the single
            // authority on draining, so a submit racing a drain is
            // rejected *by the core* with a recorded `rejected` event —
            // a handler-side check would answer 409 without leaving a
            // trace in the event stream.
            let body = match req.body_str() {
                Ok(b) => b,
                Err(e) => return Response::json(400, ErrorBody::json(e)),
            };
            let wire = match WireJobSpec::from_json(body) {
                Ok(w) => w,
                Err(e) => return Response::json(400, ErrorBody::json(e)),
            };
            let (tx, rx) = reply_channel::<Result<SubmitReply, String>>();
            if core_tx.send(CoreMsg::Submit { wire, reply: tx }).is_err() {
                return Response::json(503, ErrorBody::json("scheduler core stopped"));
            }
            match recv_reply(&rx) {
                Ok(Ok(reply)) => json_ok(201, &reply),
                Ok(Err(e)) => {
                    let status = if e.contains("draining") { 409 } else { 400 };
                    Response::json(status, ErrorBody::json(e))
                }
                Err(resp) => resp,
            }
        }
        ("GET", "/v1/cluster") => {
            let st = read_state(state);
            json_ok(200, &st.cluster_response())
        }
        ("GET", "/v1/events") => {
            let since = match req.query_param("since") {
                None => 0,
                Some(raw) => match raw.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        return Response::json(
                            400,
                            ErrorBody::json(format!("bad since cursor {raw:?}")),
                        )
                    }
                },
            };
            let st = read_state(state);
            json_ok(200, &st.events.since(since))
        }
        ("POST", "/v1/config") => {
            let body = match req.body_str() {
                Ok(b) => b,
                Err(e) => return Response::json(400, ErrorBody::json(e)),
            };
            let parsed: Result<ConfigRequest, _> = serde_json::from_str(body);
            let config = match parsed {
                Ok(c) => c,
                Err(e) => return Response::json(400, ErrorBody::json(e.to_string())),
            };
            let (tx, rx) = reply_channel::<ConfigReply>();
            if core_tx
                .send(CoreMsg::Config {
                    req: config,
                    reply: tx,
                })
                .is_err()
            {
                return Response::json(503, ErrorBody::json("scheduler core stopped"));
            }
            match recv_reply(&rx) {
                Ok(reply) => json_ok(200, &reply),
                Err(resp) => resp,
            }
        }
        ("GET", "/v1/obs") => json_ok(200, &crate::api::obs_status()),
        ("POST", "/v1/obs") => {
            let body = match req.body_str() {
                Ok(b) => b,
                Err(e) => return Response::json(400, ErrorBody::json(e)),
            };
            let parsed: Result<ObsRequest, _> = serde_json::from_str(body);
            let obs_req = match parsed {
                Ok(r) => r,
                Err(e) => return Response::json(400, ErrorBody::json(e.to_string())),
            };
            // Reject a bad level before bothering the core: a typo must
            // 400, not half-apply.
            if let Some(level) = &obs_req.level {
                if ones_obs::ObsLevel::parse(level).is_none() {
                    return Response::json(
                        400,
                        ErrorBody::json(format!("unknown obs level {level:?} (off|counters|full)")),
                    );
                }
            }
            let (tx, rx) = reply_channel::<ObsReply>();
            if core_tx
                .send(CoreMsg::Obs {
                    req: obs_req,
                    reply: tx,
                })
                .is_err()
            {
                return Response::json(503, ErrorBody::json("scheduler core stopped"));
            }
            match recv_reply(&rx) {
                Ok(reply) => json_ok(200, &reply),
                Err(resp) => resp,
            }
        }
        ("POST", "/v1/drain") => {
            let (tx, rx) = reply_channel::<u64>();
            if core_tx.send(CoreMsg::Drain { reply: tx }).is_err() {
                return Response::json(503, ErrorBody::json("scheduler core stopped"));
            }
            match recv_reply(&rx) {
                Ok(outstanding) => json_ok(
                    200,
                    &DrainReply {
                        draining: true,
                        outstanding,
                    },
                ),
                Err(resp) => resp,
            }
        }
        ("GET" | "POST", _) => {
            Response::json(404, ErrorBody::json(format!("no route {}", req.path)))
        }
        _ => Response::json(
            405,
            ErrorBody::json(format!("method {} not allowed", req.method)),
        ),
    }
}
