//! Shared service state: what concurrent HTTP readers see.
//!
//! The scheduler core thread is the only writer; handler threads take the
//! read side of one `RwLock` per request. State is republished as a whole
//! after every step batch, so readers always observe a consistent
//! snapshot (jobs, occupancy and virtual time from the same instant).

use crate::api::{node_views, phase_name, ClusterResponse, EventRecord, EventsResponse, JobView};
use ones_simulator::{BackendEvent, BackendPhase, Occupancy};
use ones_sync::{Arc, RwLock};
use std::collections::{BTreeMap, VecDeque};

/// Default capacity of the event ring (old events are evicted FIFO; the
/// sequence numbers of evicted events remain burned).
pub const DEFAULT_EVENT_CAP: usize = 65_536;

/// Monotonic, sequence-numbered ring of scheduling events.
#[derive(Debug)]
pub struct EventLog {
    next_seq: u64,
    cap: usize,
    items: VecDeque<EventRecord>,
}

impl EventLog {
    /// An empty log holding at most `cap` events.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        EventLog {
            next_seq: 0,
            cap: cap.max(1),
            items: VecDeque::new(),
        }
    }

    /// Appends one event, assigning and returning its sequence number.
    pub fn push(&mut self, event: &BackendEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.items.len() == self.cap {
            self.items.pop_front();
        }
        self.items.push_back(EventRecord::of(seq, event));
        seq
    }

    /// The sequence number the next event will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Oldest sequence number still held.
    #[must_use]
    pub fn first_seq(&self) -> u64 {
        self.items.front().map_or(self.next_seq, |e| e.seq)
    }

    /// Events with `seq >= since`, plus the cursor to resume from and how
    /// many requested events were already evicted.
    #[must_use]
    pub fn since(&self, since: u64) -> EventsResponse {
        let first = self.first_seq();
        let dropped = first.saturating_sub(since);
        let events: Vec<EventRecord> = self
            .items
            .iter()
            .filter(|e| e.seq >= since)
            .cloned()
            .collect();
        EventsResponse {
            events,
            next_seq: self.next_seq,
            dropped,
        }
    }
}

/// The whole service view, republished by the core thread.
#[derive(Debug)]
pub struct ServiceState {
    /// Scheduler name, for display.
    pub scheduler: String,
    /// Current virtual time, seconds.
    pub now_secs: f64,
    /// Backend phase after the last step batch.
    pub phase: BackendPhase,
    /// Whether the core loop is paused.
    pub paused: bool,
    /// Whether the daemon refuses new submissions.
    pub draining: bool,
    /// Every known job keyed by id (projected views, not raw statuses).
    pub jobs: BTreeMap<u64, JobView>,
    /// Cluster occupancy at `now_secs`.
    pub occupancy: Occupancy,
    /// The event stream.
    pub events: EventLog,
    /// Jobs ever submitted (preloaded trace + API).
    pub submitted: u64,
    /// Jobs that converged.
    pub completed: u64,
    /// Jobs that ended abnormally.
    pub killed: u64,
    /// Submissions refused with a recorded outcome (drain races).
    pub rejected: u64,
}

impl ServiceState {
    /// Initial state before the core thread's first publish.
    #[must_use]
    pub fn new(scheduler: String, occupancy: Occupancy, paused: bool) -> Self {
        ServiceState {
            scheduler,
            now_secs: 0.0,
            phase: BackendPhase::Idle,
            paused,
            draining: false,
            jobs: BTreeMap::new(),
            occupancy,
            events: EventLog::new(DEFAULT_EVENT_CAP),
            submitted: 0,
            completed: 0,
            killed: 0,
            rejected: 0,
        }
    }

    /// Renders the `GET /v1/cluster` body.
    #[must_use]
    pub fn cluster_response(&self) -> ClusterResponse {
        ClusterResponse {
            scheduler: self.scheduler.clone(),
            now_secs: self.now_secs,
            phase: phase_name(self.phase).to_string(),
            paused: self.paused,
            draining: self.draining,
            total_gpus: self.occupancy.total_gpus,
            busy_gpus: self.occupancy.busy_gpus,
            nodes: node_views(&self.occupancy),
            running_jobs: self.occupancy.running_jobs,
            waiting_jobs: self.occupancy.waiting_jobs,
            queued_jobs: self.occupancy.queued_jobs,
            submitted: self.submitted,
            completed: self.completed,
            killed: self.killed,
            rejected: self.rejected,
            events_next_seq: self.events.next_seq(),
        }
    }

    /// Jobs not yet finished (queued + waiting + running).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.jobs
            .values()
            .filter(|j| j.phase != "completed" && j.phase != "killed")
            .count() as u64
    }
}

/// Handle shared between the core thread and HTTP handlers.
pub type SharedState = Arc<RwLock<ServiceState>>;

/// Builds a fresh shared state.
#[must_use]
pub fn shared(scheduler: String, occupancy: Occupancy, paused: bool) -> SharedState {
    Arc::new(RwLock::new(ServiceState::new(scheduler, occupancy, paused)))
}

/// Read lock that recovers from poisoning: a panicked holder must not
/// take the whole daemon down — the state is republished wholesale after
/// every step batch, so the worst a poisoned snapshot can be is stale.
#[must_use]
pub fn read_state(state: &SharedState) -> ones_sync::RwLockReadGuard<'_, ServiceState> {
    state
        .read()
        .unwrap_or_else(ones_sync::PoisonError::into_inner)
}

/// Write lock with the same poison recovery as [`read_state`]: the core
/// thread is the only writer, and its next publish overwrites whatever a
/// poisoned writer left half-done.
#[must_use]
pub fn write_state(state: &SharedState) -> ones_sync::RwLockWriteGuard<'_, ServiceState> {
    state
        .write()
        .unwrap_or_else(ones_sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_simulator::BackendEventKind;
    use ones_workload::JobId;

    fn ev(job: u64) -> BackendEvent {
        BackendEvent {
            vt_secs: job as f64,
            job: JobId(job),
            kind: BackendEventKind::Arrived,
        }
    }

    #[test]
    fn event_log_assigns_monotonic_gapless_sequence_numbers() {
        let mut log = EventLog::new(100);
        for i in 0..10 {
            assert_eq!(log.push(&ev(i)), i);
        }
        let all = log.since(0);
        assert_eq!(all.events.len(), 10);
        assert_eq!(all.next_seq, 10);
        assert_eq!(all.dropped, 0);
        let tail = log.since(7);
        assert_eq!(tail.events.len(), 3);
        assert_eq!(tail.events[0].seq, 7);
        // A cursor at the write head returns nothing and stays put.
        let empty = log.since(10);
        assert!(empty.events.is_empty());
        assert_eq!(empty.next_seq, 10);
    }

    #[test]
    fn event_log_eviction_is_reported_as_dropped() {
        let mut log = EventLog::new(4);
        for i in 0..10 {
            log.push(&ev(i));
        }
        assert_eq!(log.first_seq(), 6);
        let resp = log.since(0);
        assert_eq!(resp.events.len(), 4);
        assert_eq!(resp.dropped, 6);
        assert_eq!(resp.events[0].seq, 6);
        // Resuming from a live cursor drops nothing.
        assert_eq!(log.since(8).dropped, 0);
    }
}
