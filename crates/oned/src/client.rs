//! A tiny blocking HTTP/1.1 client for the daemon's loopback API.
//!
//! Keep-alive with transparent one-shot reconnect: a request that fails
//! on a previously-good connection (the server timed it out, or a
//! keep-alive race) is retried once on a fresh socket. Used by
//! `ones-ctl`, the integration tests and the service bench.

use crate::http::read_response;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A keep-alive connection to one daemon.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Resolves the address and prepares a (lazily-connected) client.
    ///
    /// # Errors
    /// Fails if the address does not resolve.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address did not resolve")
        })?;
        Ok(Client { addr, conn: None })
    }

    fn stream(&mut self) -> Result<&mut BufReader<TcpStream>, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .map_err(|e| e.to_string())?;
            stream.set_nodelay(true).map_err(|e| e.to_string())?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn send_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let addr = self.addr;
        let reader = self.stream()?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            payload.len()
        );
        let mut wire = Vec::with_capacity(head.len() + payload.len());
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(payload.as_bytes());
        reader
            .get_mut()
            .write_all(&wire)
            .map_err(|e| format!("send: {e}"))?;
        let (status, bytes) = read_response(reader)?;
        let text = String::from_utf8(bytes).map_err(|e| format!("non-UTF-8 body: {e}"))?;
        Ok((status, text))
    }

    /// Issues one request, returning `(status, body)`. Retries once on a
    /// fresh connection if a reused one failed.
    ///
    /// # Errors
    /// Fails when the daemon is unreachable or speaks malformed HTTP.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let reused = self.conn.is_some();
        match self.send_once(method, path, body) {
            Ok(ok) => Ok(ok),
            Err(first) => {
                self.conn = None;
                if reused {
                    self.send_once(method, path, body)
                } else {
                    Err(first)
                }
            }
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> Result<(u16, String), String> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn post(&mut self, path: &str, body: &str) -> Result<(u16, String), String> {
        self.request("POST", path, Some(body))
    }

    /// `GET path`, requiring a 2xx JSON body, parsed.
    ///
    /// # Errors
    /// Fails on transport errors, non-2xx statuses or non-JSON bodies.
    pub fn get_json(&mut self, path: &str) -> Result<serde_json::Value, String> {
        let (status, body) = self.get(path)?;
        if !(200..300).contains(&status) {
            return Err(format!("GET {path} -> {status}: {body}"));
        }
        serde_json::from_str(&body).map_err(|e| format!("GET {path}: bad JSON: {e}"))
    }
}
