//! Crash-safe persistence of the daemon's scheduling state (DESIGN.md
//! §10).
//!
//! The core thread snapshots after every step batch and control message,
//! writing atomically (tmp file + rename) so a SIGKILL leaves either the
//! previous or the new snapshot on disk, never a torn one. The snapshot
//! is a *recovery log*, not a memory image: it records every submitted
//! job spec (trace preload and live API submissions alike, each with its
//! effective arrival time) plus the reconciler's view of the deployed
//! schedule and in-flight scaling operations. Because stepping is
//! deterministic for a fixed job log and seed, recovery replays the log
//! through an identically-configured backend and reaches the same
//! fixpoint the interrupted run was heading for — the property pinned by
//! `tests/crash_recovery.rs`.

use ones_schedcore::Reconciler;
use ones_simulator::ClusterBackend;
use ones_workload::JobSpec;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Everything `ones-d` needs to resume scheduling after a crash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistedState {
    /// Scheduler name, for a recovery sanity check.
    pub scheduler: String,
    /// Cluster size, for a recovery sanity check.
    pub total_gpus: u32,
    /// Whether the daemon was draining when the snapshot was taken.
    pub draining: bool,
    /// Virtual time of the snapshot (diagnostic; replay restarts at 0).
    pub now_secs: f64,
    /// Every submitted job spec in id order, arrival times effective.
    pub jobs: Vec<JobSpec>,
    /// Deployed schedule + in-flight scaling operations at the snapshot.
    pub reconcile: Option<Reconciler>,
}

impl PersistedState {
    /// Captures the backend's current job log and reconcile state.
    #[must_use]
    pub fn snapshot(backend: &dyn ClusterBackend, draining: bool) -> Self {
        // `job_statuses` is keyed by id in a BTreeMap, so the log comes
        // out in id order — the same order a dense trace preload uses.
        let jobs = backend
            .job_statuses()
            .into_values()
            .map(|status| status.spec)
            .collect();
        PersistedState {
            scheduler: backend.scheduler_name(),
            total_gpus: backend.occupancy().total_gpus,
            draining,
            now_secs: backend.now_secs(),
            jobs,
            reconcile: backend.reconcile_state(),
        }
    }
}

/// Writes a snapshot atomically: serialise to `<path>.tmp`, fsync, then
/// rename over `path`. A reader (or a restart) sees the old snapshot or
/// the new one, never a partial write.
///
/// # Errors
/// Propagates filesystem errors; serialisation failure is reported as
/// `InvalidData`.
pub fn save(path: &Path, state: &PersistedState) -> std::io::Result<()> {
    let json = serde_json::to_string(state)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a snapshot back.
///
/// # Errors
/// Returns a human-readable message on IO or parse failure; callers
/// treat an unreadable state file as "no recovery", not a crash.
pub fn load(path: &Path) -> Result<PersistedState, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read state file {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse state file {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};
    use ones_workload::JobId;

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("job{id}"),
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            dataset_size: 20_000,
            submit_batch: 256,
            max_safe_batch: 4096,
            requested_gpus: 2,
            arrival_secs: id as f64 * 30.0,
            kill_after_secs: None,
            convergence: ConvergenceModel::example(),
        }
    }

    fn state() -> PersistedState {
        let mut reconcile = Reconciler::new(8);
        let mut desired = ones_schedcore::Schedule::empty(8);
        desired.assign(ones_cluster::GpuId(0), JobId(0), 128);
        desired.assign(ones_cluster::GpuId(1), JobId(0), 128);
        reconcile.reconcile(&desired);
        PersistedState {
            scheduler: "ones".to_string(),
            total_gpus: 8,
            draining: true,
            now_secs: 123.5,
            jobs: vec![spec(0), spec(1)],
            reconcile: Some(reconcile),
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ones-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.json");
        let original = state();
        save(&path, &original).expect("save");
        let recovered = load(&path).expect("load");
        assert_eq!(recovered.scheduler, original.scheduler);
        assert_eq!(recovered.total_gpus, original.total_gpus);
        assert_eq!(recovered.draining, original.draining);
        assert_eq!(recovered.jobs, original.jobs);
        assert_eq!(recovered.reconcile, original.reconcile);
        // No tmp file left behind.
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_previous_snapshot_atomically() {
        let dir = std::env::temp_dir().join(format!("ones-persist2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.json");
        let mut snap = state();
        save(&path, &snap).expect("first save");
        snap.now_secs = 999.0;
        snap.jobs.push(spec(2));
        save(&path, &snap).expect("second save");
        let recovered = load(&path).expect("load");
        assert_eq!(recovered.jobs.len(), 3);
        assert!((recovered.now_secs - 999.0).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_reports_missing_and_malformed_files() {
        let missing = Path::new("/nonexistent/ones-d-state.json");
        assert!(load(missing).is_err());
        let dir = std::env::temp_dir().join(format!("ones-persist3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").expect("write");
        assert!(load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
