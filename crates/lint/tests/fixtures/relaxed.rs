// Fixture: an unjustified Ordering::Relaxed (violation) followed by a
// justified one (clean). Checked as text by the rules test.

fn touch(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    // relaxed: diagnostic counter, readers tolerate staleness
    c.load(Ordering::Relaxed);
}
