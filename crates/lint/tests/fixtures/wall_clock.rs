// Fixture: three `wall-clock-in-det` violations in production code; the
// #[cfg(test)] module at the bottom is exempt.
fn decide() {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let mut rng = thread_rng();
    let _ = (t0, wall, rng.gen::<u64>());
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let _t = Instant::now();
    }
}
