// Fixture: two `unwrap-in-request-path` violations (an .unwrap() and an
// .expect()) plus exempt test code and clean alternatives.
fn handle(req: Request) -> Response {
    let st = state.read().unwrap();
    let body = req.body_str().expect("body");
    let ok = state.read().unwrap_or_else(PoisonError::into_inner); // clean
    respond(st, body, ok)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        route(&req()).body_str().unwrap();
    }
}
