// Fixture: violates `std-sync` twice (use-import and inline path) and is
// otherwise clean. Checked as text by the rules test, never compiled.
use std::sync::Mutex;

fn takes_a_lock() {
    let m: std::sync::MutexGuard<'_, u32> = GLOBAL.lock().unwrap();
    drop(m);
}

// A string mentioning std::sync::Mutex must NOT count.
const DOC: &str = "prefer std::sync::Mutex";
