// Fixture: violates `float-partial-cmp` once; total_cmp is clean and a
// comment mention of partial_cmp must not count.
fn rank(mut xs: Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| a.total_cmp(b)); // clean
}
