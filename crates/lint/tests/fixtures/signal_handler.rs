// Fixture: a registered signal handler that allocates and prints — two
// `signal-handler-safety` violations (`println` and `format`). The
// second handler only flips an atomic and is clean.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn bad_handler(_signum: i32) {
    println!("caught {}", format!("{_signum}"));
}

extern "C" fn good_handler(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, bad_handler);
        signal(SIGINT, good_handler);
    }
}
