//! Fixture tests — every rule fires on its fixture with the expected
//! count and lines — plus the self-check: the linter must run clean on
//! this repository (same invocation as the CI gate).

use ones_lint::lexer::lex;
use ones_lint::rules::{check_file, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `as_path` in the repo.
fn lint_fixture(name: &str, as_path: &str) -> Vec<Finding> {
    check_file(as_path, &lex(&fixture(name)))
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn std_sync_fires_on_imports_and_paths_but_not_strings() {
    let f = lint_fixture("std_sync.rs", "crates/evo/src/cache.rs");
    assert_eq!(rules_of(&f), ["std-sync", "std-sync"], "{f:?}");
    assert_eq!([f[0].line, f[1].line], [3, 6]);

    // The same file inside the facade crate is allowed.
    assert!(lint_fixture("std_sync.rs", "crates/sync/src/lib.rs").is_empty());
}

#[test]
fn float_partial_cmp_fires_once_in_selection_crates() {
    let f = lint_fixture("partial_cmp.rs", "crates/evo/src/scoring.rs");
    assert_eq!(rules_of(&f), ["float-partial-cmp"], "{f:?}");
    assert_eq!(f[0].line, 4);

    // Outside the selection crates the rule is silent.
    assert!(lint_fixture("partial_cmp.rs", "crates/workload/src/trace.rs").is_empty());
}

#[test]
fn relaxed_ordering_requires_a_justification_comment() {
    let f = lint_fixture("relaxed.rs", "crates/obs/src/metrics.rs");
    assert_eq!(rules_of(&f), ["relaxed-ordering"], "{f:?}");
    assert_eq!(f[0].line, 5, "only the unjustified site fires");
}

#[test]
fn wall_clock_fires_in_deterministic_crates_outside_tests() {
    let f = lint_fixture("wall_clock.rs", "crates/schedcore/src/policy.rs");
    assert_eq!(
        rules_of(&f),
        ["wall-clock-in-det"; 3],
        "Instant::now, SystemTime::now, thread_rng: {f:?}"
    );
    assert!(
        f.iter().all(|x| x.line <= 7),
        "test module is exempt: {f:?}"
    );

    // Non-deterministic crates may read wall clocks.
    assert!(lint_fixture("wall_clock.rs", "crates/oned/src/core.rs").is_empty());
}

#[test]
fn unwrap_fires_on_request_path_files_outside_tests() {
    let f = lint_fixture("unwrap_request.rs", "crates/oned/src/server.rs");
    assert_eq!(
        rules_of(&f),
        ["unwrap-in-request-path", "unwrap-in-request-path"],
        "{f:?}"
    );
    assert_eq!(
        [f[0].line, f[1].line],
        [4, 5],
        "unwrap_or_else and tests are clean"
    );

    // The core thread holds the shared-state write lock, so it is on
    // the request path too; binaries are not.
    assert_eq!(
        rules_of(&lint_fixture(
            "unwrap_request.rs",
            "crates/oned/src/core.rs"
        )),
        ["unwrap-in-request-path", "unwrap-in-request-path"],
    );
    assert!(lint_fixture("unwrap_request.rs", "crates/oned/src/bin/ones-ctl.rs").is_empty());
}

#[test]
fn signal_handler_rule_audits_only_registered_handlers() {
    let f = lint_fixture("signal_handler.rs", "crates/oned/src/bin/ones-d.rs");
    assert_eq!(
        rules_of(&f),
        ["signal-handler-safety", "signal-handler-safety"],
        "{f:?}"
    );
    let flagged: Vec<&str> = f.iter().map(|x| x.msg.split('`').nth(1).unwrap()).collect();
    assert_eq!(flagged, ["println", "format"]);
    assert!(
        f.iter().all(|x| x.msg.contains("bad_handler")),
        "good_handler is clean: {f:?}"
    );
}

/// The gate itself: the repository must lint clean with the checked-in
/// allowlist, and the allowlist must carry no stale entries. This is the
/// exact check `scripts/ci.sh` runs.
#[test]
fn repo_self_check_is_clean() {
    let report = ones_lint::run(&ones_lint::default_root()).expect("scan repo");
    assert!(
        report.findings.is_empty(),
        "ones-lint found violations:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.allow_errors.is_empty(), "{:?}", report.allow_errors);
    assert!(
        report.stale_allows.is_empty(),
        "stale lint.allow entries: {:?}",
        report.stale_allows
    );
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}) — did the walk break?",
        report.files
    );
    assert!(
        report.suppressed > 0,
        "lint.allow should be exercising at least one suppression"
    );
}
