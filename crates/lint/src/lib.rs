//! # ones-lint — concurrency & determinism rules for this workspace
//!
//! A repo-local static-analysis pass with zero dependencies: a
//! token-level lexer ([`lexer`]), a rule catalog ([`rules`]) and an
//! allowlist ([`allow`]). It runs as a CI gate (`scripts/ci.sh`) and by
//! hand via `cargo ones-lint` (alias in `.cargo/config.toml`).
//!
//! The rules encode the invariants the loom models in
//! `crates/{evo,obs,oned}/tests/loom_*.rs` rely on — e.g. the model
//! checker can only see locks that go through the `ones_sync` facade,
//! so `std-sync` is what keeps the models sound as the code evolves.
//! The full catalog with rationale lives in DESIGN.md §"Concurrency
//! model".

pub mod allow;
pub mod lexer;
pub mod rules;

use rules::Finding;
use std::path::{Path, PathBuf};

/// Directories under the repo root that are scanned.
const SCAN_ROOTS: &[&str] = &["crates", "src"];

/// Path prefixes never scanned: vendored shims (external API surface,
/// not ours) and the linter's own rule-violation fixtures.
const SKIP_PREFIXES: &[&str] = &["shims/", "crates/lint/tests/fixtures/"];

/// The outcome of a full run.
#[derive(Debug)]
pub struct Report {
    /// Violations that survived the allowlist, sorted by (path, line).
    pub findings: Vec<Finding>,
    /// Findings suppressed by lint.allow entries.
    pub suppressed: usize,
    /// lint.allow entries that suppressed nothing (stale).
    pub stale_allows: Vec<String>,
    /// lint.allow format errors (these fail the run).
    pub allow_errors: Vec<String>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// True when CI should go red.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.allow_errors.is_empty()
    }
}

/// Lints every scanned `.rs` file under `root`, applying the allowlist
/// at `root/lint.allow` if present.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        scanned += 1;
        let src = std::fs::read_to_string(path)?;
        findings.extend(rules::check_file(&rel, &lexer::lex(&src)));
    }

    let allow_path = root.join("lint.allow");
    let (entries, allow_errors) = if allow_path.exists() {
        allow::parse(&std::fs::read_to_string(&allow_path)?)
    } else {
        (Vec::new(), Vec::new())
    };
    let (mut kept, suppressed, stale) = allow::apply(findings, &entries);
    kept.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));

    Ok(Report {
        findings: kept,
        suppressed,
        stale_allows: stale
            .into_iter()
            .map(|e| {
                format!(
                    "lint.allow:{}: `{} {}` suppresses nothing",
                    e.line, e.rule, e.path
                )
            })
            .collect(),
        allow_errors,
        files: scanned,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root this binary was built in: the linter is a
/// repo-local tool, so baking the path in at compile time makes
/// `cargo ones-lint` work from any cwd.
#[must_use]
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate sits two levels below the workspace root")
        .to_path_buf()
}
