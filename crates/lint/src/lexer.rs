//! A small token-level lexer for Rust source.
//!
//! This is *not* a parser: it produces a flat token stream good enough
//! for the pattern rules in [`crate::rules`] — identifiers, punctuation
//! (with `::` fused into one token), literals — with comments and string
//! contents stripped so they can never produce false positives. Line
//! numbers are 1-based. The corners that matter for correctness here are
//! the ones that would otherwise corrupt the stream: nested block
//! comments, raw strings (`r#"…"#`), byte strings, and the `'a` lifetime
//! vs `'x'` char-literal ambiguity.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`Ordering`, `fn`, `unwrap`, …).
    Ident,
    /// Punctuation; `::` is fused, everything else is one char.
    Punct,
    /// String, raw-string, byte-string or char literal (content dropped).
    Literal,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`) — distinct so `'de` never looks like an ident.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// The lexed file: the token stream plus the comment text per line
/// (needed by the `relaxed-ordering` rule, which looks for `relaxed:`
/// justification comments near an atomic-ordering site).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// `(start_line, comment_text)` for every `//` and `/* */` comment.
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// True if some comment starting on a line in `lo..=hi` contains `needle`.
    pub fn comment_in_range_contains(&self, lo: u32, hi: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|(l, text)| (lo..=hi).contains(l) && text.contains(needle))
    }
}

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];

        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push((start, text));
            continue;
        }

        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump_line!(chars[i]);
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.comments.push((start, text));
            continue;
        }

        // Identifier / keyword — or a raw/byte string prefix.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();

            // r"…" / r#"…"# / b"…" / br"…" / rb not a thing; handle the
            // string-prefix idents by re-entering literal lexing.
            let is_raw_prefix = matches!(ident.as_str(), "r" | "br")
                && matches!(chars.get(i), Some('"') | Some('#'));
            let is_byte_prefix = ident == "b" && chars.get(i) == Some(&'"');
            if is_raw_prefix {
                // Count the #s, then consume to the matching "#… close.
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    i += 1; // opening quote
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump_line!(chars[i]);
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through, emit as ident.
                let raw_ident_start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[raw_ident_start..i].iter().collect();
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                continue;
            }
            if is_byte_prefix {
                i += 1; // opening quote; fall into escaped-string scan
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            bump_line!(ch);
                            i += 1;
                        }
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                continue;
            }

            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            continue;
        }

        // String literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        bump_line!(ch);
                        i += 1;
                    }
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // `'\…'` is always a char literal; `'x'` is a char literal;
            // `'ident` with no closing quote is a lifetime.
            if chars.get(i + 1) == Some(&'\\') {
                i += 2; // skip '\ and the escaped char intro
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                i += 3;
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                continue;
            }
            // Lifetime.
            let start = i + 1;
            i += 1;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text,
                line,
            });
            continue;
        }

        // Number (consume a trailing fraction only when `.` is followed
        // by a digit, so `1.0` is one token but `x.0.partial_cmp` still
        // surfaces `partial_cmp`).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }

        // `::` fused; all other punctuation single-char.
        if c == ':' && chars.get(i + 1) == Some(&':') {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// True if the idents/puncts starting at `i` match `pat` exactly.
pub fn seq_matches(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let lx = lex(r##"
            // Ordering::Relaxed in a comment
            /* partial_cmp in /* a nested */ block */
            let s = "std::sync::Mutex";
            let r = r#"thread_rng()"#;
            let c = 'x';
            let lt: &'static str = "y";
        "##);
        assert!(!lx.toks.iter().any(|t| t.text == "Relaxed"));
        assert!(!lx.toks.iter().any(|t| t.text == "partial_cmp"));
        assert!(!lx.toks.iter().any(|t| t.text == "thread_rng"));
        assert!(!lx.toks.iter().any(|t| t.text == "Mutex"));
        assert_eq!(lx.comments.len(), 2);
        assert!(lx
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn double_colon_fuses_and_lines_track() {
        let lx = lex("a::b\nc :: d\ne:f");
        let texts: Vec<&str> = lx.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b", "c", "::", "d", "e", ":", "f"]);
        assert_eq!(lx.toks[3].line, 2);
        assert_eq!(lx.toks[6].line, 3);
    }

    #[test]
    fn numeric_field_access_still_exposes_method() {
        let lx = lex("score.0.partial_cmp(&other.0)");
        assert!(lx.toks.iter().any(|t| t.text == "partial_cmp"));
    }

    #[test]
    fn seq_matcher_walks_fused_paths() {
        let lx = lex("Ordering::Relaxed");
        assert!(seq_matches(&lx.toks, 0, &["Ordering", "::", "Relaxed"]));
        assert!(!seq_matches(&lx.toks, 0, &["Ordering", "::", "SeqCst"]));
    }
}
