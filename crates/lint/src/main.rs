//! CLI for ones-lint. See the lib docs and DESIGN.md §"Concurrency
//! model" for the rule catalog.
//!
//! ```text
//! cargo ones-lint            # lint the workspace (alias in .cargo/config.toml)
//! cargo run -p ones-lint -- [ROOT]
//! ```
//!
//! Exit status: 0 clean, 1 violations or a malformed lint.allow,
//! 2 usage/IO error. Stale allowlist entries are warnings, not errors,
//! so deleting code never turns the build red for the wrong reason.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                println!(
                    "usage: ones-lint [ROOT]\n\n\
                     Lints the workspace at ROOT (default: the workspace this\n\
                     binary was built in) against the concurrency & determinism\n\
                     rule catalog. Exceptions live in ROOT/lint.allow."
                );
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            other => {
                eprintln!("ones-lint: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(ones_lint::default_root);

    let report = match ones_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ones-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for err in &report.allow_errors {
        eprintln!("error: {err}");
    }
    for f in &report.findings {
        println!("{f}");
    }
    for warning in &report.stale_allows {
        eprintln!("warning: {warning}");
    }

    eprintln!(
        "ones-lint: {} file(s), {} violation(s), {} suppressed by lint.allow",
        report.files,
        report.findings.len(),
        report.suppressed
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
