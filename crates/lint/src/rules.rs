//! The rule catalog.
//!
//! Each rule is a pure function from a lexed file (plus its repo-relative
//! path) to findings. Scope — which files a rule even looks at — lives
//! here too, so the catalog in DESIGN.md §"Concurrency model" and this
//! file are the same list in two notations.

use crate::lexer::{seq_matches, Lexed, Tok, TokKind};

/// One violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `std-sync`.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// All rule ids, for allowlist validation.
pub const RULES: &[&str] = &[
    "std-sync",
    "float-partial-cmp",
    "relaxed-ordering",
    "wall-clock-in-det",
    "unwrap-in-request-path",
    "signal-handler-safety",
    "deployed-mutation",
];

/// Crates whose scheduling decisions must be reproducible from a seed:
/// no wall clocks, no OS entropy.
const DETERMINISTIC_PREFIXES: &[&str] = &[
    "crates/evo/src/",
    "crates/schedcore/src/",
    "crates/simulator/src/",
    "crates/dlperf/src/",
];

/// Crates where a float comparison is a *selection* decision (scoring,
/// ranking, victim choice) and must therefore be total.
const SELECTION_PREFIXES: &[&str] = &[
    "crates/evo/src/",
    "crates/ones/src/",
    "crates/baselines/src/",
    "crates/schedcore/src/",
];

/// Daemon files on the request path: a panic here kills a connection
/// handler and, with it, the client's request. `core.rs` is included
/// because the core thread holds the shared-state write lock — a panic
/// there poisons every handler's read.
const REQUEST_PATH_FILES: &[&str] = &[
    "crates/oned/src/server.rs",
    "crates/oned/src/http.rs",
    "crates/oned/src/api.rs",
    "crates/oned/src/core.rs",
];

/// The one module allowed to mutate a deployed [`Schedule`] directly:
/// everything else must go through the reconciler's typed operations.
const RECONCILER_FILE: &str = "crates/schedcore/src/reconcile.rs";

/// Runs every applicable rule over one file.
pub fn check_file(path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let test_ranges = test_regions(&lx.toks);
    let in_test =
        |idx: usize| -> bool { test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&idx)) };

    rule_std_sync(path, lx, &mut out);
    rule_float_partial_cmp(path, lx, &mut out);
    rule_relaxed_ordering(path, lx, &mut out);
    rule_wall_clock(path, lx, &in_test, &mut out);
    rule_unwrap_request_path(path, lx, &in_test, &mut out);
    rule_signal_handler(path, lx, &mut out);
    rule_deployed_mutation(path, lx, &in_test, &mut out);
    out
}

// ---------------------------------------------------------------------
// std-sync
// ---------------------------------------------------------------------

fn rule_std_sync(path: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    // The facade itself is the one place allowed to say `std::sync`.
    if path.starts_with("crates/sync/") {
        return;
    }
    for (i, t) in lx.toks.iter().enumerate() {
        if t.text == "std" && seq_matches(&lx.toks, i, &["std", "::", "sync"]) {
            out.push(Finding {
                rule: "std-sync",
                path: path.to_string(),
                line: t.line,
                msg: "use ones_sync (the facade swaps in the loom shim under \
                      --cfg ones_loom); std::sync types are invisible to the \
                      model checker"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// float-partial-cmp
// ---------------------------------------------------------------------

fn rule_float_partial_cmp(path: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    if !SELECTION_PREFIXES.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for t in &lx.toks {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            out.push(Finding {
                rule: "float-partial-cmp",
                path: path.to_string(),
                line: t.line,
                msg: "selection/scoring comparisons must use total_cmp: \
                      partial_cmp returns None on NaN, and the usual \
                      .unwrap()/.unwrap_or fallbacks either panic the \
                      scheduler or silently bias the ranking"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// relaxed-ordering
// ---------------------------------------------------------------------

/// How far above the use site a `relaxed:` justification comment may sit.
const RELAXED_COMMENT_WINDOW: u32 = 3;

fn rule_relaxed_ordering(path: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    for (i, t) in lx.toks.iter().enumerate() {
        if t.text == "Ordering" && seq_matches(&lx.toks, i, &["Ordering", "::", "Relaxed"]) {
            let lo = t.line.saturating_sub(RELAXED_COMMENT_WINDOW);
            if !lx.comment_in_range_contains(lo, t.line, "relaxed:") {
                out.push(Finding {
                    rule: "relaxed-ordering",
                    path: path.to_string(),
                    line: t.line,
                    msg: "Ordering::Relaxed needs a `// relaxed: <why>` \
                          justification on the same or a nearby preceding \
                          line (or use a stronger ordering)"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// wall-clock-in-det
// ---------------------------------------------------------------------

fn rule_wall_clock(
    path: &str,
    lx: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if !DETERMINISTIC_PREFIXES.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, t) in lx.toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        let hit = (t.text == "Instant" && seq_matches(&lx.toks, i, &["Instant", "::", "now"]))
            || (t.text == "SystemTime" && seq_matches(&lx.toks, i, &["SystemTime", "::", "now"]))
            || (t.kind == TokKind::Ident && t.text == "thread_rng");
        if hit {
            out.push(Finding {
                rule: "wall-clock-in-det",
                path: path.to_string(),
                line: t.line,
                msg: format!(
                    "`{}` in a deterministic crate: scheduling decisions must \
                     replay bit-identically from (trace, seed); take time from \
                     the simulation clock and randomness from the seeded rng",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// unwrap-in-request-path
// ---------------------------------------------------------------------

fn rule_unwrap_request_path(
    path: &str,
    lx: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if !REQUEST_PATH_FILES.contains(&path) {
        return;
    }
    for (i, t) in lx.toks.iter().enumerate() {
        if t.text != "." || in_test(i + 1) {
            continue;
        }
        let Some(next) = lx.toks.get(i + 1) else {
            continue;
        };
        if next.kind == TokKind::Ident && (next.text == "unwrap" || next.text == "expect") {
            out.push(Finding {
                rule: "unwrap-in-request-path",
                path: path.to_string(),
                line: next.line,
                msg: format!(
                    ".{}() on the daemon request path: a panic here kills the \
                     connection handler mid-request and can poison shared \
                     locks; map the error to an HTTP status instead",
                    next.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// signal-handler-safety
// ---------------------------------------------------------------------

/// Identifiers permitted inside a registered signal handler's body:
/// atomic operations and memory-ordering names only. Everything else —
/// allocation, locks, formatting, I/O — is not async-signal-safe.
const SIGNAL_SAFE_IDENTS: &[&str] = &[
    "store",
    "load",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "true",
    "false",
    "Ordering",
    "SeqCst",
    "AcqRel",
    "Acquire",
    "Release",
    "Relaxed",
];

fn rule_signal_handler(path: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;

    // Pass 1: names passed as arguments to a `signal(…)` call. Skip
    // SCREAMING_CASE idents (the signal-number constants).
    let mut handlers: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text == "signal"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i.wrapping_sub(1)).is_none_or(|t| t.text != "fn")
        {
            let mut depth = 0usize;
            for t in &toks[i + 1..] {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if t.kind == TokKind::Ident
                            && t.text.chars().any(|c| c.is_lowercase())
                            && !handlers.contains(&t.text)
                        {
                            handlers.push(t.text.clone());
                        }
                    }
                }
            }
        }
    }
    if handlers.is_empty() {
        return;
    }

    // Pass 2: audit the body of every `extern "C" fn <handler>`.
    for i in 0..toks.len() {
        if toks[i].text != "fn" {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if !handlers.contains(&name.text) {
            continue;
        }
        // Find the opening brace of the body, then brace-match.
        let Some(open) = toks[i..].iter().position(|t| t.text == "{").map(|k| i + k) else {
            continue;
        };
        let mut depth = 0usize;
        for t in &toks[open..] {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    let ok = t.kind != TokKind::Ident
                        || SIGNAL_SAFE_IDENTS.contains(&t.text.as_str())
                        || t.text.starts_with('_')
                        || t.text.chars().all(|c| !c.is_lowercase());
                    if !ok {
                        out.push(Finding {
                            rule: "signal-handler-safety",
                            path: path.to_string(),
                            line: t.line,
                            msg: format!(
                                "`{}` inside signal handler `{}`: only atomic \
                                 stores/loads on pre-existing statics are \
                                 async-signal-safe (no allocation, locks, \
                                 formatting or I/O)",
                                t.text, name.text
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// deployed-mutation
// ---------------------------------------------------------------------

/// Mutating [`Schedule`] methods; calling one on a binding or field named
/// `deployed` bypasses the reconciliation layer.
const SCHEDULE_MUTATORS: &[&str] = &["assign", "evict", "clear"];

fn rule_deployed_mutation(
    path: &str,
    lx: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if !path.starts_with("crates/") || !path.contains("/src/") || path == RECONCILER_FILE {
        return;
    }
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "deployed" || in_test(i) {
            continue;
        }
        // `deployed.assign(…)` / `.evict(…)` / `.clear(…)`.
        let mutating_call = lx.toks.get(i + 1).is_some_and(|d| d.text == ".")
            && lx.toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && SCHEDULE_MUTATORS.contains(&m.text.as_str())
            });
        // `deployed = …` — plain assignment, not `==` and not a `let`
        // binding that merely *reads* the deployed schedule.
        let is_let_binding = i > 0
            && lx
                .toks
                .get(i - 1)
                .is_some_and(|p| p.text == "let" || p.text == "mut");
        let assignment = !is_let_binding
            && lx.toks.get(i + 1).is_some_and(|e| e.text == "=")
            && lx.toks.get(i + 2).is_none_or(|n| n.text != "=");
        if mutating_call || assignment {
            out.push(Finding {
                rule: "deployed-mutation",
                path: path.to_string(),
                line: t.line,
                msg: "the deployed Schedule may only change through the \
                      reconciler (ones_schedcore::reconcile): plan typed \
                      ScalingOps and commit them, so lifecycle phases, \
                      scaling costs and persisted recovery state stay \
                      consistent with what is actually running"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// #[cfg(test)] / #[test] region detection
// ---------------------------------------------------------------------

/// Token-index ranges covered by `#[cfg(test)]`-gated items or `#[test]`
/// functions. Used to exempt test code from runtime-path rules.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" => saw_cfg = true,
                    "not" => saw_not = true,
                    "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` alone, or `test` inside a `#[cfg(…)]` — but
            // `#[cfg(not(test))]` gates *production* code, keep linting it.
            let bare_test = is_test_attr && !saw_cfg && j - i <= 4;
            if (saw_cfg && is_test_attr && !saw_not) || bare_test {
                // Skip any further attributes, then brace-match the item.
                let mut k = j;
                while toks.get(k).is_some_and(|t| t.text == "#")
                    && toks.get(k + 1).is_some_and(|t| t.text == "[")
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                if let Some(open_rel) = toks[k..].iter().position(|t| t.text == "{") {
                    let open = k + open_rel;
                    let mut d = 0usize;
                    let mut end = open;
                    for (off, t) in toks[open..].iter().enumerate() {
                        match t.text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    end = open + off;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    ranges.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &lex(src))
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_runtime_rules() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); z.expect("boom"); }
            }
        "#;
        let f = findings("crates/oned/src/server.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn relaxed_needs_a_nearby_justification() {
        let bad = "a.load(Ordering::Relaxed);";
        let same_line = "a.load(Ordering::Relaxed); // relaxed: diagnostics";
        let line_above = "// relaxed: diagnostics\na.load(Ordering::Relaxed);";
        let too_far = "// relaxed: diagnostics\n\n\n\n\na.load(Ordering::Relaxed);";
        assert_eq!(findings("crates/x/src/a.rs", bad).len(), 1);
        assert!(findings("crates/x/src/a.rs", same_line).is_empty());
        assert!(findings("crates/x/src/a.rs", line_above).is_empty());
        assert_eq!(findings("crates/x/src/a.rs", too_far).len(), 1);
    }

    #[test]
    fn signal_handler_rule_needs_registration() {
        let unregistered = r#"extern "C" fn on_signal(_s: i32) { println!("hi"); }"#;
        assert!(findings("crates/x/src/a.rs", unregistered).is_empty());

        let registered = r#"
            extern "C" fn on_signal(_s: i32) { do_work(); }
            fn install() {
                extern "C" { fn signal(n: i32, h: extern "C" fn(i32)) -> usize; }
                unsafe { signal(SIGTERM, on_signal); }
            }
        "#;
        let f = findings("crates/x/src/a.rs", registered);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("do_work"));

        let safe = r#"
            extern "C" fn on_signal(_s: i32) { SHUTDOWN.store(true, Ordering::SeqCst); }
            fn install() {
                extern "C" { fn signal(n: i32, h: extern "C" fn(i32)) -> usize; }
                unsafe { signal(SIGTERM, on_signal); }
            }
        "#;
        assert!(findings("crates/x/src/a.rs", safe).is_empty());
    }

    #[test]
    fn core_thread_is_on_the_request_path() {
        let src = r#"fn run() { state.write().expect("state lock"); }"#;
        let f = findings("crates/oned/src/core.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unwrap-in-request-path");
    }

    #[test]
    fn deployed_schedule_mutations_outside_the_reconciler_are_flagged() {
        // Direct mutation in production code: flagged.
        for src in [
            "fn f() { self.deployed.assign(g, j, b); }",
            "fn f() { self.deployed.evict(j); }",
            "fn f() { self.deployed.clear(g); }",
            "fn f() { self.deployed = next; }",
        ] {
            let f = findings("crates/simulator/src/engine.rs", src);
            assert_eq!(f.len(), 1, "{src}: {f:?}");
            assert_eq!(f[0].rule, "deployed-mutation");
        }
        // Reads, bindings, comparisons and struct fields: clean.
        for src in [
            "fn f() { let deployed = self.recon.actual(); }",
            "fn f() { let x = view.deployed.placement(j); }",
            "fn f() { if deployed == desired { return; } }",
            "fn f() { ClusterView { deployed: self.recon.actual() }; }",
        ] {
            let f = findings("crates/simulator/src/engine.rs", src);
            assert!(f.is_empty(), "{src}: {f:?}");
        }
        // The reconciler itself and test code are exempt.
        let mutate = "fn f() { self.deployed.evict(j); }";
        assert!(findings("crates/schedcore/src/reconcile.rs", mutate).is_empty());
        let in_test = "#[cfg(test)]\nmod t { fn f(h: &mut H) { h.deployed.evict(j); } }";
        assert!(findings("crates/ones/src/scheduler.rs", in_test).is_empty());
    }

    #[test]
    fn scope_prefixes_gate_the_path_rules() {
        let clock = "fn f() { let t = Instant::now(); }";
        assert_eq!(findings("crates/evo/src/search.rs", clock).len(), 1);
        assert!(findings("crates/oned/src/server.rs", clock).is_empty());

        let cmp = "a.partial_cmp(&b)";
        assert_eq!(findings("crates/baselines/src/slaq.rs", cmp).len(), 1);
        assert!(findings("crates/workload/src/trace.rs", cmp).is_empty());

        let sync = "use std::sync::Mutex;";
        assert_eq!(findings("crates/evo/src/cache.rs", sync).len(), 1);
        assert!(findings("crates/sync/src/lib.rs", sync).is_empty());
    }
}
