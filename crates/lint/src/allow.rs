//! The `lint.allow` allowlist.
//!
//! Format, one entry per line:
//!
//! ```text
//! # comment
//! <rule-id> <repo-relative-path> <justification…>
//! ```
//!
//! An entry suppresses every finding of `<rule-id>` in exactly that file
//! (no globs — an allowlist that can wildcard is an allowlist that
//! rots). The justification is mandatory; `ones-lint` refuses an entry
//! without one, and reports entries that no longer suppress anything so
//! they get deleted when the code they excused goes away.

use crate::rules::{Finding, RULES};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    /// 1-based line in lint.allow, for error reporting.
    pub line: u32,
}

/// Parses `lint.allow` content. Returns entries and any format errors.
pub fn parse(content: &str) -> (Vec<AllowEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let line = idx as u32 + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let mut parts = text.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or_default().to_string();
        let path = parts.next().unwrap_or_default().to_string();
        let reason = parts.next().unwrap_or_default().trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            errors.push(format!(
                "lint.allow:{line}: unknown rule {rule:?} (known: {})",
                RULES.join(", ")
            ));
            continue;
        }
        if path.is_empty() {
            errors.push(format!("lint.allow:{line}: missing path after rule {rule}"));
            continue;
        }
        if reason.is_empty() {
            errors.push(format!(
                "lint.allow:{line}: entry `{rule} {path}` has no justification — \
                 say why the exception is sound"
            ));
            continue;
        }
        entries.push(AllowEntry {
            rule,
            path,
            reason,
            line,
        });
    }
    (entries, errors)
}

/// Splits findings into (kept, suppressed) and reports entries that
/// suppressed nothing (stale — the excused code is gone).
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, usize, Vec<&AllowEntry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        match entries
            .iter()
            .position(|e| e.rule == f.rule && e.path == f.path)
        {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e)
        .collect();
    (kept, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_rejects_bad_ones() {
        let (entries, errors) = parse(
            "# header\n\
             wall-clock-in-det crates/evo/src/search.rs perf timers are diagnostics\n\
             no-such-rule crates/x.rs whatever\n\
             std-sync crates/y.rs\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "wall-clock-in-det");
        assert_eq!(errors.len(), 2);
        assert!(errors[0].contains("unknown rule"));
        assert!(errors[1].contains("no justification"));
    }

    #[test]
    fn apply_suppresses_exact_file_matches_and_flags_stale() {
        let (entries, errors) = parse(
            "std-sync crates/a.rs legacy\n\
             std-sync crates/gone.rs removed file\n",
        );
        assert!(errors.is_empty());
        let findings = vec![
            Finding {
                rule: "std-sync",
                path: "crates/a.rs".into(),
                line: 1,
                msg: String::new(),
            },
            Finding {
                rule: "std-sync",
                path: "crates/b.rs".into(),
                line: 2,
                msg: String::new(),
            },
        ];
        let (kept, suppressed, stale) = apply(findings, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/b.rs");
        assert_eq!(suppressed, 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/gone.rs");
    }
}
