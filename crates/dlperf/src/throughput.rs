//! Step-time and throughput model.
//!
//! One data-parallel training step processes each worker's local batch in
//! parallel, then synchronises gradients with a ring all-reduce. Workers
//! proceed in lock-step, so the step is gated by the *largest* local batch:
//!
//! ```text
//! t_step = max_i (overhead + b_i · t_sample)  +  t_allreduce(grad_bytes, placement)
//! ```
//!
//! Throughput is `X = B / t_step` with `B = Σ b_i` (paper Eq 2). The model
//! reproduces Figure 2's two regimes:
//! * fixed global batch, growing workers → shrinking local batches stop
//!   amortising the fixed overhead while communication grows, so throughput
//!   peaks around 2 workers then falls;
//! * batch grown with the workers (elastic) → throughput keeps rising.

use crate::models::ModelProfile;
use ones_cluster::{AllReduceModel, ClusterSpec, Placement};
use serde::{Deserialize, Serialize};

/// Throughput model bound to a cluster fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    allreduce: AllReduceModel,
}

impl PerfModel {
    /// Binds the model to a cluster.
    #[must_use]
    pub fn new(spec: ClusterSpec) -> Self {
        PerfModel {
            allreduce: AllReduceModel::new(spec),
        }
    }

    /// The all-reduce sub-model.
    #[must_use]
    pub fn allreduce(&self) -> &AllReduceModel {
        &self.allreduce
    }

    /// The cluster spec.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        self.allreduce.spec()
    }

    /// Time of one training step, seconds.
    ///
    /// `local_batches[i]` is the local batch of the worker on
    /// `placement.gpus()[i]`; the two slices must have equal length.
    ///
    /// # Panics
    /// Panics on length mismatch, empty placement, or any zero /
    /// over-memory local batch.
    #[must_use]
    pub fn step_time(
        &self,
        profile: &ModelProfile,
        local_batches: &[u32],
        placement: &Placement,
    ) -> f64 {
        assert_eq!(
            local_batches.len(),
            placement.len(),
            "one local batch per worker"
        );
        assert!(!placement.is_empty(), "step_time of an unplaced job");
        let compute = local_batches
            .iter()
            .map(|&b| profile.compute_time(b))
            .fold(0.0, f64::max);
        let comm = self.allreduce.time(placement, profile.grad_bytes());
        compute + comm
    }

    /// Samples per second for the given configuration.
    #[must_use]
    pub fn throughput(
        &self,
        profile: &ModelProfile,
        local_batches: &[u32],
        placement: &Placement,
    ) -> f64 {
        let global: u32 = local_batches.iter().sum();
        assert!(global > 0, "throughput of an empty batch");
        f64::from(global) / self.step_time(profile, local_batches, placement)
    }

    /// Time to process one epoch of `dataset_size` samples, seconds.
    ///
    /// The final partial step is charged like a full step (its compute is
    /// gated by overheads, not batch fill).
    #[must_use]
    pub fn epoch_time(
        &self,
        profile: &ModelProfile,
        dataset_size: u64,
        local_batches: &[u32],
        placement: &Placement,
    ) -> f64 {
        assert!(dataset_size > 0, "empty dataset");
        let global: u64 = local_batches.iter().map(|&b| u64::from(b)).sum();
        assert!(global > 0);
        let steps = dataset_size.div_ceil(global);
        steps as f64 * self.step_time(profile, local_batches, placement)
    }

    /// Convenience: evenly split a global batch over `placement`, clamped
    /// to the model's memory limit. Returns `None` if `B` cannot fit (more
    /// than `max_local_batch` per worker) or the placement is empty.
    #[must_use]
    pub fn split_batch(
        profile: &ModelProfile,
        global_batch: u32,
        placement: &Placement,
    ) -> Option<Vec<u32>> {
        let c = placement.len() as u32;
        if c == 0 || global_batch == 0 {
            return None;
        }
        let base = global_batch / c;
        let rem = global_batch % c;
        let batches: Vec<u32> = (0..c).map(|i| base + u32::from(i < rem)).collect();
        if batches
            .iter()
            .any(|&b| b == 0 || b > profile.max_local_batch)
        {
            return None;
        }
        Some(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{DatasetKind, ModelKind};
    use ones_cluster::GpuId;

    fn model() -> PerfModel {
        PerfModel::new(ClusterSpec::longhorn())
    }

    fn pl(ids: &[u32]) -> Placement {
        Placement::new(ids.iter().map(|&i| GpuId(i)).collect())
    }

    #[test]
    fn figure2_fixed_global_batch_saturates() {
        // ResNet50 on CIFAR10 (the paper's Figure 2 setup), fixed global
        // batch 256 split over 1..8 workers.
        let m = model();
        let prof = ModelKind::ResNet50
            .profile()
            .for_dataset(DatasetKind::Cifar10);
        let xs: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&c| {
                let place = Placement::contiguous(0, c);
                let batches = PerfModel::split_batch(&prof, 256, &place).unwrap();
                m.throughput(&prof, &batches, &place)
            })
            .collect();
        // Throughput must not keep scaling linearly, and it drops once the
        // ring crosses the node boundary (8 workers on 4-GPU nodes).
        assert!(xs[3] < 4.0 * xs[0], "no saturation: {xs:?}");
        let peak = xs.iter().cloned().fold(0.0, f64::max);
        assert!(
            xs[3] < peak,
            "8-worker fixed-batch should be past the peak: {xs:?}"
        );
    }

    #[test]
    fn figure2_elastic_batch_keeps_scaling() {
        // Elastic: batch grows 256 -> 2048 with workers 1 -> 8.
        let m = model();
        let prof = ModelKind::ResNet50
            .profile()
            .for_dataset(DatasetKind::Cifar10);
        let xs: Vec<f64> = [(1u32, 256u32), (2, 512), (4, 1024), (8, 2048)]
            .iter()
            .map(|&(c, b)| {
                let place = Placement::contiguous(0, c);
                let batches = PerfModel::split_batch(&prof, b, &place).unwrap();
                m.throughput(&prof, &batches, &place)
            })
            .collect();
        for w in xs.windows(2) {
            assert!(w[1] > w[0], "elastic throughput should keep rising: {xs:?}");
        }
        // And it beats the fixed-batch configuration at 8 workers.
        let place8 = Placement::contiguous(0, 8);
        let fixed = m.throughput(
            &prof,
            &PerfModel::split_batch(&prof, 256, &place8).unwrap(),
            &place8,
        );
        assert!(xs[3] > 2.0 * fixed);
    }

    #[test]
    fn step_gated_by_largest_local_batch() {
        let m = model();
        let prof = ModelKind::ResNet50.profile();
        let place = pl(&[0, 1]);
        let balanced = m.step_time(&prof, &[64, 64], &place);
        let skewed = m.step_time(&prof, &[120, 8], &place);
        assert!(skewed > balanced);
    }

    #[test]
    fn communication_penalises_cross_node() {
        let m = model();
        let prof = ModelKind::Vgg16.profile(); // big gradients
        let intra = m.step_time(&prof, &[64; 4], &pl(&[0, 1, 2, 3]));
        let inter = m.step_time(&prof, &[64; 4], &pl(&[0, 4, 8, 12]));
        assert!(inter > intra);
    }

    #[test]
    fn epoch_time_counts_partial_steps() {
        let m = model();
        let prof = ModelKind::ResNet18.profile();
        let place = pl(&[0]);
        // 1000 samples at B=256 -> 4 steps (3 full + 1 partial).
        let t = m.epoch_time(&prof, 1000, &[256], &place);
        let step = m.step_time(&prof, &[256], &place);
        assert!((t - 4.0 * step).abs() < 1e-12);
    }

    #[test]
    fn split_batch_even_and_remainder() {
        let prof = ModelKind::ResNet50.profile();
        let place = pl(&[0, 1, 2]);
        assert_eq!(
            PerfModel::split_batch(&prof, 96, &place).unwrap(),
            vec![32, 32, 32]
        );
        assert_eq!(
            PerfModel::split_batch(&prof, 100, &place).unwrap(),
            vec![34, 33, 33]
        );
    }

    #[test]
    fn split_batch_respects_memory_limit() {
        let prof = ModelKind::BertBase.profile(); // max 64 per GPU
        let one = pl(&[0]);
        assert!(PerfModel::split_batch(&prof, 65, &one).is_none());
        assert!(PerfModel::split_batch(&prof, 64, &one).is_some());
        assert!(PerfModel::split_batch(&prof, 0, &one).is_none());
        assert!(PerfModel::split_batch(&prof, 8, &Placement::empty()).is_none());
        // B smaller than worker count -> zero local batches are invalid.
        assert!(PerfModel::split_batch(&prof, 2, &pl(&[0, 1, 2])).is_none());
    }

    #[test]
    fn throughput_positive_and_finite() {
        let m = model();
        for kind in ModelKind::ALL {
            let prof = kind.profile();
            let place = pl(&[0, 1]);
            let b = prof.max_local_batch / 2;
            let x = m.throughput(&prof, &[b, b], &place);
            assert!(x.is_finite() && x > 0.0, "{kind}: {x}");
        }
    }

    #[test]
    fn throughput_is_shape_pure() {
        // The model reads a placement only through (len, nodes spanned,
        // max runs per node) — the quantities the schedule-signature
        // shape hash folds. Placements with equal shape must therefore
        // have bit-identical throughput; throughput memoisation keyed on
        // the shape hash depends on this.
        let m = model(); // 4-GPU nodes
        let prof = ModelKind::Vgg16.profile();
        let same_shape = [
            (pl(&[0, 1]), pl(&[2, 3])),               // shifted within a node
            (pl(&[0, 1]), pl(&[5, 6])),               // different node entirely
            (pl(&[3, 4]), pl(&[7, 8])),               // spanning a node boundary
            (pl(&[0, 2]), pl(&[5, 7])),               // fragmented, 2 runs
            (pl(&[0, 1, 2, 3]), pl(&[8, 9, 10, 11])), // full node
        ];
        for (a, b) in same_shape {
            let spec = m.spec();
            assert_eq!(a.len(), b.len());
            assert_eq!(a.nodes_spanned(spec), b.nodes_spanned(spec));
            assert_eq!(a.max_runs_per_node(spec), b.max_runs_per_node(spec));
            let batches = vec![32u32; a.len()];
            let xa = m.throughput(&prof, &batches, &a);
            let xb = m.throughput(&prof, &batches, &b);
            assert_eq!(xa.to_bits(), xb.to_bits(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one local batch per worker")]
    fn mismatched_batches_rejected() {
        let m = model();
        let prof = ModelKind::AlexNet.profile();
        let _ = m.step_time(&prof, &[32, 32], &pl(&[0]));
    }
}
