//! # ones-dlperf — deep-learning job performance & convergence models
//!
//! The paper's evaluation trains real PyTorch jobs (AlexNet, ResNet, VGG,
//! GoogleNet, Inception, BERT) on V100 GPUs. This crate replaces the real
//! training with analytic models that reproduce every *phenomenon* the
//! scheduler interacts with:
//!
//! * [`models`] — a profile per model family: parameter count (hence
//!   gradient and checkpoint bytes), per-sample compute time on a V100,
//!   fixed per-step overhead, and the largest local batch that fits in
//!   16 GB of HBM.
//! * [`throughput`] — step-time and throughput as a function of per-GPU
//!   local batches and placement, combining compute with the ring
//!   all-reduce model from `ones-cluster`. Reproduces Figure 2: with a
//!   fixed global batch, adding workers first helps then hurts; growing the
//!   batch with the workers keeps throughput rising.
//! * [`convergence`] — a statistical-efficiency model of training progress:
//!   large batches need more epochs (gradient-noise-scale shape, Figure 3),
//!   linear learning-rate scaling restores equivalence (§3.3.2), abrupt
//!   batch-size jumps inject a loss spike that costs recovery epochs
//!   (Figure 13) while gradual doubling does not (Figure 14).

pub mod convergence;
pub mod lr;
pub mod memory;
pub mod models;
pub mod throughput;

pub use convergence::{ConvergenceModel, ConvergenceState};
pub use lr::LrPolicy;
pub use memory::{memory_limited_batch, MemoryFootprint};
pub use models::{DatasetKind, ModelKind, ModelProfile};
pub use throughput::PerfModel;
