//! Learning-rate management for elastic batch sizes (§3.3.2).
//!
//! ONES "jointly manages the batch size and learning rate of each job
//! according to their initial values based on linear scaling". This module
//! makes that worker-side rule an explicit, testable artefact: the
//! [`LrPolicy`] computes the learning rate a worker should apply for any
//! current global batch, including the gradual warm-up that production
//! linear-scaling recipes (Goyal et al., the paper's reference 9) prescribe after a
//! batch increase to avoid the very loss spikes Figure 13 shows.

use serde::{Deserialize, Serialize};

/// Linear LR scaling with post-scaling warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrPolicy {
    /// The user's base learning rate η₀ at the reference batch B₀.
    pub base_lr: f64,
    /// The reference batch B₀.
    pub base_batch: u32,
    /// Steps over which a *raised* LR ramps from the old value to the new
    /// target after a batch increase (0 = jump immediately).
    pub warmup_steps: u32,
}

impl LrPolicy {
    /// Creates the policy for a job's submitted configuration.
    ///
    /// # Panics
    /// Panics on non-positive base LR or zero base batch.
    #[must_use]
    pub fn new(base_lr: f64, base_batch: u32) -> Self {
        assert!(base_lr > 0.0, "base learning rate must be positive");
        assert!(base_batch > 0, "base batch must be positive");
        LrPolicy {
            base_lr,
            base_batch,
            warmup_steps: 200,
        }
    }

    /// The steady-state learning rate for a global batch `b`: the linear
    /// scaling rule η = η₀ · B/B₀.
    #[must_use]
    pub fn target_lr(&self, batch: u32) -> f64 {
        assert!(batch > 0, "batch must be positive");
        self.base_lr * f64::from(batch) / f64::from(self.base_batch)
    }

    /// The learning rate `steps_since_scale` steps after the batch changed
    /// from `old_batch` to `new_batch`: ramps linearly from the old target
    /// to the new one when the batch grew (warm-up); drops immediately when
    /// it shrank (a lower LR is always safe).
    #[must_use]
    pub fn lr_after_scaling(&self, old_batch: u32, new_batch: u32, steps_since_scale: u32) -> f64 {
        let from = self.target_lr(old_batch);
        let to = self.target_lr(new_batch);
        if to <= from || self.warmup_steps == 0 {
            return to;
        }
        let progress =
            (f64::from(steps_since_scale) / f64::from(self.warmup_steps)).clamp(0.0, 1.0);
        from + (to - from) * progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> LrPolicy {
        LrPolicy::new(0.1, 256)
    }

    #[test]
    fn linear_scaling_rule() {
        let p = policy();
        assert!((p.target_lr(256) - 0.1).abs() < 1e-12);
        assert!((p.target_lr(512) - 0.2).abs() < 1e-12);
        assert!((p.target_lr(2048) - 0.8).abs() < 1e-12);
        assert!((p.target_lr(128) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn warmup_ramps_up_and_caps_at_target() {
        let p = policy();
        let start = p.lr_after_scaling(256, 1024, 0);
        let mid = p.lr_after_scaling(256, 1024, 100);
        let end = p.lr_after_scaling(256, 1024, 200);
        let past = p.lr_after_scaling(256, 1024, 9999);
        assert!((start - 0.1).abs() < 1e-12, "warm-up starts at the old LR");
        assert!(start < mid && mid < end, "{start} {mid} {end}");
        assert!((end - p.target_lr(1024)).abs() < 1e-12);
        assert_eq!(end, past);
    }

    #[test]
    fn scaling_down_drops_immediately() {
        let p = policy();
        assert!((p.lr_after_scaling(1024, 256, 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_warmup_jumps() {
        let mut p = policy();
        p.warmup_steps = 0;
        assert!((p.lr_after_scaling(256, 1024, 0) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_base_rejected() {
        let _ = LrPolicy::new(0.0, 256);
    }
}
