//! Model zoo profiles.
//!
//! One [`ModelProfile`] per neural-network family used in the paper's trace
//! (Table 2). Numbers are public, order-of-magnitude-faithful V100 figures:
//! parameter counts from the original papers, per-sample step time from
//! widely reported V100 fp32 training throughputs, and memory-limited
//! maximum local batch sizes for 16 GB HBM2. Absolute accuracy is not
//! required (we reproduce shapes, not testbed seconds); *relative* ordering
//! across models is what drives scheduling behaviour and Figure 16.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The datasets in the paper's workload trace (Table 2). The dataset
/// determines input resolution (hence per-sample compute time and the
/// memory-limited maximum batch), while the model family determines
/// parameter count (hence communication volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// ImageNet subsets at 224×224 (the reference resolution).
    ImageNet,
    /// CIFAR10 at 32×32: ~11× cheaper per sample, ~4× larger batches fit.
    Cifar10,
    /// GLUE CoLA (sentence acceptability), sequence length ~64.
    Cola,
    /// GLUE MRPC (paraphrase detection), sequence length ~128.
    Mrpc,
    /// GLUE SST-2 (sentiment), sequence length ~64.
    Sst2,
}

impl DatasetKind {
    /// Multiplier on per-sample compute time relative to the family's
    /// reference profile.
    #[must_use]
    pub fn compute_scale(self) -> f64 {
        match self {
            DatasetKind::ImageNet => 1.0,
            DatasetKind::Cifar10 => 0.09,
            DatasetKind::Mrpc => 1.0,
            DatasetKind::Cola | DatasetKind::Sst2 => 0.55,
        }
    }

    /// Multiplier on the memory-limited maximum local batch.
    #[must_use]
    pub fn batch_scale(self) -> u32 {
        match self {
            DatasetKind::ImageNet | DatasetKind::Mrpc => 1,
            DatasetKind::Cifar10 => 4,
            DatasetKind::Cola | DatasetKind::Sst2 => 2,
        }
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    /// Parses the display name (case-insensitive; `SST2`/`SST-2` both
    /// accepted) — the format scrubbed CSV traces carry.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "imagenet" => Ok(DatasetKind::ImageNet),
            "cifar10" | "cifar-10" => Ok(DatasetKind::Cifar10),
            "cola" => Ok(DatasetKind::Cola),
            "mrpc" => Ok(DatasetKind::Mrpc),
            "sst-2" | "sst2" => Ok(DatasetKind::Sst2),
            other => Err(format!("unknown dataset {other:?}")),
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::ImageNet => "ImageNet",
            DatasetKind::Cifar10 => "CIFAR10",
            DatasetKind::Cola => "CoLA",
            DatasetKind::Mrpc => "MRPC",
            DatasetKind::Sst2 => "SST-2",
        };
        f.write_str(name)
    }
}

/// The neural-network families in the paper's workload trace (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// AlexNet on ImageNet subsets.
    AlexNet,
    /// ResNet-18 on CIFAR10.
    ResNet18,
    /// ResNet-50 on ImageNet subsets.
    ResNet50,
    /// VGG-16 on ImageNet subsets and CIFAR10.
    Vgg16,
    /// GoogleNet on CIFAR10.
    GoogleNet,
    /// Inception-V3 on ImageNet subsets.
    InceptionV3,
    /// Pre-trained BERT-base fine-tuning on GLUE tasks (CoLA/MRPC/SST-2).
    BertBase,
}

impl ModelKind {
    /// Every model family, in a stable order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::AlexNet,
        ModelKind::ResNet18,
        ModelKind::ResNet50,
        ModelKind::Vgg16,
        ModelKind::GoogleNet,
        ModelKind::InceptionV3,
        ModelKind::BertBase,
    ];

    /// The static profile for this family.
    #[must_use]
    pub fn profile(self) -> ModelProfile {
        use ModelKind::*;
        match self {
            AlexNet => ModelProfile {
                kind: self,
                params: 61_000_000,
                time_per_sample: 0.30e-3,
                step_overhead: 8.0e-3,
                max_local_batch: 1024,
                optimizer_bytes_per_param: 8.0, // SGD + momentum
            },
            ResNet18 => ModelProfile {
                kind: self,
                params: 11_700_000,
                time_per_sample: 0.90e-3,
                step_overhead: 8.0e-3,
                max_local_batch: 512,
                optimizer_bytes_per_param: 8.0,
            },
            ResNet50 => ModelProfile {
                kind: self,
                params: 25_600_000,
                time_per_sample: 2.8e-3,
                step_overhead: 10.0e-3,
                max_local_batch: 256,
                optimizer_bytes_per_param: 8.0,
            },
            Vgg16 => ModelProfile {
                kind: self,
                params: 138_000_000,
                time_per_sample: 4.5e-3,
                step_overhead: 10.0e-3,
                max_local_batch: 128,
                optimizer_bytes_per_param: 8.0,
            },
            GoogleNet => ModelProfile {
                kind: self,
                params: 6_600_000,
                time_per_sample: 1.2e-3,
                step_overhead: 8.0e-3,
                max_local_batch: 512,
                optimizer_bytes_per_param: 8.0,
            },
            InceptionV3 => ModelProfile {
                kind: self,
                params: 23_800_000,
                time_per_sample: 3.3e-3,
                step_overhead: 10.0e-3,
                max_local_batch: 256,
                optimizer_bytes_per_param: 8.0,
            },
            BertBase => ModelProfile {
                kind: self,
                params: 110_000_000,
                time_per_sample: 15.0e-3,
                step_overhead: 12.0e-3,
                max_local_batch: 64,
                optimizer_bytes_per_param: 16.0, // Adam: m + v in fp32
            },
        }
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    /// Parses the display name (case-insensitive; a few common aliases).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "alexnet" => Ok(ModelKind::AlexNet),
            "resnet18" | "resnet-18" => Ok(ModelKind::ResNet18),
            "resnet50" | "resnet-50" => Ok(ModelKind::ResNet50),
            "vgg16" | "vgg-16" => Ok(ModelKind::Vgg16),
            "googlenet" => Ok(ModelKind::GoogleNet),
            "inceptionv3" | "inception-v3" => Ok(ModelKind::InceptionV3),
            "bert" | "bertbase" | "bert-base" => Ok(ModelKind::BertBase),
            other => Err(format!("unknown model {other:?}")),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelKind::AlexNet => "AlexNet",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::Vgg16 => "VGG16",
            ModelKind::GoogleNet => "GoogleNet",
            ModelKind::InceptionV3 => "InceptionV3",
            ModelKind::BertBase => "BERT",
        };
        f.write_str(name)
    }
}

/// Static performance profile of a model family on one V100.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Which family this profiles.
    pub kind: ModelKind,
    /// Trainable parameter count.
    pub params: u64,
    /// Compute time per training sample (forward + backward) at full
    /// utilisation, seconds.
    pub time_per_sample: f64,
    /// Fixed per-step overhead (kernel launches, data loading, optimiser),
    /// seconds.
    pub step_overhead: f64,
    /// Largest local batch that fits in 16 GB HBM.
    pub max_local_batch: u32,
    /// Optimiser state bytes per parameter (8 for SGD+momentum fp32,
    /// 16 for Adam).
    pub optimizer_bytes_per_param: f64,
}

impl ModelProfile {
    /// Adjusts the family's reference profile for a dataset: per-sample
    /// compute scales with input resolution, and smaller inputs let larger
    /// local batches fit in memory.
    #[must_use]
    pub fn for_dataset(mut self, dataset: DatasetKind) -> ModelProfile {
        self.time_per_sample *= dataset.compute_scale();
        self.max_local_batch *= dataset.batch_scale();
        self
    }

    /// Gradient bytes exchanged per all-reduce (fp32).
    #[must_use]
    pub fn grad_bytes(&self) -> f64 {
        self.params as f64 * 4.0
    }

    /// Checkpoint size in bytes: weights + optimiser state.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> f64 {
        self.params as f64 * (4.0 + self.optimizer_bytes_per_param)
    }

    /// Pure compute time for one step with local batch `b` (no
    /// communication), seconds.
    ///
    /// # Panics
    /// Panics if `b` is zero or exceeds the memory-limited maximum.
    #[must_use]
    pub fn compute_time(&self, b: u32) -> f64 {
        assert!(b > 0, "local batch must be positive");
        assert!(
            b <= self.max_local_batch,
            "{}: local batch {b} exceeds memory limit {}",
            self.kind,
            self.max_local_batch
        );
        self.step_overhead + f64::from(b) * self.time_per_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_sane() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            assert_eq!(p.kind, kind);
            assert!(p.params > 1_000_000, "{kind}");
            assert!(p.time_per_sample > 0.0 && p.time_per_sample < 0.1, "{kind}");
            assert!(p.step_overhead > 0.0 && p.step_overhead < 0.1, "{kind}");
            assert!(p.max_local_batch >= 32, "{kind}");
            assert!(p.grad_bytes() > 0.0);
            assert!(p.checkpoint_bytes() > p.grad_bytes());
        }
    }

    #[test]
    fn vgg_is_biggest_cnn_and_bert_is_slowest() {
        let vgg = ModelKind::Vgg16.profile();
        let bert = ModelKind::BertBase.profile();
        for kind in ModelKind::ALL {
            let p = kind.profile();
            if kind != ModelKind::Vgg16 {
                assert!(p.params <= vgg.params || kind == ModelKind::BertBase);
            }
            assert!(p.time_per_sample <= bert.time_per_sample, "{kind}");
        }
    }

    #[test]
    fn compute_time_is_affine_in_batch() {
        let p = ModelKind::ResNet50.profile();
        let t64 = p.compute_time(64);
        let t128 = p.compute_time(128);
        let slope = (t128 - t64) / 64.0;
        assert!((slope - p.time_per_sample).abs() < 1e-12);
        assert!((p.compute_time(1) - p.step_overhead - p.time_per_sample).abs() < 1e-12);
    }

    #[test]
    fn per_sample_efficiency_improves_with_batch() {
        // Larger batches amortise the fixed overhead.
        let p = ModelKind::ResNet50.profile();
        let eff = |b: u32| f64::from(b) / p.compute_time(b);
        assert!(eff(256) > eff(64));
        assert!(eff(64) > eff(8));
    }

    #[test]
    #[should_panic(expected = "memory limit")]
    fn over_memory_batch_rejected() {
        let _ = ModelKind::BertBase.profile().compute_time(65);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let _ = ModelKind::AlexNet.profile().compute_time(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::ResNet50.to_string(), "ResNet50");
        assert_eq!(ModelKind::BertBase.to_string(), "BERT");
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.to_string().parse::<ModelKind>().unwrap(), kind);
        }
        for dataset in [
            DatasetKind::ImageNet,
            DatasetKind::Cifar10,
            DatasetKind::Cola,
            DatasetKind::Mrpc,
            DatasetKind::Sst2,
        ] {
            assert_eq!(dataset.to_string().parse::<DatasetKind>().unwrap(), dataset);
        }
        assert_eq!("sst2".parse::<DatasetKind>().unwrap(), DatasetKind::Sst2);
        assert_eq!(
            " bert-base ".parse::<ModelKind>().unwrap(),
            ModelKind::BertBase
        );
        assert!("resnet152".parse::<ModelKind>().is_err());
        assert!("mnist".parse::<DatasetKind>().is_err());
    }

    #[test]
    fn bert_uses_adam_state() {
        let bert = ModelKind::BertBase.profile();
        let resnet = ModelKind::ResNet50.profile();
        assert!(bert.optimizer_bytes_per_param > resnet.optimizer_bytes_per_param);
        // BERT checkpoint = 110M * 20 B = 2.2 GB.
        assert!((bert.checkpoint_bytes() - 2.2e9).abs() < 0.1e9);
    }
}
