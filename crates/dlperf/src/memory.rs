//! GPU memory model.
//!
//! A worker's footprint on a 16 GB V100 is weights + gradients + optimiser
//! state (batch-independent) plus activations (linear in the local batch).
//! This module makes the memory budget explicit so the hard-coded
//! `max_local_batch` caps in [`crate::models`] are *checked* against a
//! physical model instead of being folklore, and so schedulers/tests can
//! query headroom for arbitrary batches.

use crate::models::{ModelKind, ModelProfile};
use serde::{Deserialize, Serialize};

/// V100 HBM2 capacity, bytes.
pub const V100_MEMORY_BYTES: f64 = 16.0e9;

/// Fraction of HBM usable by the framework (CUDA context, fragmentation,
/// NCCL buffers eat the rest).
pub const USABLE_FRACTION: f64 = 0.92;

/// Per-model activation memory per sample at the family's reference input
/// resolution, bytes. Public folklore figures (fp32 training, no
/// checkpointing): activation-heavy CNNs like VGG dwarf their parameter
/// memory; transformer activations scale with sequence length.
#[must_use]
pub fn activation_bytes_per_sample(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::AlexNet => 5.0e6,
        ModelKind::ResNet18 => 24.0e6,
        ModelKind::ResNet50 => 48.0e6,
        ModelKind::Vgg16 => 95.0e6,
        ModelKind::GoogleNet => 22.0e6,
        ModelKind::InceptionV3 => 45.0e6,
        ModelKind::BertBase => 180.0e6, // seq 128
    }
}

/// Memory footprint of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Weights + gradients + optimiser state, bytes (batch-independent).
    pub static_bytes: f64,
    /// Activations for the given local batch, bytes.
    pub activation_bytes: f64,
}

impl MemoryFootprint {
    /// Footprint of `profile` training with local batch `b` at a given
    /// activation scale (dataset resolution relative to the family's
    /// reference — CIFAR at 32×32 uses ~1/11 of ImageNet's activations,
    /// mirroring [`crate::models::DatasetKind::compute_scale`]).
    #[must_use]
    pub fn of(profile: &ModelProfile, local_batch: u32, activation_scale: f64) -> Self {
        let params = profile.params as f64;
        MemoryFootprint {
            // weights (4 B) + gradients (4 B) + optimiser state.
            static_bytes: params * (8.0 + profile.optimizer_bytes_per_param),
            activation_bytes: f64::from(local_batch)
                * activation_bytes_per_sample(profile.kind)
                * activation_scale,
        }
    }

    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.static_bytes + self.activation_bytes
    }

    /// Whether this worker fits on a V100.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.total() <= V100_MEMORY_BYTES * USABLE_FRACTION
    }
}

/// Largest local batch the memory model admits for a profile (at the given
/// activation scale).
#[must_use]
pub fn memory_limited_batch(profile: &ModelProfile, activation_scale: f64) -> u32 {
    let budget = V100_MEMORY_BYTES * USABLE_FRACTION
        - MemoryFootprint::of(profile, 1, activation_scale).static_bytes;
    if budget <= 0.0 {
        return 0;
    }
    let per_sample = activation_bytes_per_sample(profile.kind) * activation_scale;
    (budget / per_sample) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::DatasetKind;

    #[test]
    fn every_reference_cap_fits_the_memory_model() {
        // The hard-coded max_local_batch of every family must be admitted
        // by the physical model at the reference resolution.
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let fp = MemoryFootprint::of(&p, p.max_local_batch, 1.0);
            assert!(
                fp.fits(),
                "{kind}: cap {} needs {:.1} GB",
                p.max_local_batch,
                fp.total() / 1e9
            );
        }
    }

    #[test]
    fn cifar_caps_fit_at_reduced_activation_scale() {
        for kind in [ModelKind::ResNet18, ModelKind::Vgg16, ModelKind::GoogleNet] {
            let p = kind.profile().for_dataset(DatasetKind::Cifar10);
            let fp = MemoryFootprint::of(&p, p.max_local_batch, 0.09);
            assert!(
                fp.fits(),
                "{kind}/CIFAR: cap {} needs {:.1} GB",
                p.max_local_batch,
                fp.total() / 1e9
            );
        }
    }

    #[test]
    fn footprint_grows_linearly_with_batch() {
        let p = ModelKind::ResNet50.profile();
        let a = MemoryFootprint::of(&p, 64, 1.0);
        let b = MemoryFootprint::of(&p, 128, 1.0);
        assert_eq!(a.static_bytes, b.static_bytes);
        assert!((b.activation_bytes / a.activation_bytes - 2.0).abs() < 1e-12);
        assert!(b.total() > a.total());
    }

    #[test]
    fn memory_limited_batch_brackets_the_caps() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let limit = memory_limited_batch(&p, 1.0);
            assert!(
                limit >= p.max_local_batch,
                "{kind}: model admits {limit} < configured cap {}",
                p.max_local_batch
            );
            // The configured cap is not absurdly conservative either
            // (within ~8x of the physical bound).
            assert!(
                limit <= p.max_local_batch * 8,
                "{kind}: configured cap {} wastes memory (model admits {limit})",
                p.max_local_batch
            );
        }
    }

    #[test]
    fn doubled_batch_beyond_the_physical_limit_does_not_fit() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let limit = memory_limited_batch(&p, 1.0);
            let fp = MemoryFootprint::of(&p, limit * 2 + 1, 1.0);
            assert!(!fp.fits(), "{kind}");
        }
    }

    #[test]
    fn vgg_activations_dominate_its_statics() {
        let p = ModelKind::Vgg16.profile();
        let fp = MemoryFootprint::of(&p, p.max_local_batch, 1.0);
        assert!(fp.activation_bytes > fp.static_bytes);
    }
}
