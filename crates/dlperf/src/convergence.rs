//! Statistical-efficiency convergence model.
//!
//! Real DL training converges after a number of epochs that depends on the
//! batch-size *trajectory*. We model a job's state as an accumulated
//! **effective progress** `p`, measured in *reference epochs* — epochs at
//! the job's submitted batch size `B₀` with a correctly scaled learning
//! rate. One wall epoch at global batch `B` contributes
//!
//! ```text
//! η(B) = (1 + B₀/B_n) / (1 + B/B_n)          (LR linearly scaled)
//! ```
//!
//! the gradient-noise-scale shape of Hoffer et al. / Smith et al. cited in
//! §3.3.2: batches below the noise scale `B_n` are sample-efficient, larger
//! batches waste samples. Without LR scaling, large batches are penalised
//! much harder (reproducing Figure 3). An *abrupt* batch-size jump of more
//! than one doubling destroys part of the accumulated progress (the loss
//! spike of Figure 13); a gradual ×2-per-event trajectory does not
//! (Figure 14) — which is exactly why ONES's scale-up policy doubles the
//! limit `R` instead of jumping.
//!
//! Loss and accuracy are deterministic functions of `p`, so the observable
//! effect of a destroyed-progress spike is a loss jump followed by a
//! recovery phase, just like the paper's plots.

use serde::{Deserialize, Serialize};

/// Per-job convergence parameters (ground truth inside the simulator; the
/// schedulers never see these — they only observe loss/accuracy/epochs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceModel {
    /// The user-submitted reference global batch size B₀.
    pub reference_batch: u32,
    /// Gradient noise scale `B_n`: the batch size beyond which sample
    /// efficiency halves.
    pub noise_scale: f64,
    /// Initial training loss L₀ (before the first step).
    pub initial_loss: f64,
    /// Asymptotic loss L_∞.
    pub final_loss: f64,
    /// Best reachable validation accuracy A_max.
    pub max_accuracy: f64,
    /// Target validation accuracy (job ends after `patience` consecutive
    /// epochs at or above it, §4.1).
    pub target_accuracy: f64,
    /// Progress (reference epochs) at which accuracy reaches ~63 % of
    /// A_max; controls the convergence speed.
    pub progress_scale: f64,
    /// Reference epochs of progress destroyed per *extra* octave of an
    /// abrupt batch-size jump (beyond the first, penalty-free doubling).
    pub spike_penalty_per_octave: f64,
    /// Consecutive above-target epochs required to declare convergence.
    pub patience: u32,
    /// Penalty exponent for scaling the batch without scaling the learning
    /// rate (Figure 3): efficiency is multiplied by (B₀/B)^unscaled_lr_penalty
    /// when B > B₀.
    pub unscaled_lr_penalty: f64,
}

impl ConvergenceModel {
    /// A reasonable CNN-like default used by tests and examples:
    /// B₀ = 256, noise scale 2048, target 0.90 of max 0.94.
    #[must_use]
    pub fn example() -> Self {
        ConvergenceModel {
            reference_batch: 256,
            noise_scale: 2048.0,
            initial_loss: 2.5,
            final_loss: 0.05,
            max_accuracy: 0.94,
            target_accuracy: 0.90,
            progress_scale: 12.0,
            spike_penalty_per_octave: 2.0,
            patience: 10,
            unscaled_lr_penalty: 0.75,
        }
    }

    /// Efficiency η(B) of one epoch at global batch `B` relative to a
    /// reference epoch.
    ///
    /// With linear LR scaling (§3.3.2's Goyal/Smith regime, what ONES
    /// always applies): per-epoch progress is preserved up to the gradient
    /// noise scale `B_n`, then falls off with the GNS shape `2/(1 + B/B_n)`
    /// — batches inside the safe range are free, extreme batches still
    /// waste samples.
    ///
    /// Without LR scaling (Figure 3's fixed-local-batch regime): the raw
    /// GNS sample-efficiency `(B_n + B₀)/(B_n + B)` applies from the
    /// reference batch onwards, multiplied by an extra
    /// `(B₀/B)^unscaled_lr_penalty` — large batches with an unscaled
    /// learning rate converge markedly slower.
    #[must_use]
    pub fn efficiency(&self, batch: u32, lr_scaled: bool) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let b = f64::from(batch);
        let b0 = f64::from(self.reference_batch);
        let bn = self.noise_scale;
        if lr_scaled {
            let eff = |x: f64| if x <= bn { 1.0 } else { 2.0 / (1.0 + x / bn) };
            eff(b) / eff(b0)
        } else {
            let mut eta = (bn + b0) / (bn + b);
            if b > b0 {
                eta *= (b0 / b).powf(self.unscaled_lr_penalty);
            } else {
                eta = eta.min(1.0);
            }
            eta
        }
    }

    /// Training loss as a function of effective progress.
    #[must_use]
    pub fn loss_at(&self, progress: f64) -> f64 {
        let p = progress.max(0.0);
        self.final_loss + (self.initial_loss - self.final_loss) * (-p / self.progress_scale).exp()
    }

    /// Validation accuracy as a function of effective progress.
    #[must_use]
    pub fn accuracy_at(&self, progress: f64) -> f64 {
        let p = progress.max(0.0);
        self.max_accuracy * (1.0 - (-p / self.progress_scale).exp())
    }

    /// Progress at which accuracy first reaches the target.
    ///
    /// # Panics
    /// Panics if the target is unreachable (≥ A_max).
    #[must_use]
    pub fn progress_to_target(&self) -> f64 {
        assert!(
            self.target_accuracy < self.max_accuracy,
            "target accuracy {} unreachable (max {})",
            self.target_accuracy,
            self.max_accuracy
        );
        -self.progress_scale * (1.0 - self.target_accuracy / self.max_accuracy).ln()
    }

    /// Total *reference epochs* a job needs from scratch: progress to reach
    /// the target plus the patience window.
    #[must_use]
    pub fn total_reference_epochs(&self) -> f64 {
        self.progress_to_target() + f64::from(self.patience)
    }

    /// Progress destroyed by an abrupt batch change `old → new`.
    ///
    /// The first doubling (or any decrease) is free; each extra octave of
    /// increase costs [`ConvergenceModel::spike_penalty_per_octave`]
    /// reference epochs.
    #[must_use]
    pub fn scaling_penalty(&self, old_batch: u32, new_batch: u32) -> f64 {
        assert!(old_batch > 0 && new_batch > 0);
        if new_batch <= old_batch * 2 {
            return 0.0;
        }
        let octaves = (f64::from(new_batch) / f64::from(old_batch)).log2();
        self.spike_penalty_per_octave * (octaves - 1.0)
    }
}

/// Mutable convergence state of one running job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceState {
    model: ConvergenceModel,
    progress: f64,
    epochs_done: u32,
    consec_above_target: u32,
    last_batch: Option<u32>,
}

impl ConvergenceState {
    /// Fresh state for a job about to start training.
    #[must_use]
    pub fn new(model: ConvergenceModel) -> Self {
        ConvergenceState {
            model,
            progress: 0.0,
            epochs_done: 0,
            consec_above_target: 0,
            last_batch: None,
        }
    }

    /// The underlying (ground-truth) model.
    #[must_use]
    pub fn model(&self) -> &ConvergenceModel {
        &self.model
    }

    /// Accumulated effective progress in reference epochs.
    #[must_use]
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Wall epochs completed.
    #[must_use]
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// Current training loss.
    #[must_use]
    pub fn loss(&self) -> f64 {
        self.model.loss_at(self.progress)
    }

    /// Current validation accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.model.accuracy_at(self.progress)
    }

    /// Whether the job has converged (patience satisfied).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.consec_above_target >= self.model.patience
    }

    /// Registers a batch-size change *before* the next epoch. Abrupt jumps
    /// destroy progress (Figure 13); gradual doubling is free (Figure 14).
    /// Returns the progress destroyed.
    pub fn on_batch_change(&mut self, new_batch: u32) -> f64 {
        let penalty = match self.last_batch {
            Some(old) if old != new_batch => self.model.scaling_penalty(old, new_batch),
            _ => 0.0,
        };
        if penalty > 0.0 {
            self.progress = (self.progress - penalty).max(0.0);
            // A genuine loss spike also breaks an accuracy plateau streak.
            self.consec_above_target = 0;
        }
        self.last_batch = Some(new_batch);
        penalty
    }

    /// Advances one full wall epoch at global batch `batch`.
    ///
    /// `lr_scaled` is true when the executor applied linear LR scaling for
    /// this batch size (ONES always does; Figure 3's fixed-local-batch
    /// baseline does not).
    pub fn advance_epoch(&mut self, batch: u32, lr_scaled: bool) {
        self.advance_fraction(batch, lr_scaled, 1.0);
    }

    /// Advances a fraction of an epoch (used when a job is preempted
    /// mid-epoch: progress is pro-rated by samples actually processed).
    pub fn advance_fraction(&mut self, batch: u32, lr_scaled: bool, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        if self.last_batch != Some(batch) {
            self.on_batch_change(batch);
        }
        self.progress += self.model.efficiency(batch, lr_scaled) * fraction;
        if fraction >= 1.0 {
            self.epochs_done += 1;
            if self.accuracy() >= self.model.target_accuracy {
                self.consec_above_target += 1;
            } else {
                self.consec_above_target = 0;
            }
        }
    }

    /// Ground-truth remaining wall epochs if the job keeps running at
    /// `batch` (with scaled LR) until convergence.
    #[must_use]
    pub fn remaining_epochs_at(&self, batch: u32) -> f64 {
        let eta = self.model.efficiency(batch, true);
        let to_target = (self.model.progress_to_target() - self.progress).max(0.0) / eta;
        let patience_left =
            f64::from(self.model.patience - self.consec_above_target.min(self.model.patience));
        to_target + patience_left
    }

    /// Ground-truth completion fraction ρ ∈ (0, 1]: progress relative to
    /// the total reference-epoch requirement.
    #[must_use]
    pub fn completion_fraction(&self) -> f64 {
        (self.progress / self.model.total_reference_epochs()).clamp(1e-6, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ConvergenceState {
        ConvergenceState::new(ConvergenceModel::example())
    }

    #[test]
    fn efficiency_is_one_at_reference_batch() {
        let m = ConvergenceModel::example();
        assert!((m.efficiency(256, true) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_flat_in_safe_range_then_decays() {
        let m = ConvergenceModel::example(); // B_n = 2048
                                             // LR-scaled training is progress-equivalent within the safe range
                                             // (the §3.3.2 assumption ONES relies on).
        assert_eq!(m.efficiency(128, true), 1.0);
        assert_eq!(m.efficiency(256, true), 1.0);
        assert_eq!(m.efficiency(2048, true), 1.0);
        // Beyond the gradient noise scale, diminishing returns.
        assert!(m.efficiency(4096, true) < 1.0);
        assert!(m.efficiency(4096, true) > m.efficiency(8192, true));
        assert!(m.efficiency(8192, true) < 0.5);
    }

    #[test]
    fn figure3_unscaled_lr_much_worse() {
        let m = ConvergenceModel::example();
        // Fixed local batch 256 on 8 GPUs -> global 2048 without LR scaling.
        let scaled = m.efficiency(2048, true);
        let unscaled = m.efficiency(2048, false);
        assert!(
            unscaled < 0.5 * scaled,
            "scaled={scaled}, unscaled={unscaled}"
        );
        // No penalty below the reference batch.
        assert_eq!(m.efficiency(128, false), m.efficiency(128, true));
    }

    #[test]
    fn loss_decreases_and_accuracy_increases_with_progress() {
        let m = ConvergenceModel::example();
        assert!(m.loss_at(0.0) > m.loss_at(10.0));
        assert!(m.loss_at(10.0) > m.loss_at(50.0));
        assert!((m.loss_at(0.0) - m.initial_loss).abs() < 1e-9);
        assert!(m.accuracy_at(0.0) < 1e-9);
        assert!(m.accuracy_at(10.0) < m.accuracy_at(50.0));
        assert!(m.accuracy_at(1e6) <= m.max_accuracy);
    }

    #[test]
    fn progress_to_target_consistent_with_accuracy() {
        let m = ConvergenceModel::example();
        let p = m.progress_to_target();
        assert!((m.accuracy_at(p) - m.target_accuracy).abs() < 1e-9);
        assert!(m.total_reference_epochs() > p);
    }

    #[test]
    fn converges_after_patience_window() {
        let mut s = state();
        let p_needed = s.model().progress_to_target().ceil() as u32;
        for _ in 0..p_needed {
            s.advance_epoch(256, true);
            assert!(!s.converged());
        }
        // Now above target; needs `patience` more epochs.
        let mut extra = 0;
        while !s.converged() {
            s.advance_epoch(256, true);
            extra += 1;
            assert!(extra <= 11, "patience window overrun");
        }
        assert!(extra >= 9);
        assert!(s.accuracy() >= s.model().target_accuracy);
    }

    #[test]
    fn figure13_abrupt_jump_spikes_loss() {
        let mut s = state();
        for _ in 0..30 {
            s.advance_epoch(256, true);
        }
        let loss_before = s.loss();
        let destroyed = s.on_batch_change(4096); // 4 octaves
        assert!(destroyed > 0.0, "abrupt jump must destroy progress");
        let loss_after = s.loss();
        assert!(
            loss_after > loss_before * 1.2,
            "loss should spike: {loss_before} -> {loss_after}"
        );
        // Training recovers with further epochs.
        for _ in 0..20 {
            s.advance_epoch(4096, true);
        }
        assert!(s.loss() < loss_after);
    }

    #[test]
    fn figure14_gradual_doubling_is_free() {
        let mut s = state();
        for _ in 0..30 {
            s.advance_epoch(256, true);
        }
        assert_eq!(s.on_batch_change(512), 0.0);
        assert_eq!(s.on_batch_change(1024), 0.0);
        assert_eq!(s.on_batch_change(2048), 0.0);
        assert_eq!(s.on_batch_change(4096), 0.0);
        // And a gradual path reaches 4096 with strictly more progress than
        // an abrupt one.
        let mut abrupt = state();
        for _ in 0..30 {
            abrupt.advance_epoch(256, true);
        }
        abrupt.on_batch_change(4096);
        assert!(s.progress() > abrupt.progress());
    }

    #[test]
    fn scaling_down_is_free() {
        let m = ConvergenceModel::example();
        assert_eq!(m.scaling_penalty(1024, 256), 0.0);
        assert_eq!(m.scaling_penalty(256, 256), 0.0);
        assert_eq!(m.scaling_penalty(256, 512), 0.0);
        assert!(m.scaling_penalty(256, 1024) > 0.0);
    }

    #[test]
    fn remaining_epochs_shrink_as_training_proceeds() {
        let mut s = state();
        let r0 = s.remaining_epochs_at(256);
        for _ in 0..10 {
            s.advance_epoch(256, true);
        }
        let r1 = s.remaining_epochs_at(256);
        assert!(r1 < r0 - 9.0, "r0={r0}, r1={r1}");
        // Bigger batch -> more wall epochs remaining.
        assert!(s.remaining_epochs_at(4096) > s.remaining_epochs_at(256));
    }

    #[test]
    fn completion_fraction_monotone_and_bounded() {
        let mut s = state();
        let mut prev = s.completion_fraction();
        assert!(prev > 0.0);
        for _ in 0..100 {
            s.advance_epoch(256, true);
            let f = s.completion_fraction();
            assert!(f >= prev);
            assert!(f <= 1.0);
            prev = f;
        }
    }

    #[test]
    fn partial_epoch_prorates_progress() {
        let mut a = state();
        let mut b = state();
        a.advance_epoch(256, true);
        b.advance_fraction(256, true, 0.5);
        assert!((b.progress() - a.progress() / 2.0).abs() < 1e-12);
        // Partial epochs do not count as completed wall epochs.
        assert_eq!(b.epochs_done(), 0);
        assert_eq!(a.epochs_done(), 1);
    }
}
