//! Property-based tests for the statistics crate: distribution supports
//! and moments, regression recovery, quantile monotonicity and Wilcoxon
//! invariances that must hold for arbitrary data.

use ones_stats::desc::{fraction_leq, quantile};
use ones_stats::dist::{ln_gamma, Gamma, Normal};
use ones_stats::{signed_rank_test, Alternative, Beta, LinearRegression};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Γ(x+1) = x·Γ(x) — the functional equation pins ln_gamma everywhere.
    #[test]
    fn ln_gamma_functional_equation(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
    }

    /// Gamma samples are positive; empirical mean within tolerance of kθ.
    #[test]
    fn gamma_sampling_support_and_mean(shape in 0.3f64..20.0, scale in 0.1f64..5.0) {
        let g = Gamma::new(shape, scale);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / f64::from(n);
        let tol = 5.0 * (g.variance() / f64::from(n)).sqrt() + 1e-6;
        prop_assert!((mean - g.mean()).abs() < tol, "mean {mean} vs {} ± {tol}", g.mean());
    }

    /// The Beta mode sits between 0 and 1 and the variance is bounded by
    /// the Bhatia–Davis-style cap m(1−m).
    #[test]
    fn beta_moment_relations(alpha in 1.0f64..100.0, beta in 1.0f64..100.0) {
        let d = Beta::new(alpha, beta);
        let m = d.mean();
        prop_assert!(m > 0.0 && m < 1.0);
        prop_assert!(d.variance() <= m * (1.0 - m) + 1e-12);
        let mode = d.mode();
        prop_assert!((0.0..=1.0).contains(&mode));
    }

    /// Normal CDF is monotone and symmetric: Φ(z) + Φ(−z) = 1.
    #[test]
    fn normal_cdf_symmetry(z in -6.0f64..6.0) {
        let p = Normal::std_cdf(z);
        let q = Normal::std_cdf(-z);
        prop_assert!((p + q - 1.0).abs() < 1e-6);
        prop_assert!(Normal::std_cdf(z + 0.1) >= p);
    }

    /// Quantiles are monotone in the level and bounded by the extremes.
    #[test]
    fn quantile_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                          q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        prop_assert!(quantile(&xs, 0.0) <= a + 1e-9);
        prop_assert!(b <= quantile(&xs, 1.0) + 1e-9);
    }

    /// fraction_leq is a proper CDF evaluation: monotone in the threshold.
    #[test]
    fn fraction_leq_monotone(xs in proptest::collection::vec(0.0f64..1e4, 1..100),
                              t1 in 0.0f64..1e4, t2 in 0.0f64..1e4) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(fraction_leq(&xs, lo) <= fraction_leq(&xs, hi));
    }

    /// Regression recovers an arbitrary 3-feature linear function exactly
    /// (no noise, well-conditioned design).
    #[test]
    fn regression_recovers_linear_functions(
        w in proptest::array::uniform3(-10.0f64..10.0),
        b in -10.0f64..10.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let i = f64::from(i);
                vec![i, (i * 7.3) % 11.0, (i * i) % 5.0]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| w[0] * x[0] + w[1] * x[1] + w[2] * x[2] + b)
            .collect();
        let m = LinearRegression::fit(&xs, &ys, 0.0).expect("well-conditioned");
        for (got, want) in m.weights().iter().zip(&w) {
            prop_assert!((got - want).abs() < 1e-6, "weights {:?} vs {:?}", m.weights(), w);
        }
        prop_assert!((m.intercept() - b).abs() < 1e-5);
    }

    /// Wilcoxon anti-symmetry: swapping the samples swaps the tails.
    #[test]
    fn wilcoxon_antisymmetry(
        diffs in proptest::collection::vec(-100i32..100, 8..60),
    ) {
        let x: Vec<f64> = diffs.iter().map(|&d| 100.0 + f64::from(d)).collect();
        let y: Vec<f64> = vec![100.0; x.len()];
        let usable = diffs.iter().filter(|&&d| d != 0).count();
        prop_assume!(usable >= 6);
        let less = signed_rank_test(&x, &y, Alternative::Less);
        let greater = signed_rank_test(&y, &x, Alternative::Greater);
        prop_assert!((less.p_value - greater.p_value).abs() < 1e-6);
        prop_assert_eq!(less.n_used, greater.n_used);
    }

    /// The two-sided p-value is always in (0, 1] and at most ~twice the
    /// smaller one-sided tail.
    #[test]
    fn wilcoxon_two_sided_bounds(
        diffs in proptest::collection::vec(-50i32..50, 10..40),
    ) {
        let x: Vec<f64> = diffs.iter().map(|&d| 10.0 + f64::from(d) / 10.0).collect();
        let y: Vec<f64> = vec![10.0; x.len()];
        prop_assume!(diffs.iter().filter(|&&d| d != 0).count() >= 6);
        let two = signed_rank_test(&x, &y, Alternative::TwoSided);
        prop_assert!(two.p_value > 0.0 && two.p_value <= 1.0);
        let less = signed_rank_test(&x, &y, Alternative::Less);
        let greater = signed_rank_test(&x, &y, Alternative::Greater);
        let min_tail = less.p_value.min(greater.p_value);
        prop_assert!(two.p_value <= 2.0 * min_tail + 0.05);
    }
}
