//! Descriptive statistics: summaries, quantiles, box plots and empirical
//! CDFs.
//!
//! Figure 15 of the paper reports JCT / execution-time / queueing-time
//! comparisons three ways: bar charts of the mean, box plots, and cumulative
//! frequency curves. [`Summary`], [`BoxPlot`] and [`ecdf`] compute exactly
//! those series from a vector of per-job measurements.

use serde::{Deserialize, Serialize};

/// Mean of a slice. Returns 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance. Returns 0 for slices shorter than 2.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated quantile (type 7, the numpy default).
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside [0, 1].
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Full descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes the summary.
    ///
    /// # Panics
    /// Panics on an empty input.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Summary of empty sample");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            sd: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            median: median(xs),
            p25: quantile(xs, 0.25),
            p75: quantile(xs, 0.75),
            p90: quantile(xs, 0.90),
            p99: quantile(xs, 0.99),
        }
    }
}

/// Tukey box-plot statistics: quartiles, 1.5·IQR whiskers, and outliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// Median (box line).
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Lowest observation within q1 − 1.5·IQR.
    pub whisker_lo: f64,
    /// Highest observation within q3 + 1.5·IQR.
    pub whisker_hi: f64,
    /// Observations beyond the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxPlot {
    /// Computes Tukey box-plot statistics.
    ///
    /// # Panics
    /// Panics on an empty input.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "BoxPlot of empty sample");
        let q1 = quantile(xs, 0.25);
        let q3 = quantile(xs, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = xs
            .iter()
            .copied()
            .filter(|&x| x >= lo_fence)
            .fold(f64::INFINITY, f64::min);
        let whisker_hi = xs
            .iter()
            .copied()
            .filter(|&x| x <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut outliers: Vec<f64> = xs
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        outliers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        BoxPlot {
            q1,
            median: median(xs),
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }
}

/// Empirical CDF: returns `(x, F(x))` pairs at each distinct observation,
/// sorted by x, with F reaching exactly 1.0 at the maximum.
#[must_use]
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &x) in sorted.iter().enumerate() {
        let f = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == x => last.1 = f,
            _ => out.push((x, f)),
        }
    }
    out
}

/// Fraction of observations ≤ `threshold` — e.g. "the fraction of jobs
/// completed within 200 s is 86 %" from §4.2.
#[must_use]
pub fn fraction_leq(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x <= threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p90 && s.p90 < s.p99);
    }

    #[test]
    fn boxplot_detects_outliers() {
        let mut xs: Vec<f64> = (1..=20).map(f64::from).collect();
        xs.push(1000.0);
        let b = BoxPlot::of(&xs);
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 20.0);
        assert!(b.q1 < b.median && b.median < b.q3);
    }

    #[test]
    fn boxplot_no_outliers_whiskers_are_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxPlot::of(&xs);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn ecdf_reaches_one_and_is_monotone() {
        let xs = [3.0, 1.0, 2.0, 2.0, 5.0];
        let curve = ecdf(&xs);
        assert_eq!(curve.len(), 4); // distinct values: 1, 2, 3, 5
        assert_eq!(curve.last().unwrap().1, 1.0);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        // F(2) = 3/5 since two duplicates collapse to the higher step.
        let f2 = curve.iter().find(|p| p.0 == 2.0).unwrap().1;
        assert!((f2 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ecdf_empty_is_empty() {
        assert!(ecdf(&[]).is_empty());
    }

    #[test]
    fn fraction_leq_matches_hand_count() {
        let xs = [100.0, 150.0, 250.0, 400.0];
        assert!((fraction_leq(&xs, 200.0) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_leq(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
