//! Probability distributions.
//!
//! The ONES predictor models a job's training progress ρ ∈ (0, 1) as a
//! Beta(α, β) random variable (paper Eq 6). Algorithm 1 repeatedly samples
//! from these Betas, so we need a fast exact sampler: Beta is generated from
//! two Gammas, and Gamma uses the Marsaglia–Tsang squeeze method (with the
//! standard α < 1 boost). Samplers are generic over `rand::Rng`, so they
//! work with the deterministic [`ones_simcore::DetRng`](https://docs.rs) stream.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Natural log of the Gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals, which is far more than the
/// predictor needs.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The Gamma(shape, scale) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates Gamma(shape k, scale θ). Panics unless both are positive.
    #[must_use]
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && scale > 0.0,
            "Gamma parameters must be positive: shape={shape}, scale={scale}"
        );
        Gamma { shape, scale }
    }

    /// Shape parameter k.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Mean kθ.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Variance kθ².
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Draws one sample (Marsaglia–Tsang, 2000).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * standard_gamma(self.shape, rng)
    }
}

/// Marsaglia–Tsang sampler for Gamma(shape, 1).
fn standard_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return standard_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = loop {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > 0.0 {
                break (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        };
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// The Beta(α, β) distribution on (0, 1).
///
/// In ONES, α counts (approximately) the epochs a job has already processed
/// and β the predicted epochs still to process, so the mean α/(α+β) is the
/// predicted completion fraction. The paper thresholds both parameters at 1
/// to keep the density unimodal; [`Beta::new_clamped`] applies exactly that
/// rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates Beta(α, β). Panics unless both parameters are positive.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "Beta parameters must be positive: alpha={alpha}, beta={beta}"
        );
        Beta { alpha, beta }
    }

    /// Creates Beta(max(α, 1), max(β, 1)) — the paper's unimodality clamp
    /// (§3.2.1: "We apply a threshold function to both α and β to guarantee
    /// α, β ≥ 1").
    #[must_use]
    pub fn new_clamped(alpha: f64, beta: f64) -> Self {
        Beta::new(alpha.max(1.0), beta.max(1.0))
    }

    /// α parameter.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// β parameter.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean α/(α+β).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Variance αβ / ((α+β)²(α+β+1)).
    #[must_use]
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Mode (α−1)/(α+β−2) for α, β > 1; falls back to the mean otherwise.
    #[must_use]
    pub fn mode(&self) -> f64 {
        if self.alpha > 1.0 && self.beta > 1.0 {
            (self.alpha - 1.0) / (self.alpha + self.beta - 2.0)
        } else {
            self.mean()
        }
    }

    /// Probability density at `x` ∈ (0, 1); zero outside.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 || x >= 1.0 {
            return 0.0;
        }
        let ln_b = ln_gamma(self.alpha) + ln_gamma(self.beta) - ln_gamma(self.alpha + self.beta);
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln() - ln_b).exp()
    }

    /// Draws one sample in (0, 1) via the two-Gamma construction, clamped
    /// away from the exact endpoints so `1/ρ` in Eq 7 never divides by zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = standard_gamma(self.alpha, rng);
        let y = standard_gamma(self.beta, rng);
        (x / (x + y)).clamp(1e-12, 1.0 - 1e-12)
    }

    /// Central interval [lo, hi] covering `mass` of the distribution,
    /// estimated by Monte-Carlo quantiles (used for Figure 6-style
    /// confidence bands).
    pub fn credible_interval<R: Rng + ?Sized>(
        &self,
        mass: f64,
        n: usize,
        rng: &mut R,
    ) -> (f64, f64) {
        assert!((0.0..1.0).contains(&mass) && n >= 10);
        let mut samples: Vec<f64> = (0..n).map(|_| self.sample(rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tail = (1.0 - mass) / 2.0;
        let lo = samples[((n as f64) * tail) as usize];
        let hi = samples[(((n as f64) * (1.0 - tail)) as usize).min(n - 1)];
        (lo, hi)
    }
}

/// The Normal(μ, σ) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates Normal(μ, σ). Panics if σ < 0.
    #[must_use]
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Normal { mean, sd }
    }

    /// Mean μ.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation σ.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Standard normal CDF Φ(z), via the complementary error function.
    #[must_use]
    pub fn std_cdf(z: f64) -> f64 {
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    /// CDF at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        Self::std_cdf((x - self.mean) / self.sd)
    }

    /// Draws one sample (Box–Muller).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen::<f64>();
        self.mean + self.sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Complementary error function, Numerical-Recipes rational Chebyshev fit
/// (max error ≈ 1.2e-7, ample for p-values down to ~1e-12 in log space we
/// do not need).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-10, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_sample_moments() {
        let g = Gamma::new(3.0, 2.0);
        let mut r = rng();
        let n = 60_000;
        let s: Vec<f64> = (0..n).map(|_| g.sample(&mut r)).collect();
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - g.mean()).abs() < 0.1, "mean {mean} vs {}", g.mean());
        assert!(
            (var - g.variance()).abs() < 0.5,
            "var {var} vs {}",
            g.variance()
        );
    }

    #[test]
    fn gamma_small_shape_moments() {
        let g = Gamma::new(0.4, 1.0);
        let mut r = rng();
        let n = 80_000;
        let mean = (0..n).map(|_| g.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.4).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn beta_moments_and_sampling_agree() {
        let b = Beta::new(4.0, 6.0);
        assert!((b.mean() - 0.4).abs() < 1e-12);
        let mut r = rng();
        let n = 60_000;
        let s: Vec<f64> = (0..n).map(|_| b.sample(&mut r)).collect();
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - b.mean()).abs() < 0.01);
        assert!((var - b.variance()).abs() < 0.01);
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_clamp_enforces_unimodality() {
        let b = Beta::new_clamped(0.2, 0.3);
        assert_eq!(b.alpha(), 1.0);
        assert_eq!(b.beta(), 1.0);
        let b2 = Beta::new_clamped(3.0, 0.5);
        assert_eq!(b2.alpha(), 3.0);
        assert_eq!(b2.beta(), 1.0);
    }

    #[test]
    fn beta_pdf_integrates_to_one() {
        let b = Beta::new(2.5, 3.5);
        let n = 20_000;
        let h = 1.0 / n as f64;
        let integral: f64 = (1..n).map(|i| b.pdf(i as f64 * h) * h).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn beta_pdf_zero_outside_support() {
        let b = Beta::new(2.0, 2.0);
        assert_eq!(b.pdf(-0.1), 0.0);
        assert_eq!(b.pdf(1.1), 0.0);
        assert_eq!(b.pdf(0.0), 0.0);
        assert_eq!(b.pdf(1.0), 0.0);
    }

    #[test]
    fn beta_mode_unimodal_case() {
        let b = Beta::new(3.0, 2.0);
        assert!((b.mode() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn beta_credible_interval_brackets_mean() {
        let b = Beta::new(10.0, 10.0);
        let mut r = rng();
        let (lo, hi) = b.credible_interval(0.9, 4000, &mut r);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.5, "interval too wide: [{lo}, {hi}]");
    }

    #[test]
    fn normal_cdf_key_points() {
        assert!((Normal::std_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((Normal::std_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((Normal::std_cdf(-1.96) - 0.025).abs() < 1e-3);
        let n = Normal::new(10.0, 2.0);
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn degenerate_normal_is_step() {
        let n = Normal::new(5.0, 0.0);
        assert_eq!(n.cdf(4.999), 0.0);
        assert_eq!(n.cdf(5.0), 1.0);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn beta_rejects_nonpositive() {
        let _ = Beta::new(0.0, 1.0);
    }
}
