//! Wilcoxon signed-rank test.
//!
//! Table 4 of the paper compares per-job JCTs of ONES against each baseline
//! with non-parametric Wilcoxon tests, reporting both a two-sided p-value
//! (hypothesis: the distributions are equivalent) and a one-sided "negative"
//! p-value (hypothesis: ONES's JCTs are *smaller*; the paper accepts when p
//! is close to 1 under their sign convention, i.e. the `greater` tail of the
//! statistic built from `x − y`).
//!
//! This implementation uses the standard normal approximation with
//! continuity correction and the tie/zero handling of Pratt's method's
//! simpler sibling (Wilcoxon's original zero-discard rule, which is what
//! scipy's default `zero_method="wilcox"` does), plus the usual tie
//! correction to the variance.

use crate::dist::Normal;
use serde::{Deserialize, Serialize};

/// Which tail of the test to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alternative {
    /// H1: the paired distributions differ.
    TwoSided,
    /// H1: `x` tends to be smaller than `y` (left tail of W⁺).
    Less,
    /// H1: `x` tends to be greater than `y` (right tail of W⁺).
    Greater,
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences, W⁺.
    pub w_plus: f64,
    /// Sum of ranks of negative differences, W⁻.
    pub w_minus: f64,
    /// Number of non-zero differences used.
    pub n_used: usize,
    /// Standardised statistic (with continuity correction).
    pub z: f64,
    /// p-value under the requested alternative.
    pub p_value: f64,
}

/// Runs the Wilcoxon signed-rank test on paired samples.
///
/// # Panics
/// Panics if the samples have different lengths or fewer than 6 usable
/// (non-zero-difference) pairs — below that the normal approximation is
/// meaningless and the paper's sample (hundreds of jobs) is far above it.
#[must_use]
pub fn signed_rank_test(x: &[f64], y: &[f64], alternative: Alternative) -> WilcoxonResult {
    assert_eq!(x.len(), y.len(), "paired test requires equal lengths");
    // Differences, discarding exact zeros (Wilcoxon's rule).
    let mut diffs: Vec<f64> = x
        .iter()
        .zip(y)
        .map(|(a, b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    assert!(
        n >= 6,
        "need at least 6 non-zero differences for the normal approximation, got {n}"
    );
    // Rank |d| with average ranks for ties.
    diffs.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("NaN difference"));
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let nf = n as f64;
    let total = nf * (nf + 1.0) / 2.0;
    let w_minus = total - w_plus;

    let mean_w = total / 2.0;
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let sd_w = var_w.sqrt();

    // Continuity-corrected z for each tail.
    let z_greater = (w_plus - mean_w - 0.5) / sd_w;
    let z_less = (w_plus - mean_w + 0.5) / sd_w;

    let (z, p_value) = match alternative {
        Alternative::TwoSided => {
            let z = if w_plus >= mean_w { z_greater } else { z_less };
            (z, (2.0 * (1.0 - Normal::std_cdf(z.abs()))).min(1.0))
        }
        Alternative::Less => (z_less, Normal::std_cdf(z_less)),
        Alternative::Greater => (z_greater, 1.0 - Normal::std_cdf(z_greater)),
    };

    WilcoxonResult {
        w_plus,
        w_minus,
        n_used: n,
        z,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_shifted_pairs_detected() {
        // x systematically 10 below y -> "less" should be significant.
        let y: Vec<f64> = (1..=30).map(|i| f64::from(i) * 10.0).collect();
        let x: Vec<f64> = y.iter().map(|v| v - 10.0).collect();
        let less = signed_rank_test(&x, &y, Alternative::Less);
        assert!(less.p_value < 1e-4, "p = {}", less.p_value);
        let greater = signed_rank_test(&x, &y, Alternative::Greater);
        assert!(greater.p_value > 0.999, "p = {}", greater.p_value);
        let two = signed_rank_test(&x, &y, Alternative::TwoSided);
        assert!(two.p_value < 1e-4);
    }

    #[test]
    fn symmetric_noise_not_significant() {
        // Alternating ±1 differences: perfectly symmetric.
        let x: Vec<f64> = (0..40)
            .map(|i| 100.0 + if i % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (i / 2) as f64))
            .collect();
        let y: Vec<f64> = vec![100.0; 40];
        let r = signed_rank_test(&x, &y, Alternative::TwoSided);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
        assert!((r.w_plus - r.w_minus).abs() < 1e-9);
    }

    #[test]
    fn zeros_are_discarded() {
        let x = [1.0, 2.0, 3.0, 5.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let y = [2.0, 3.0, 4.0, 5.0, 5.0, 7.0, 8.0, 9.0, 10.0];
        let r = signed_rank_test(&x, &y, Alternative::Less);
        assert_eq!(r.n_used, 7); // two zero differences removed
    }

    #[test]
    fn rank_sums_partition_total() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0, 2.0, 6.0, 5.0];
        let y = [2.0, 2.0, 2.0, 2.0, 2.0, 3.0, 2.0, 2.0];
        let r = signed_rank_test(&x, &y, Alternative::TwoSided);
        let n = r.n_used as f64;
        assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn one_sided_p_values_complementary() {
        let x: Vec<f64> = (0..25)
            .map(|i| f64::from(i) + if i % 3 == 0 { 2.0 } else { -0.5 })
            .collect();
        let y: Vec<f64> = (0..25).map(f64::from).collect();
        let less = signed_rank_test(&x, &y, Alternative::Less);
        let greater = signed_rank_test(&x, &y, Alternative::Greater);
        // With continuity correction both tails overlap slightly around the
        // centre; they must sum to just over 1.
        let s = less.p_value + greater.p_value;
        assert!(s > 0.99 && s < 1.1, "sum {s}");
    }

    #[test]
    fn matches_published_example() {
        // Classic example (Wilcoxon 1945-style data): n = 10 pairs.
        let x = [
            125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0,
        ];
        let y = [
            110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0,
        ];
        let r = signed_rank_test(&x, &y, Alternative::TwoSided);
        assert_eq!(r.n_used, 9); // one zero difference
        assert_eq!(r.w_plus.min(r.w_minus), 18.0);

        // Exact two-sided p by enumerating all 2^9 sign assignments over the
        // tied ranks; the normal approximation must agree within a few
        // percentage points at n = 9.
        let ranks = [1.5, 1.5, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mean_w: f64 = ranks.iter().sum::<f64>() / 2.0;
        let observed_dev = (r.w_plus - mean_w).abs();
        let mut extreme = 0u32;
        for mask in 0u32..(1 << 9) {
            let w: f64 = (0..9)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| ranks[i])
                .sum();
            if (w - mean_w).abs() >= observed_dev - 1e-9 {
                extreme += 1;
            }
        }
        let exact_p = f64::from(extreme) / f64::from(1u32 << 9);
        assert!(
            (r.p_value - exact_p).abs() < 0.05,
            "normal approx p = {} vs exact p = {exact_p}",
            r.p_value
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_rejected() {
        let _ = signed_rank_test(&[1.0, 2.0], &[1.0], Alternative::TwoSided);
    }

    #[test]
    #[should_panic(expected = "at least 6")]
    fn too_few_pairs_rejected() {
        let _ = signed_rank_test(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], Alternative::TwoSided);
    }
}
