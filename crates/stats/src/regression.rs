//! Multiple linear regression by ridge-regularised normal equations.
//!
//! The ONES predictor (§3.2.1, Eq 6) models the *epochs still to process* of
//! a job as a linear function β = max(A·x + b, 1) of five features and
//! refits it online every time a job completes. The design matrices are tiny
//! (≤ a few hundred rows × 6 columns), so dense normal equations with a
//! small ridge term — solved by Gaussian elimination with partial pivoting —
//! are both exact enough and fast enough (microseconds).

use serde::{Deserialize, Serialize};

/// A fitted linear model `y ≈ w · x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fits by minimising `Σ (y - w·x - b)² + ridge·‖w‖²`.
    ///
    /// For a linear-Gaussian observation model this least-squares fit is the
    /// maximiser of the (log marginal) likelihood in the mean parameters,
    /// matching the paper's "train the model by maximizing the log marginal
    /// likelihood".
    ///
    /// # Errors
    /// Returns `None` when there are no rows, inconsistent row widths, or a
    /// singular system even after regularisation.
    #[must_use]
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Option<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let d = xs[0].len();
        if xs.iter().any(|row| row.len() != d) {
            return None;
        }
        // Augment with the intercept column: p = d + 1 unknowns.
        let p = d + 1;
        // Normal equations: (XᵀX + λI) w = Xᵀ y, intercept not regularised.
        let mut ata = vec![vec![0.0; p]; p];
        let mut atb = vec![0.0; p];
        for (row, &y) in xs.iter().zip(ys) {
            let aug = |k: usize| if k < d { row[k] } else { 1.0 };
            for i in 0..p {
                atb[i] += aug(i) * y;
                for (j, cell) in ata[i].iter_mut().enumerate() {
                    *cell += aug(i) * aug(j);
                }
            }
        }
        for (i, row) in ata.iter_mut().enumerate().take(d) {
            row[i] += ridge.max(0.0);
        }
        let sol = solve(ata, atb)?;
        let (weights, intercept) = sol.split_at(d);
        Some(LinearRegression {
            weights: weights.to_vec(),
            intercept: intercept[0],
        })
    }

    /// Predicted value `w · x + b`.
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimensionality.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "feature dimension mismatch: model has {}, input has {}",
            self.weights.len(),
            x.len()
        );
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// The fitted weights (without the intercept).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficient of determination R² on a dataset.
    #[must_use]
    pub fn r_squared(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        if ys.is_empty() {
            return 0.0;
        }
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| (y - self.predict(x)).powi(2))
            .sum();
        if ss_tot == 0.0 {
            if ss_res == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` if the matrix is numerically singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let pivot_row = a[col].clone();
            for (cell, p) in a[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *cell -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let s: f64 = ((col + 1)..n).map(|k| a[col][k] * x[k]).sum();
        x[col] = (b[col] - s) / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 x0 - 3 x1 + 5
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i), f64::from(i * i % 7)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 3.0 * x[1] + 5.0).collect();
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-8);
        assert!((m.weights()[1] + 3.0).abs() < 1e-8);
        assert!((m.intercept() - 5.0).abs() < 1e-7);
        assert!(m.r_squared(&xs, &ys) > 0.999_999);
    }

    #[test]
    fn handles_noisy_data_with_ridge() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![f64::from(i) / 10.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 4.0 * x[0] + 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let m = LinearRegression::fit(&xs, &ys, 1e-6).unwrap();
        assert!((m.weights()[0] - 4.0).abs() < 0.05);
        assert!((m.intercept() - 1.0).abs() < 0.5);
    }

    #[test]
    fn rejects_empty_and_mismatched_input() {
        assert!(LinearRegression::fit(&[], &[], 0.0).is_none());
        assert!(LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_none());
        assert!(LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0).is_none());
    }

    #[test]
    fn singular_without_ridge_recovered_with_ridge() {
        // Two identical columns -> singular normal equations.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i), f64::from(i)]).collect();
        let ys: Vec<f64> = (0..10).map(|i| f64::from(2 * i)).collect();
        assert!(LinearRegression::fit(&xs, &ys, 0.0).is_none());
        let m = LinearRegression::fit(&xs, &ys, 1e-6).unwrap();
        // Ridge splits the weight between the duplicated columns.
        let pred = m.predict(&[3.0, 3.0]);
        assert!((pred - 6.0).abs() < 1e-3, "pred {pred}");
    }

    #[test]
    fn intercept_only_model() {
        // Zero-dimensional features: fit just the intercept = mean(y).
        let xs: Vec<Vec<f64>> = vec![vec![]; 5];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept() - 3.0).abs() < 1e-12);
        assert_eq!(m.predict(&[]), m.intercept());
    }

    #[test]
    fn r_squared_of_constant_target() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![f64::from(i)]).collect();
        let ys = [2.0; 5];
        let m = LinearRegression::fit(&xs, &ys, 1e-9).unwrap();
        assert!((m.r_squared(&xs, &ys) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_rejects_wrong_width() {
        let m = LinearRegression::fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0], 0.0).unwrap();
        let _ = m.predict(&[1.0, 2.0]);
    }
}
