//! # ones-stats — statistical toolbox for the ONES reproduction
//!
//! Self-contained implementations of every piece of statistics the paper
//! uses, so the reproduction has no heavyweight numeric dependencies:
//!
//! * [`dist`] — Beta / Gamma / Normal distributions with exact samplers
//!   (Marsaglia–Tsang for Gamma, hence Beta), densities and moments. The
//!   Beta distribution models training-progress uncertainty (§3.2.1, Eq 6).
//! * [`regression`] — multiple linear regression by (ridge-regularised)
//!   normal equations, the online β-predictor's fast default.
//! * [`gpr`] — RBF-kernel Gaussian-process regression fitted by maximising
//!   the log marginal likelihood — the predictor the paper's footnote 1
//!   actually names.
//! * [`wilcoxon`] — the Wilcoxon signed-rank test with normal approximation
//!   and tie/zero handling, regenerating Table 4.
//! * [`desc`] — descriptive statistics: means, quantiles, box-plot
//!   five-number summaries and empirical CDFs for Figure 15.

pub mod desc;
pub mod dist;
pub mod gpr;
pub mod regression;
pub mod wilcoxon;

pub use desc::{ecdf, BoxPlot, Summary};
pub use dist::{Beta, Gamma, Normal};
pub use gpr::GpRegressor;
pub use regression::LinearRegression;
pub use wilcoxon::{signed_rank_test, Alternative, WilcoxonResult};
