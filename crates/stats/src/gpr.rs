//! Gaussian-process regression.
//!
//! The paper's footnote 1 calls its progress model "the GPR predictor".
//! This is a standard GP regressor with an RBF (squared-exponential)
//! kernel and observation noise, fitted by Cholesky decomposition:
//!
//! ```text
//! K = k(X, X) + σ_n² I,   K = L Lᵀ
//! μ(x*) = k(x*, X) K⁻¹ y          (posterior mean)
//! σ²(x*) = k(x*, x*) − k(x*, X) K⁻¹ k(X, x*)   (posterior variance)
//! ```
//!
//! Hyper-parameters (length scale, signal variance, noise) are selected by
//! a small grid search on the log marginal likelihood
//! `−½ yᵀK⁻¹y − Σᵢ ln Lᵢᵢ − n/2 ln 2π` — literally "maximizing the log
//! marginal likelihood" as §3.2.1 prescribes. Feature columns are
//! standardised internally so one length scale serves all five features.

use serde::{Deserialize, Serialize};

/// RBF-kernel Gaussian-process regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpRegressor {
    xs: Vec<Vec<f64>>,
    /// K⁻¹ y, precomputed.
    alpha: Vec<f64>,
    /// Cholesky factor L of K (lower triangular, row-major packed rows).
    chol: Vec<Vec<f64>>,
    length_scale: f64,
    signal_var: f64,
    noise_var: f64,
    mean_y: f64,
    feat_mean: Vec<f64>,
    feat_sd: Vec<f64>,
}

impl GpRegressor {
    /// Fits a GP to the data, selecting hyper-parameters by grid search on
    /// the log marginal likelihood. Returns `None` for empty/inconsistent
    /// data or if every candidate kernel is numerically singular.
    #[must_use]
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Option<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let d = xs[0].len();
        if xs.iter().any(|r| r.len() != d) {
            return None;
        }
        // Standardise features.
        let n = xs.len();
        let mut feat_mean = vec![0.0; d];
        let mut feat_sd = vec![0.0; d];
        for j in 0..d {
            let col: Vec<f64> = xs.iter().map(|r| r[j]).collect();
            let m = col.iter().sum::<f64>() / n as f64;
            let v = col.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
            feat_mean[j] = m;
            feat_sd[j] = v.sqrt().max(1e-9);
        }
        let std_xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, x)| (x - feat_mean[j]) / feat_sd[j])
                    .collect()
            })
            .collect();
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let y_centered: Vec<f64> = ys.iter().map(|y| y - mean_y).collect();
        let y_var = y_centered.iter().map(|y| y * y).sum::<f64>() / n as f64;
        let signal0 = y_var.max(1e-6);

        let mut best: Option<(f64, GpRegressor)> = None;
        for &ls in &[0.5, 1.0, 2.0, 4.0] {
            for &noise_frac in &[0.01, 0.05, 0.2] {
                let noise = (signal0 * noise_frac).max(1e-8);
                let Some((chol, alpha, lml)) = fit_once(&std_xs, &y_centered, ls, signal0, noise)
                else {
                    continue;
                };
                if best.as_ref().is_none_or(|(b, _)| lml > *b) {
                    best = Some((
                        lml,
                        GpRegressor {
                            xs: std_xs.clone(),
                            alpha,
                            chol,
                            length_scale: ls,
                            signal_var: signal0,
                            noise_var: noise,
                            mean_y,
                            feat_mean: feat_mean.clone(),
                            feat_sd: feat_sd.clone(),
                        },
                    ));
                }
            }
        }
        best.map(|(_, g)| g)
    }

    /// Number of training points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the model holds no data (never true for a fitted model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The selected RBF length scale.
    #[must_use]
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    fn standardise(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, v)| (v - self.feat_mean[j]) / self.feat_sd[j])
            .collect()
    }

    /// Posterior mean at `x`.
    ///
    /// # Panics
    /// Panics on a feature-width mismatch.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.predict_with_variance(x).0
    }

    /// Posterior `(mean, variance)` at `x`.
    #[must_use]
    pub fn predict_with_variance(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.feat_mean.len(), "feature width mismatch");
        let xs = self.standardise(x);
        let k_star: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| rbf(&xs, xi, self.length_scale, self.signal_var))
            .collect();
        let mean = self.mean_y
            + k_star
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        // v = L⁻¹ k*; var = k(x,x) − vᵀv.
        let v = forward_solve(&self.chol, &k_star);
        let var = (self.signal_var - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (mean, var)
    }
}

/// Squared-exponential kernel on standardised inputs.
fn rbf(a: &[f64], b: &[f64], length_scale: f64, signal_var: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    signal_var * (-0.5 * d2 / (length_scale * length_scale)).exp()
}

/// One Cholesky fit; returns `(L, alpha, log marginal likelihood)`.
#[allow(clippy::type_complexity)]
fn fit_once(
    xs: &[Vec<f64>],
    y: &[f64],
    length_scale: f64,
    signal_var: f64,
    noise_var: f64,
) -> Option<(Vec<Vec<f64>>, Vec<f64>, f64)> {
    let n = xs.len();
    let mut k = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let v = rbf(&xs[i], &xs[j], length_scale, signal_var);
            k[i][j] = v;
            k[j][i] = v;
        }
        k[i][i] += noise_var;
    }
    let chol = cholesky(&k)?;
    // alpha = K⁻¹ y via two triangular solves.
    let tmp = forward_solve(&chol, y);
    let alpha = backward_solve(&chol, &tmp);
    let log_det: f64 = chol.iter().enumerate().map(|(i, row)| row[i].ln()).sum();
    let lml = -0.5 * y.iter().zip(&alpha).map(|(yi, ai)| yi * ai).sum::<f64>()
        - log_det
        - n as f64 / 2.0 * (std::f64::consts::TAU).ln();
    Some((chol, alpha, lml))
}

/// Cholesky decomposition `K = L Lᵀ`; `None` if not positive definite.
fn cholesky(k: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = k.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let s: f64 = (0..j).map(|m| l[i][m] * l[j][m]).sum();
            if i == j {
                let d = k[i][i] - s;
                if d <= 0.0 {
                    return None;
                }
                l[i][j] = d.sqrt();
            } else {
                l[i][j] = (k[i][j] - s) / l[j][j];
            }
        }
    }
    Some(l)
}

/// Solves `L x = b` (lower triangular).
fn forward_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let s: f64 = (0..i).map(|j| l[i][j] * x[j]).sum();
        x[i] = (b[i] - s) / l[i][i];
    }
    x
}

/// Solves `Lᵀ x = b` (upper triangular via the lower factor).
fn backward_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let s: f64 = ((i + 1)..n).map(|j| l[j][i] * x[j]).sum();
        x[i] = (b[i] - s) / l[i][i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(f: impl Fn(f64) -> f64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / 2.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x[0])).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = grid_1d(|x| (x * 0.7).sin() * 3.0 + 1.0, 25);
        let gp = GpRegressor::fit(&xs, &ys).expect("fits");
        for (x, y) in xs.iter().zip(&ys) {
            let pred = gp.predict(x);
            assert!(
                (pred - y).abs() < 0.3,
                "f({}) = {y}, predicted {pred}",
                x[0]
            );
        }
    }

    #[test]
    fn interpolates_between_points_smoothly() {
        let (xs, ys) = grid_1d(|x| x * x / 10.0, 20);
        let gp = GpRegressor::fit(&xs, &ys).expect("fits");
        // Query midway between two training inputs.
        let pred = gp.predict(&[5.25]);
        let truth = 5.25f64 * 5.25 / 10.0;
        assert!((pred - truth).abs() < 0.3, "{pred} vs {truth}");
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = grid_1d(|x| x, 10); // inputs 0..4.5
        let gp = GpRegressor::fit(&xs, &ys).expect("fits");
        let (_, var_in) = gp.predict_with_variance(&[2.0]);
        let (_, var_out) = gp.predict_with_variance(&[40.0]);
        assert!(
            var_out > 5.0 * var_in.max(1e-12),
            "in {var_in}, out {var_out}"
        );
    }

    #[test]
    fn far_extrapolation_reverts_to_the_mean() {
        let (xs, ys) = grid_1d(|x| x + 10.0, 10);
        let gp = GpRegressor::fit(&xs, &ys).expect("fits");
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let pred = gp.predict(&[1000.0]);
        assert!((pred - mean_y).abs() < 0.5, "{pred} vs prior mean {mean_y}");
    }

    #[test]
    fn handles_multi_feature_inputs() {
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![f64::from(i), f64::from(i % 5), f64::from(i % 3)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 0.5 - x[1] + x[2] * 2.0).collect();
        let gp = GpRegressor::fit(&xs, &ys).expect("fits");
        let pred = gp.predict(&[10.0, 0.0, 1.0]);
        assert!((pred - 7.0).abs() < 1.5, "pred {pred}");
        assert_eq!(gp.len(), 30);
        assert!(!gp.is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(GpRegressor::fit(&[], &[]).is_none());
        assert!(GpRegressor::fit(&[vec![1.0]], &[1.0, 2.0]).is_none());
        assert!(GpRegressor::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn duplicate_inputs_survive_via_noise_jitter() {
        // Identical rows make K singular without the noise term.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i % 3)]).collect();
        let ys: Vec<f64> = (0..12)
            .map(|i| f64::from(i % 3) + 0.01 * f64::from(i))
            .collect();
        let gp = GpRegressor::fit(&xs, &ys).expect("noise keeps K positive definite");
        assert!(gp.predict(&[1.0]).is_finite());
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_width_rejected() {
        let (xs, ys) = grid_1d(|x| x, 8);
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        let _ = gp.predict(&[1.0, 2.0]);
    }
}
