//! The ONES central scheduler (Figure 4).
//!
//! Wires together the online evolutionary search, the Beta-distribution
//! progress predictor and the batch-size limit policies behind the
//! event-driven [`Scheduler`] interface:
//!
//! * every event refreshes the per-job Beta predictions and evolves the
//!   population for a configurable number of generations;
//! * the best candidate `S_*` is deployed under the paper's update rule —
//!   only after all running jobs have completed at least one epoch under
//!   the currently deployed schedule (§3.2.2 *Update*), so epoch-long
//!   work is never thrown away by churning re-configurations;
//! * when a deployment leaves a waiting job out, the *resume* policy
//!   halves that job's batch limit so it keeps shrinking until it fits.

use crate::policies::{BatchLimits, PolicyConfig};
use ones_evo::{EvoConfig, EvoContext, EvolutionarySearch};
use ones_predictor::{FeatureSnapshot, PredictorConfig, ProgressPredictor};
use ones_schedcore::{
    ClusterView, ScalingMechanism, SchedEvent, SchedTuning, Schedule, Scheduler,
    SchedulerPerfCounters,
};
use ones_simcore::DetRng;
use ones_stats::Beta;
use ones_sync::LazyLock;
use ones_workload::JobId;
use std::collections::BTreeMap;

// Scheduling-round observability (DESIGN.md §5): how often ONES is
// invoked, how often it proposes a deployment, and how many running jobs
// had their global batch size reallocated by the winning candidate.
static ROUNDS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("ones.scheduler.rounds"));
static DEPLOYMENTS_PROPOSED: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("ones.scheduler.deployments_proposed"));
static BATCH_INCREASES: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("ones.scheduler.batch_increases"));
static BATCH_DECREASES: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("ones.scheduler.batch_decreases"));

/// ONES configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnesConfig {
    /// Evolutionary search tunables.
    pub evo: EvoConfig,
    /// Progress-predictor tunables.
    pub predictor: PredictorConfig,
    /// Batch-limit policy tunables.
    pub policy: PolicyConfig,
    /// Evolution generations run per scheduler event.
    pub generations_per_event: usize,
    /// Executor mechanism (elastic NCCL by default; the ablation harness
    /// runs ONES over checkpoint restart to isolate the mechanism's value).
    pub mechanism: ScalingMechanism,
    /// Use the online progress predictor (disabled = cold-start prior
    /// only; isolates the predictor's contribution).
    pub use_predictor: bool,
}

impl OnesConfig {
    /// Paper-suggested defaults for a cluster of `gpus` devices and a
    /// workload with mean arrival rate λ (jobs/s).
    #[must_use]
    pub fn for_cluster(gpus: u32, lambda: f64) -> Self {
        OnesConfig {
            evo: EvoConfig::for_cluster(gpus),
            predictor: PredictorConfig::default(),
            policy: PolicyConfig {
                // The paper suggests sigma = lambda; with Table 2 service times
                // (minutes) two orders above the inter-arrival gap, that
                // throttles every job immediately. We calibrate to penalise
                // jobs older than ~40 mean inter-arrival gaps (~20 min on
                // the default trace) instead.
                sigma: lambda / 40.0,
                ..PolicyConfig::default()
            },
            generations_per_event: 2,
            mechanism: ScalingMechanism::ElasticNccl,
            use_predictor: true,
        }
    }
}

/// The ONES scheduler.
pub struct OnesScheduler {
    config: OnesConfig,
    search: EvolutionarySearch,
    predictor: ProgressPredictor,
    limits: BatchLimits,
    histories: BTreeMap<JobId, Vec<FeatureSnapshot>>,
    fill_rng: DetRng,
}

impl OnesScheduler {
    /// Creates the scheduler; all randomness forks from `rng`.
    #[must_use]
    pub fn new(config: OnesConfig, rng: &DetRng) -> Self {
        OnesScheduler {
            config,
            search: EvolutionarySearch::new(config.evo, rng.fork("ones-evo")),
            predictor: ProgressPredictor::new(config.predictor, rng.fork("ones-predictor")),
            limits: BatchLimits::new(config.policy),
            histories: BTreeMap::new(),
            fill_rng: rng.fork("ones-fill"),
        }
    }

    /// The progress predictor (exposed for diagnostics and experiments).
    #[must_use]
    pub fn predictor(&self) -> &ProgressPredictor {
        &self.predictor
    }

    /// The current batch-limit table (exposed for diagnostics and tests).
    #[must_use]
    pub fn limits(&self) -> &BatchLimits {
        &self.limits
    }

    /// Evolution generations run so far.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.search.generations()
    }

    /// Applies the event's effect on policies, predictor and histories.
    /// Every per-job event also invalidates that job's entries in the
    /// search's cross-generation throughput cache and score cards — the
    /// cached values are pure in the job's profile and configuration,
    /// which only these events can change.
    fn ingest(&mut self, event: SchedEvent, view: &ClusterView<'_>) {
        match event {
            SchedEvent::JobArrived(id)
            | SchedEvent::EpochEnded(id)
            | SchedEvent::JobCompleted(id) => self.search.invalidate_job(id),
            SchedEvent::Tick => {}
        }
        match event {
            SchedEvent::JobArrived(id) => {
                if let Some(job) = view.jobs.get(&id) {
                    self.limits.on_arrival(&job.spec);
                    self.histories.entry(id).or_default();
                }
            }
            SchedEvent::EpochEnded(id) => {
                if let Some(job) = view.jobs.get(&id) {
                    self.histories
                        .entry(id)
                        .or_default()
                        .push(FeatureSnapshot::capture(job));
                    let memory_cap = job.spec.profile().max_local_batch * view.spec.total_gpus();
                    let contended = !view.waiting_jobs().is_empty();
                    self.limits.on_epoch_end(
                        id,
                        job.epochs_done,
                        job.exec_time,
                        memory_cap,
                        contended,
                    );
                }
            }
            SchedEvent::JobCompleted(id) => {
                let history = self.histories.remove(&id).unwrap_or_default();
                if self.config.use_predictor {
                    if let Some(job) = view.jobs.get(&id) {
                        self.predictor.observe_completion(&history, job.epochs_done);
                    }
                }
                self.limits.on_completed(id);
            }
            SchedEvent::Tick => {}
        }
    }

    /// Beta predictions for every non-completed job (Eq 6).
    fn predictions(&self, view: &ClusterView<'_>) -> BTreeMap<JobId, Beta> {
        view.jobs
            .values()
            .filter(|j| !j.is_completed())
            .map(|j| (j.id(), self.predictor.predict(j)))
            .collect()
    }

    /// The §3.2.2 update rule, applied per job: a running job may only be
    /// *disturbed* (moved, resized, preempted) after completing at least
    /// one epoch under its current configuration. Jobs still inside their
    /// first epoch are frozen at their deployed slots; the rest of the
    /// candidate applies around them.
    ///
    /// (A global "all running jobs ≥ 1 epoch" gate livelocks: every
    /// admission starts a 0-epoch job, which would block the next update,
    /// which admits another job, …)
    fn merge_frozen(view: &ClusterView<'_>, best: &Schedule) -> Schedule {
        let frozen: Vec<JobId> = view
            .running_jobs()
            .iter()
            .filter(|j| j.epochs_in_current_schedule == 0)
            .map(|j| j.id())
            .collect();
        if frozen.is_empty() {
            return best.aligned_with(view.deployed);
        }
        let mut adjusted = best.clone();
        for &f in &frozen {
            adjusted.evict(f);
        }
        // Restore each frozen job's deployed slots, displacing whichever
        // workers the candidate put there (their jobs shrink accordingly).
        for &f in &frozen {
            for (i, slot) in view.deployed.slots().iter().enumerate() {
                if let Some(s) = slot.filter(|s| s.job == f) {
                    adjusted.assign(ones_cluster::GpuId(i as u32), s.job, s.local_batch);
                }
            }
        }
        adjusted.aligned_with(view.deployed)
    }
}

impl Scheduler for OnesScheduler {
    fn name(&self) -> &'static str {
        "ONES"
    }

    fn mechanism(&self) -> ScalingMechanism {
        self.config.mechanism
    }

    fn scales_batch_sizes(&self) -> bool {
        true
    }

    fn perf_counters(&self) -> Option<SchedulerPerfCounters> {
        let c = self.search.perf_counters();
        Some(SchedulerPerfCounters {
            generations: c.generations,
            candidates_scored: c.candidates_scored,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            cache_duplicate_computes: c.cache_duplicate_computes,
            cache_invalidations: c.cache_invalidations,
            cache_hits_last_gen: c.cache_hits_last_gen,
            cache_misses_last_gen: c.cache_misses_last_gen,
            refresh_nanos: c.refresh_nanos,
            derive_nanos: c.derive_nanos,
            score_nanos: c.score_nanos,
        })
    }

    /// Live evolution-parameter changes (ones-d `POST /v1/config`). The
    /// search population carries over, so tuning adjusts the ongoing
    /// search rather than restarting it. Out-of-range values (zero
    /// population, mutation rate outside [0, 1]) are ignored.
    fn reconfigure(&mut self, tuning: &SchedTuning) -> bool {
        let mut applied = false;
        if let Some(g) = tuning.generations_per_event {
            if g > 0 {
                self.config.generations_per_event = g as usize;
                applied = true;
            }
        }
        let mut evo = *self.search.config();
        let mut evo_changed = false;
        if let Some(p) = tuning.population {
            if p > 0 {
                evo.population = p;
                evo_changed = true;
            }
        }
        if let Some(m) = tuning.mutation_rate {
            if (0.0..=1.0).contains(&m) {
                evo.mutation_rate = m;
                evo_changed = true;
            }
        }
        if let Some(c) = tuning.crossover_pairs {
            evo.crossover_pairs = c;
            evo_changed = true;
        }
        if evo_changed {
            self.search.set_config(evo);
            self.config.evo = evo;
            applied = true;
        }
        applied
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let _round_span = ones_obs::span!("ones", "scheduling_round")
            .with_arg("event", event.kind())
            .with_arg("vt", view.now.as_secs());
        ROUNDS.inc();
        self.ingest(event, view);
        let betas = self.predictions(view);
        let ctx = EvoContext::new(view, self.limits.table(), &betas);
        let mut best = self.search.generation(&ctx);
        for _ in 1..self.config.generations_per_event {
            best = self.search.generation(&ctx);
        }

        // Apply the §3.2.2 update rule per job (jobs inside their first
        // epoch stay frozen) and align the result with the deployed
        // schedule so unchanged jobs keep their GPUs and pay no
        // re-configuration cost.
        let mut best = Self::merge_frozen(view, &best);

        // Immediate response to online workloads (§1): if the merged
        // candidate still leaves waiting jobs next to idle GPUs (e.g. it
        // froze around a completion), admit them on the spot.
        ones_evo::ops::admit_waiting(&ctx, &mut best, &mut self.fill_rng);

        // Reconciler-diff emptiness, not value equality: a candidate that
        // only re-splits unchanged (placement, global batch) pairs would
        // deploy as zero operations, so proposing it is pure churn.
        if ones_schedcore::reconcile::diff(&best, view.deployed).is_empty() {
            return None;
        }

        // Significance filter: a deployment whose only effect is nudging
        // batch sizes by < 25 % at unchanged GPU sets costs a pause per
        // job and buys nothing ("too frequent update may reduce the
        // scheduling performance", §3.2.2). Freeze such jobs at their
        // deployed slots.
        let minor: Vec<JobId> = best
            .running_jobs()
            .iter()
            .filter(|(job, (batch, gpus))| {
                let old_b = view.deployed.global_batch(**job);
                let old_c = view.deployed.gpu_count(**job);
                old_c == *gpus
                    && old_b != *batch
                    && old_b > 0
                    && (f64::from(*batch) - f64::from(old_b)).abs() < 0.25 * f64::from(old_b)
            })
            .map(|(job, _)| *job)
            .collect();
        if !minor.is_empty() {
            for job in minor {
                best.evict(job);
                for (i, slot) in view.deployed.slots().iter().enumerate() {
                    if let Some(s) = slot.filter(|s| s.job == job) {
                        best.assign(ones_cluster::GpuId(i as u32), s.job, s.local_batch);
                    }
                }
            }
            if ones_schedcore::reconcile::diff(&best, view.deployed).is_empty() {
                return None;
            }
        }

        // Resume policy: jobs that stay waiting under the new schedule have
        // their limit halved.
        for job in view.waiting_jobs() {
            if !best.is_running(job.id()) {
                self.limits.on_rejected(job.id());
            }
        }
        DEPLOYMENTS_PROPOSED.inc();
        if ones_obs::counters_enabled() {
            for (job, (batch, _)) in best.running_jobs() {
                let old = view.deployed.global_batch(job);
                if old > 0 && batch > old {
                    BATCH_INCREASES.inc();
                } else if old > 0 && batch < old {
                    BATCH_DECREASES.inc();
                }
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_cluster::ClusterSpec;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind, PerfModel};
    use ones_schedcore::{JobPhase, JobStatus};
    use ones_simcore::SimTime;
    use ones_workload::JobSpec;

    struct Harness {
        spec: ClusterSpec,
        perf: PerfModel,
        jobs: BTreeMap<JobId, JobStatus>,
        deployed: Schedule,
        now: f64,
    }

    impl Harness {
        fn new() -> Self {
            let spec = ClusterSpec::new(2, 4);
            Harness {
                spec,
                perf: PerfModel::new(spec),
                jobs: BTreeMap::new(),
                deployed: Schedule::empty(8),
                now: 0.0,
            }
        }

        fn submit(&mut self, id: u64) -> JobId {
            let jid = JobId(id);
            let spec = JobSpec {
                id: jid,
                name: format!("j{id}"),
                model: ModelKind::ResNet18,
                dataset: DatasetKind::Cifar10,
                dataset_size: 20_000,
                submit_batch: 256,
                max_safe_batch: 4096,
                requested_gpus: 1,
                arrival_secs: self.now,
                kill_after_secs: None,
                convergence: ConvergenceModel {
                    reference_batch: 256,
                    ..ConvergenceModel::example()
                },
            };
            self.jobs.insert(
                jid,
                JobStatus::submitted(spec, SimTime::from_secs(self.now)),
            );
            jid
        }

        fn view(&self) -> ClusterView<'_> {
            ClusterView {
                now: SimTime::from_secs(self.now),
                spec: &self.spec,
                perf: &self.perf,
                jobs: &self.jobs,
                deployed: &self.deployed,
            }
        }

        /// Applies a schedule like the simulator would: phases, batch and
        /// GPU bookkeeping, epoch counters reset.
        fn deploy(&mut self, s: Schedule) {
            for job in self.jobs.values_mut() {
                let id = job.spec.id;
                if s.is_running(id) {
                    job.phase = JobPhase::Running;
                    job.first_start.get_or_insert(SimTime::from_secs(self.now));
                    job.current_batch = s.global_batch(id);
                    job.current_gpus = s.gpu_count(id);
                    job.epochs_in_current_schedule = 0;
                } else if job.phase == JobPhase::Running {
                    job.phase = JobPhase::Waiting;
                    job.current_batch = 0;
                    job.current_gpus = 0;
                }
            }
            self.deployed = s;
        }

        fn finish_epoch(&mut self, id: u64) {
            let job = self.jobs.get_mut(&JobId(id)).unwrap();
            job.epochs_done += 1;
            job.epochs_in_current_schedule += 1;
            job.samples_processed += job.spec.dataset_size as f64;
            job.exec_time += 5.0;
            job.throughput = 4000.0;
            let conv = job.spec.convergence;
            job.current_loss = conv.loss_at(f64::from(job.epochs_done));
            job.current_accuracy = conv.accuracy_at(f64::from(job.epochs_done));
        }
    }

    fn sched() -> OnesScheduler {
        OnesScheduler::new(OnesConfig::for_cluster(8, 1.0 / 30.0), &DetRng::seed(5))
    }

    #[test]
    fn reconfigure_applies_valid_tuning_and_ignores_garbage() {
        let mut s = sched();
        assert!(!s.reconfigure(&SchedTuning::default()));
        let applied = s.reconfigure(&SchedTuning {
            generations_per_event: Some(5),
            population: Some(16),
            mutation_rate: Some(0.35),
            crossover_pairs: Some(4),
        });
        assert!(applied);
        assert_eq!(s.config.generations_per_event, 5);
        assert_eq!(s.search.config().population, 16);
        assert_eq!(s.search.config().mutation_rate, 0.35);
        assert_eq!(s.search.config().crossover_pairs, 4);
        // Out-of-range values leave everything untouched.
        assert!(!s.reconfigure(&SchedTuning {
            generations_per_event: Some(0),
            population: Some(0),
            mutation_rate: Some(1.5),
            crossover_pairs: None,
        }));
        assert_eq!(s.config.generations_per_event, 5);
        assert_eq!(s.search.config().population, 16);
    }

    #[test]
    fn first_arrival_is_scheduled_immediately() {
        let mut h = Harness::new();
        let mut s = sched();
        let id = h.submit(0);
        let out = s.on_event(SchedEvent::JobArrived(id), &h.view());
        let schedule = out.expect("empty cluster must schedule the arrival");
        assert!(schedule.is_running(id));
        // Start policy: single-GPU-capped limit.
        assert_eq!(s.limits().get(id), 256);
        assert!(schedule.global_batch(id) <= 256);
    }

    #[test]
    fn update_rule_blocks_mid_epoch_churn() {
        let mut h = Harness::new();
        let mut s = sched();
        let a = h.submit(0);
        let out = s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        // Job 0 is running with 0 epochs under the new schedule; a second
        // arrival may only deploy if it does not disturb job 0 (the
        // non-disruptive immediacy exception).
        let b = h.submit(1);
        let out = s.on_event(SchedEvent::JobArrived(b), &h.view());
        match out {
            None => {
                // Blocked by the update rule; after job 0 finishes an
                // epoch the next event may deploy.
                h.finish_epoch(0);
                let out = s.on_event(SchedEvent::EpochEnded(a), &h.view());
                let schedule = out.expect("epoch completed -> deployment allowed");
                assert!(schedule.is_running(b), "job 1 must now be admitted");
            }
            Some(schedule) => {
                assert!(
                    schedule.is_non_disruptive_over(&h.deployed),
                    "mid-epoch deployment must not disturb running jobs"
                );
                assert!(schedule.is_running(b), "the deployment admits job 1");
            }
        }
    }

    #[test]
    fn scale_up_limit_doubles_after_epochs() {
        let mut h = Harness::new();
        let mut s = sched();
        let a = h.submit(0);
        let out = s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        h.finish_epoch(0);
        let _ = s.on_event(SchedEvent::EpochEnded(a), &h.view());
        assert_eq!(s.limits().get(a), 512, "limit should double after epoch");
        h.finish_epoch(0);
        let _ = s.on_event(SchedEvent::EpochEnded(a), &h.view());
        assert_eq!(s.limits().get(a), 1024);
    }

    #[test]
    fn completion_trains_predictor_and_frees_gpus() {
        let mut h = Harness::new();
        let mut s = sched();
        let a = h.submit(0);
        let out = s.on_event(SchedEvent::JobArrived(a), &h.view()).unwrap();
        h.deploy(out);
        for _ in 0..5 {
            h.finish_epoch(0);
            let v = h.view();
            if let Some(next) = s.on_event(SchedEvent::EpochEnded(a), &v) {
                let _ = v;
                h.deploy(next);
            }
        }
        // Complete the job.
        {
            let job = h.jobs.get_mut(&a).unwrap();
            job.phase = JobPhase::Completed;
            job.completion = Some(SimTime::from_secs(100.0));
        }
        h.deployed.evict(a);
        let out = s.on_event(SchedEvent::JobCompleted(a), &h.view());
        assert_eq!(s.predictor().completions(), 1);
        assert_eq!(s.limits().get(a), 0, "completed job limit dropped");
        // With no other jobs there is nothing to deploy.
        assert!(out.is_none() || !out.unwrap().is_running(a));
    }

    #[test]
    fn identity_and_mechanism() {
        let s = sched();
        assert_eq!(s.name(), "ONES");
        assert_eq!(s.mechanism(), ScalingMechanism::ElasticNccl);
        assert!(s.scales_batch_sizes());
    }

    #[test]
    fn rejected_waiting_jobs_lose_limit() {
        let mut h = Harness::new();
        let mut s = sched();
        // Fill the cluster with 8 long jobs, then submit a 9th.
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(h.submit(i));
            let v = h.view();
            if let Some(out) = s.on_event(SchedEvent::JobArrived(ids[i as usize]), &v) {
                let _ = v;
                h.deploy(out);
            }
            h.finish_epoch(i);
            let v = h.view();
            if let Some(out) = s.on_event(SchedEvent::EpochEnded(ids[i as usize]), &v) {
                let _ = v;
                h.deploy(out);
            }
        }
        let ninth = h.submit(8);
        let before = 256;
        // Drive events until the ninth has been rejected at least once.
        let mut rejected = false;
        for round in 0..6 {
            for i in 0..8 {
                h.finish_epoch(i);
            }
            let v = h.view();
            let out = s.on_event(
                if round == 0 {
                    SchedEvent::JobArrived(ninth)
                } else {
                    SchedEvent::EpochEnded(ids[0])
                },
                &v,
            );
            if let Some(next) = out {
                if !next.is_running(ninth) {
                    rejected = true;
                }
                let _ = v;
                h.deploy(next);
            }
            if s.limits().get(ninth) < before {
                rejected = true;
                break;
            }
        }
        // Either the ninth was eventually admitted (fine) or its limit
        // shrank per the resume policy.
        assert!(
            rejected || h.deployed.is_running(ninth),
            "ninth job neither admitted nor subjected to the resume policy"
        );
    }
}
