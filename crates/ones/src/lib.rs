//! # ones-sched — the ONES scheduler (§3)
//!
//! Puts the pieces together into the paper's online evolutionary scheduler:
//!
//! * [`policies`] — the batch-size limit `R_j` state machine of §3.3.2:
//!   *start* (single-GPU warm-up), *resume* (halve on rejection to prevent
//!   starvation), *scale-up* (double after each epoch) and *scale-down*
//!   (convoy-effect penalty `R' = ⌈2R / ⌈σ·T_processed + 1⌉⌉` with σ = λ).
//! * [`scaling`] — cost models for the two re-configuration mechanisms of
//!   §3.3.1 / Figure 16: ONES's elastic NCCL scaling (pause at a step
//!   boundary, resize, reconnect, broadcast parameters — ~1 s) versus
//!   checkpoint-based migration (save, restart, rebuild the data pipeline,
//!   reload weights onto the GPU — tens of seconds).
//! * [`scheduler`] — [`scheduler::OnesScheduler`]: the central scheduler of
//!   Figure 4, wiring the evolutionary search (`ones-evo`), the online
//!   progress predictor (`ones-predictor`) and the limit policies into the
//!   event-driven [`ones_schedcore::Scheduler`] interface, with the paper's
//!   update rule (deploy `S_*` once every running job has finished at least
//!   one epoch under the current schedule, or immediately when the change
//!   is non-disruptive).

pub mod policies;
pub mod scaling;
pub mod scheduler;

pub use policies::{BatchLimits, PolicyConfig};
pub use scaling::ScalingCostModel;
pub use scheduler::{OnesConfig, OnesScheduler};
