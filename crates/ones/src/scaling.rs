//! Re-configuration cost models (§3.3.1, §4.3, Figure 16).
//!
//! Changing a job's batch size and/or GPU set requires re-configuring its
//! workers. The paper contrasts two mechanisms:
//!
//! **Elastic batch-size scaling** (ONES, Figure 11/12): the scaling agent
//! pauses the user script at the end of a training step, resizes the
//! modules on the GPUs, reconnects the NCCL topology, and — only when new
//! workers joined — broadcasts the current parameters from a previous
//! worker (whose own initialisation was overlapped with prior training).
//! Total cost ≈ 1 second.
//!
//! **Checkpoint-based migration** (common practice, what the baselines
//! use): stop the job, write a checkpoint over 1 Gbps Ethernet to HDFS,
//! restart the worker processes with the new configuration, rebuild the
//! input pipeline, reload the checkpoint, and move the weights to the
//! GPUs. Total cost ≈ tens of seconds, dominated by model size (Gu et al.
//! report the same for TensorFlow migration).

use ones_cluster::{AllReduceModel, Placement};
use ones_dlperf::ModelProfile;
use ones_schedcore::PhasePlan;
use serde::{Deserialize, Serialize};

/// Tunable constants of both mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingCostModel {
    /// Drain: mean residual time of the in-flight training step, s.
    pub step_drain: f64,
    /// Resizing modules/tensors on the GPU, s.
    pub module_resize: f64,
    /// NCCL communicator (re)construction: fixed part, s.
    pub nccl_base: f64,
    /// NCCL communicator construction: per-worker part, s.
    pub nccl_per_worker: f64,
    /// HDFS checkpoint bandwidth (1 Gbps Ethernet), bytes/s.
    pub storage_bw: f64,
    /// Worker process restart (spawn, CUDA context, framework import), s.
    pub process_restart: f64,
    /// Input-pipeline rebuild ("preparing data"), s.
    pub data_pipeline: f64,
    /// Host-to-device copy bandwidth (PCIe), bytes/s.
    pub h2d_bw: f64,
}

impl Default for ScalingCostModel {
    fn default() -> Self {
        ScalingCostModel {
            step_drain: 0.25,
            module_resize: 0.15,
            nccl_base: 0.20,
            nccl_per_worker: 0.02,
            storage_bw: 110.0e6, // ~1 Gbps effective
            process_restart: 6.0,
            data_pipeline: 7.0,
            h2d_bw: 12.0e9,
        }
    }
}

impl ScalingCostModel {
    /// Phase durations of an elastic re-configuration of one job: how long
    /// the *existing* workers are paused in each phase. New-worker
    /// initialisation is overlapped with prior training (Figure 12) and
    /// therefore free; the parameter broadcast is only paid when workers
    /// join.
    #[must_use]
    pub fn elastic_plan(
        &self,
        profile: &ModelProfile,
        allreduce: &AllReduceModel,
        new_placement: &Placement,
        workers_joined: bool,
    ) -> PhasePlan {
        let n = new_placement.len() as f64;
        PhasePlan {
            drain: self.step_drain,
            resize: self.module_resize,
            nccl: self.nccl_base + self.nccl_per_worker * n,
            broadcast: if workers_joined {
                allreduce.broadcast_time(new_placement, profile.grad_bytes())
            } else {
                0.0
            },
        }
    }

    /// Cost of an elastic re-configuration of one job (seconds):
    /// [`ScalingCostModel::elastic_plan`] summed.
    #[must_use]
    pub fn elastic_cost(
        &self,
        profile: &ModelProfile,
        allreduce: &AllReduceModel,
        new_placement: &Placement,
        workers_joined: bool,
    ) -> f64 {
        self.elastic_plan(profile, allreduce, new_placement, workers_joined)
            .total()
    }

    /// Phase durations of a checkpoint-based migration: the drain phase
    /// covers writing the checkpoint; the resize phase restarts the
    /// worker processes, rebuilds the input pipeline and reloads the
    /// saved state. No NCCL reuse, no broadcast — the job is fully
    /// stopped for the whole duration.
    #[must_use]
    pub fn checkpoint_plan(&self, profile: &ModelProfile) -> PhasePlan {
        let ckpt = profile.checkpoint_bytes();
        let save = ckpt / self.storage_bw;
        let load = ckpt / self.storage_bw + ckpt / self.h2d_bw;
        PhasePlan {
            drain: save,
            resize: self.process_restart + self.data_pipeline + load,
            nccl: 0.0,
            broadcast: 0.0,
        }
    }

    /// Cost of a checkpoint-based migration of one job (seconds):
    /// [`ScalingCostModel::checkpoint_plan`] summed.
    #[must_use]
    pub fn checkpoint_cost(&self, profile: &ModelProfile) -> f64 {
        self.checkpoint_plan(profile).total()
    }

    /// Phase durations of initially starting a job: nothing to drain,
    /// everything in the resize phase (process spawn + data pipeline).
    #[must_use]
    pub fn cold_start_plan(&self) -> PhasePlan {
        PhasePlan {
            drain: 0.0,
            resize: self.process_restart + self.data_pipeline,
            nccl: 0.0,
            broadcast: 0.0,
        }
    }

    /// Cost of initially starting a job (both mechanisms pay this, but it
    /// does not stop any *other* job): process spawn + data pipeline.
    #[must_use]
    pub fn cold_start_cost(&self) -> f64 {
        self.cold_start_plan().total()
    }

    /// Phase durations of a Gandiva-style suspend/resume cycle: drain the
    /// in-flight step and swap GPU state out to host memory, then swap it
    /// back in and resize the modules — no process restart and no
    /// input-pipeline rebuild.
    #[must_use]
    pub fn suspend_resume_plan(&self, profile: &ModelProfile) -> PhasePlan {
        let state = profile.checkpoint_bytes();
        PhasePlan {
            drain: self.step_drain + state / self.h2d_bw,
            resize: state / self.h2d_bw + self.module_resize,
            nccl: 0.0,
            broadcast: 0.0,
        }
    }

    /// Cost of a Gandiva-style suspend/resume cycle (seconds):
    /// [`ScalingCostModel::suspend_resume_plan`] summed.
    #[must_use]
    pub fn suspend_resume_cost(&self, profile: &ModelProfile) -> f64 {
        self.suspend_resume_plan(profile).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_cluster::ClusterSpec;
    use ones_dlperf::ModelKind;

    fn model() -> (ScalingCostModel, AllReduceModel) {
        (
            ScalingCostModel::default(),
            AllReduceModel::new(ClusterSpec::longhorn()),
        )
    }

    #[test]
    fn figure16_elastic_is_around_one_second() {
        let (cost, ar) = model();
        for kind in ModelKind::ALL {
            let prof = kind.profile();
            let place = Placement::contiguous(0, 4);
            let t = cost.elastic_cost(&prof, &ar, &place, true);
            assert!(
                t > 0.3 && t < 3.0,
                "{kind}: elastic cost {t}s outside the ~1 s band"
            );
        }
    }

    #[test]
    fn figure16_checkpoint_is_tens_of_seconds() {
        let (cost, _) = model();
        for kind in ModelKind::ALL {
            let prof = kind.profile();
            let t = cost.checkpoint_cost(&prof);
            assert!(
                t > 13.0 && t < 60.0,
                "{kind}: checkpoint cost {t}s implausible"
            );
        }
    }

    #[test]
    fn figure16_gap_is_an_order_of_magnitude() {
        let (cost, ar) = model();
        for kind in ModelKind::ALL {
            let prof = kind.profile();
            let place = Placement::contiguous(0, 4);
            let elastic = cost.elastic_cost(&prof, &ar, &place, true);
            let ckpt = cost.checkpoint_cost(&prof);
            assert!(
                ckpt > 10.0 * elastic,
                "{kind}: gap too small (elastic {elastic}, ckpt {ckpt})"
            );
        }
    }

    #[test]
    fn bigger_models_cost_more_to_checkpoint() {
        let (cost, _) = model();
        let bert = cost.checkpoint_cost(&ModelKind::BertBase.profile());
        let goog = cost.checkpoint_cost(&ModelKind::GoogleNet.profile());
        assert!(bert > 2.0 * goog);
    }

    #[test]
    fn broadcast_only_charged_when_workers_join() {
        let (cost, ar) = model();
        let prof = ModelKind::Vgg16.profile(); // 552 MB of gradients
        let place = Placement::contiguous(0, 8);
        let with = cost.elastic_cost(&prof, &ar, &place, true);
        let without = cost.elastic_cost(&prof, &ar, &place, false);
        assert!(with > without + 0.01);
    }

    #[test]
    fn cold_start_is_independent_of_model() {
        let (cost, _) = model();
        assert!(cost.cold_start_cost() > 5.0);
    }

    #[test]
    fn suspend_resume_sits_between_elastic_and_checkpoint() {
        let (cost, ar) = model();
        let place = Placement::contiguous(0, 4);
        for kind in ModelKind::ALL {
            let prof = kind.profile();
            let sr = cost.suspend_resume_cost(&prof);
            let ckpt = cost.checkpoint_cost(&prof);
            let elastic = cost.elastic_cost(&prof, &ar, &place, false);
            assert!(
                sr < ckpt / 5.0,
                "{kind}: suspend/resume {sr}s vs ckpt {ckpt}s"
            );
            assert!(sr < 2.0, "{kind}: suspend/resume {sr}s over 2 s");
            assert!(sr > elastic * 0.1, "{kind}: implausibly cheap");
        }
    }

    #[test]
    fn phase_plans_sum_to_their_costs() {
        let (cost, ar) = model();
        let prof = ModelKind::Vgg16.profile();
        let place = Placement::contiguous(0, 4);
        for joined in [true, false] {
            let plan = cost.elastic_plan(&prof, &ar, &place, joined);
            assert_eq!(plan.total(), cost.elastic_cost(&prof, &ar, &place, joined));
            // Broadcast phase exists exactly when workers joined.
            assert_eq!(plan.broadcast > 0.0, joined);
        }
        assert_eq!(
            cost.checkpoint_plan(&prof).total(),
            cost.checkpoint_cost(&prof)
        );
        assert_eq!(cost.cold_start_plan().total(), cost.cold_start_cost());
        assert_eq!(cost.cold_start_plan().drain, 0.0);
        assert_eq!(
            cost.suspend_resume_plan(&prof).total(),
            cost.suspend_resume_cost(&prof)
        );
        // Checkpointing mechanisms never rebuild NCCL incrementally.
        assert_eq!(cost.checkpoint_plan(&prof).nccl, 0.0);
    }

    #[test]
    fn suspend_resume_scales_with_state_size() {
        let (cost, _) = model();
        let bert = cost.suspend_resume_cost(&ModelKind::BertBase.profile());
        let goog = cost.suspend_resume_cost(&ModelKind::GoogleNet.profile());
        assert!(bert > goog);
    }
}
